"""Characterise crossbar non-ideality across design parameters.

Reproduces the paper's Section 3 analysis (Figure 2) for a configurable
family of crossbars: how the non-ideality factor NF = (I_ideal -
I_nonideal) / I_ideal moves with crossbar size, ON resistance and
conductance ON/OFF ratio, plus the voltage dependence of the non-linear
effects (Figure 3b). Useful as a first step when targeting a new device
technology: plug in your device's R_on / ON-OFF / parasitics and see where
the degradation cliffs are.

Run:  python examples/characterize_crossbar.py
"""

import numpy as np

from repro import CrossbarConfig, CrossbarCircuitSimulator
from repro.core.sampling import SamplingSpec, VgSampler
from repro.core.metrics import nonideality_factor, valid_mask
from repro.experiments.common import format_table
from repro.xbar.ideal import ideal_mvm


def nf_quartiles(config: CrossbarConfig, n_g=4, n_v=8, seed=7):
    """Median and quartiles of NF over a stratified operating-point set."""
    spec = SamplingSpec(n_g_matrices=n_g, n_v_per_g=n_v, seed=seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    nf_values = []
    for g in range(n_g):
        rows = np.nonzero(groups == g)[0]
        i_ideal = ideal_mvm(voltages[rows], conductances[g])
        i_full = simulator.solve_batch(voltages[rows], conductances[g],
                                       mode="full")
        mask = valid_mask(i_ideal)
        nf_values.append(nonideality_factor(i_ideal, i_full)[mask])
    nf = np.concatenate(nf_values)
    return [float(np.percentile(nf, 25)), float(np.median(nf)),
            float(np.percentile(nf, 75))]


def main():
    base = dict(r_on_ohm=100e3, onoff_ratio=6.0, v_supply_v=0.25)

    rows = [[f"{size}x{size}",
             *nf_quartiles(CrossbarConfig(rows=size, cols=size, **base))]
            for size in (8, 16, 32, 64)]
    print(format_table("NF vs crossbar size",
                       ["size", "q1", "median", "q3"], rows))

    rows = [[f"{r_on / 1e3:g}k",
             *nf_quartiles(CrossbarConfig(rows=32, cols=32,
                                          **{**base, "r_on_ohm": r_on}))]
            for r_on in (50e3, 100e3, 300e3)]
    print("\n" + format_table("NF vs ON resistance (32x32)",
                              ["R_on", "q1", "median", "q3"], rows))

    rows = [[f"{ratio:g}",
             *nf_quartiles(CrossbarConfig(
                 rows=32, cols=32, **{**base, "onoff_ratio": ratio}))]
            for ratio in (2.0, 6.0, 10.0)]
    print("\n" + format_table("NF vs ON/OFF ratio (32x32)",
                              ["ON/OFF", "q1", "median", "q3"], rows))

    rows = []
    for v_supply in (0.1, 0.25, 0.4, 0.5):
        config = CrossbarConfig(rows=32, cols=32,
                                **{**base, "v_supply_v": v_supply})
        simulator = CrossbarCircuitSimulator(config)
        spec = SamplingSpec(n_g_matrices=3, n_v_per_g=6, seed=3)
        voltages, conductances, groups = VgSampler(config, spec).sample()
        rel = []
        for g in range(3):
            sel = np.nonzero(groups == g)[0]
            lin = simulator.solve_batch(voltages[sel], conductances[g],
                                        mode="linear")
            full = simulator.solve_batch(voltages[sel], conductances[g],
                                         mode="full")
            mask = np.abs(lin) > 1e-12
            rel.append(np.abs(full[mask] - lin[mask]) / np.abs(lin[mask]))
        rows.append([f"{v_supply:g} V", float(np.concatenate(rel).mean())])
    print("\n" + format_table(
        "Non-linear (data-dependent) share of the error vs supply voltage",
        ["Vsupply", "mean |full-linear|/linear"], rows))


if __name__ == "__main__":
    main()
