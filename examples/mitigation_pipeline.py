"""Mitigation pipeline: model the non-ideality, then fight it.

The paper positions GENIEx as the modelling foundation that mitigation
techniques need. This example closes the loop on a small task:

1. train a clean classifier and measure its accuracy on non-ideal crossbar
   hardware (GENIEx engine);
2. retrain with injected multiplicative weight noise (technology-aware
   training) and re-measure;
3. additionally fit a post-hoc affine output calibration on unlabelled
   calibration data.

Run:  python examples/mitigation_pipeline.py   (a few minutes cold)
"""

import numpy as np

from repro.datasets import make_shapes_split
from repro.experiments.common import format_table, get_profile, shared_zoo
from repro.funcsim import FuncSimConfig, convert_to_mvm, make_engine
from repro.mitigation import NoiseSpec, fit_output_calibration, \
    train_with_noise
from repro.models import LeNet
from repro.nn.losses import accuracy
from repro.nn.tensor import Tensor, no_grad


def crossbar_accuracy(model, engine, x, y, batch=64):
    converted = convert_to_mvm(model, engine)
    hits = 0
    with no_grad():
        for start in range(0, len(x), batch):
            logits = converted(Tensor(x[start:start + batch]))
            hits += int((logits.data.argmax(axis=1)
                         == y[start:start + batch]).sum())
    return hits / len(x), converted


def main():
    profile = get_profile()
    x_train, y_train, x_test, y_test = make_shapes_split(
        1500, 256, image_size=10, num_classes=6, seed=3)

    config = profile.crossbar(rows=16)  # small, strongly non-ideal tiles
    sim = FuncSimConfig().with_precision(8)
    print("training / loading GENIEx emulator...")
    emulator = shared_zoo().get_or_train(config, profile.sampling_spec(0),
                                         profile.dnn_train_spec(0),
                                         progress=True)
    engine = make_engine("geniex", config, sim, emulator=emulator)

    rows = []

    print("1) clean training...")
    clean = LeNet(in_channels=1, num_classes=6, image_size=10, width=6,
                  seed=0)
    train_with_noise(clean, x_train, y_train, NoiseSpec(weight_sigma=0.0),
                     epochs=10, seed=0)
    with no_grad():
        float_acc = accuracy(clean(Tensor(x_test)).data, y_test)
    xbar_acc, converted = crossbar_accuracy(clean, engine, x_test, y_test)
    rows.append(["clean training", float_acc, xbar_acc])
    print(f"   float {float_acc:.4f} -> crossbar {xbar_acc:.4f}")

    print("2) technology-aware (noise) training...")
    robust = LeNet(in_channels=1, num_classes=6, image_size=10, width=6,
                   seed=0)
    train_with_noise(robust, x_train, y_train,
                     NoiseSpec(weight_sigma=0.08), epochs=10, seed=0)
    with no_grad():
        robust_float = accuracy(robust(Tensor(x_test)).data, y_test)
    robust_xbar, _ = crossbar_accuracy(robust, engine, x_test, y_test)
    rows.append(["noise training (sigma=0.08)", robust_float, robust_xbar])
    print(f"   float {robust_float:.4f} -> crossbar {robust_xbar:.4f}")

    print("3) output calibration on 96 unlabelled samples...")
    calibrated = fit_output_calibration(converted, clean.eval(),
                                        x_train[:96])
    with no_grad():
        cal_acc = accuracy(calibrated(Tensor(x_test)).data, y_test)
    rows.append(["clean + output calibration", float_acc, cal_acc])
    print(f"   crossbar (calibrated) {cal_acc:.4f}")

    print("\n" + format_table(
        "Mitigation on non-ideal crossbar inference",
        ["strategy", "float acc", "crossbar acc"], rows))


if __name__ == "__main__":
    main()
