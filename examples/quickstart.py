"""Quickstart: simulate a non-ideal crossbar and train GENIEx on it.

Walks the full pipeline on a small (16x16) crossbar in about a minute:

1. configure a crossbar with the paper's non-ideality parameters;
2. solve one MVM operating point in ideal / linear / full-circuit modes;
3. generate a (V, G) -> fR dataset from the circuit simulator;
4. train a GENIEx model and compare its fidelity against the analytical
   (linear-only) baseline on held-out operating points.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AnalyticalLinearModel, CrossbarCircuitSimulator, \
    CrossbarConfig
from repro.core import (
    GeniexEmulator,
    SamplingSpec,
    TrainSpec,
    build_geniex_dataset,
    nonideality_factor,
    rmse_of_nf,
    train_geniex,
)
from repro.xbar.ideal import ideal_mvm


def main():
    rng = np.random.default_rng(0)

    # 1. A 16x16 crossbar with the paper's nominal non-idealities.
    config = CrossbarConfig(rows=16, cols=16, r_on_ohm=100e3,
                            onoff_ratio=6.0, v_supply_v=0.25)
    simulator = CrossbarCircuitSimulator(config)

    # 2. One operating point, three fidelity levels.
    conductances = rng.uniform(config.g_off_s, config.g_on_s,
                               size=config.shape)
    voltages = rng.uniform(0.0, config.v_supply_v, size=config.rows)

    i_ideal = ideal_mvm(voltages, conductances)
    i_linear = simulator.solve(voltages, conductances, mode="linear")
    i_full = simulator.solve(voltages, conductances, mode="full")
    print("mean NF (linear-only non-idealities):",
          f"{nonideality_factor(i_ideal, i_linear.currents_a).mean():.4f}")
    print("mean NF (incl. device non-linearity):",
          f"{nonideality_factor(i_ideal, i_full.currents_a).mean():.4f}")

    # 3. Characterise the crossbar: stratified (V, G) sweep -> fR labels.
    print("\nbuilding GENIEx dataset (circuit sweeps)...")
    dataset = build_geniex_dataset(
        config, SamplingSpec(n_g_matrices=30, n_v_per_g=15, seed=1))

    # 4. Fit GENIEx and compare with the analytical model.
    print("training GENIEx...")
    model, history = train_geniex(
        dataset, TrainSpec(hidden=128, hidden_layers=2, epochs=120,
                           batch_size=128, lr=2e-3, patience=40, seed=0))
    print(f"  best validation RMSE (normalised fR): "
          f"{history.best_val_rmse:.4f}")

    emulator = GeniexEmulator(model)
    analytical = AnalyticalLinearModel(config)
    test = build_geniex_dataset(
        config, SamplingSpec(n_g_matrices=5, n_v_per_g=10, seed=99))

    i_geniex = np.empty_like(test.i_nonideal_a)
    i_analytical = np.empty_like(test.i_nonideal_a)
    for group in range(5):
        rows = np.nonzero(test.group_index == group)[0]
        g = test.conductances_s[group]
        i_geniex[rows] = emulator.for_matrix(g).predict_currents(
            test.voltages_v[rows])
        i_analytical[rows] = analytical.predict_currents(
            test.voltages_v[rows], g)

    rmse_geniex = rmse_of_nf(test.i_ideal_a, test.i_nonideal_a, i_geniex)
    rmse_analytical = rmse_of_nf(test.i_ideal_a, test.i_nonideal_a,
                                 i_analytical)
    print(f"\nRMSE of NF vs circuit:  GENIEx {rmse_geniex:.4f}   "
          f"analytical {rmse_analytical:.4f}   "
          f"({rmse_analytical / rmse_geniex:.1f}x better)")


if __name__ == "__main__":
    main()
