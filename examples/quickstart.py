"""Quickstart: declare an emulation setup once, run it everywhere.

The public API in four steps, on a small (16x16) crossbar in about a
minute:

1. describe the setup as a declarative, JSON-serializable
   ``EmulationSpec`` (here: the ``"quick"`` preset, refined with
   ``evolve``);
2. open a ``Session`` — the GENIEx emulator is trained (or loaded from
   the on-disk zoo) and the bit-sliced MVM engine is built for you;
3. run crossbar matmuls and compare the non-ideal result against
   sibling sessions (``exact`` tiles and the linear ``analytical``
   model) derived from the *same* spec;
4. check the emulator against the circuit-level ground truth the
   session exposes, and round-trip the spec through JSON — the file
   form drives the CLI (``repro fig fig5 --spec``) and the HTTP
   service unchanged.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EmulationSpec, open_session
from repro.core.metrics import nonideality_factor

# 1. One declarative description of the whole setup. evolve() overrides
#    win over the preset, which wins over the dataclass defaults.
spec = EmulationSpec.preset("quick").evolve(**{"runtime.tile_cache_size": 64})


def main():
    rng = np.random.default_rng(0)
    config = spec.xbar.to_config()
    print(f"spec {spec.key()}: {spec.engine} engine on a "
          f"{config.rows}x{config.cols} crossbar "
          f"(R_on {config.r_on_ohm / 1e3:g}k, ON/OFF "
          f"{config.onoff_ratio:g}, Vdd {config.v_supply_v:g} V)")

    # 2. Resolve it. Training runs once; re-running this script hits the
    #    zoo cache and opens in milliseconds.
    print("opening session (training / loading the GENIEx emulator)...")
    weights = rng.standard_normal((config.rows, config.cols)) * 0.4
    x = rng.standard_normal((8, config.rows)) * 0.5

    with open_session(spec, progress=True) as session:
        y_geniex = session.matmul(x, weights)

        # 3. Sibling setups are one evolve() away and bit-comparable.
        with open_session(spec.evolve(engine="exact")) as oracle, \
                open_session(spec.evolve(engine="analytical")) as linear:
            y_exact = oracle.matmul(x, weights)
            y_analytical = linear.matmul(x, weights)
        print(f"mean matmul deviation from ideal tiles: "
              f"GENIEx {np.abs(y_geniex - y_exact).mean():.5f}   "
              f"analytical {np.abs(y_analytical - y_exact).mean():.5f}")

        # 4a. Circuit-level ground truth from the same session: the
        #     trained emulator tracks the full non-linear solve much
        #     more closely than the linear parasitic model (the paper's
        #     headline claim).
        from repro import AnalyticalLinearModel
        conductances = rng.uniform(config.g_off_s, config.g_on_s,
                                   size=config.shape)
        voltages = rng.uniform(0.0, config.v_supply_v,
                               size=(16, config.rows))
        i_circuit = session.solve_batch(voltages, conductances, mode="full")
        i_ideal = voltages @ conductances
        nf_circuit = nonideality_factor(i_ideal, i_circuit)
        nf_geniex = nonideality_factor(
            i_ideal, session.emulator.for_matrix(
                conductances).predict_currents(voltages))
        nf_analytical = nonideality_factor(
            i_ideal, AnalyticalLinearModel(config).predict_currents(
                voltages, conductances))
        err_g = np.abs(nf_geniex - nf_circuit).mean()
        err_a = np.abs(nf_analytical - nf_circuit).mean()
        print(f"mean NF error vs circuit on fresh operating points: "
              f"GENIEx {err_g:.4f}   analytical {err_a:.4f}   "
              f"({err_a / max(err_g, 1e-9):.1f}x better)")
        print("session stats:", session.stats())

    # 4b. The spec serialises losslessly; the JSON file drives the CLI
    #     (`repro fig fig5 --spec file.json`) and the HTTP service.
    restored = EmulationSpec.from_json(spec.to_json())
    assert restored == spec and restored.key() == spec.key()
    print(f"spec JSON round-trip OK ({len(spec.to_json())} bytes, "
          f"key {restored.key()})")


if __name__ == "__main__":
    main()
