"""Design-space exploration: pick a crossbar + bit-slicing configuration.

The paper's conclusion — "packing lower bits per device as well as using low
crossbar sizes with higher ON resistances is necessary to minimize the
impact of non-idealities" — turned into a tool: sweep (crossbar size, slice
width) pairs for a fixed 16-bit workload, measure MVM fidelity through the
functional simulator with GENIEx non-idealities, and print the trade-off
table together with a crude cost proxy (number of crossbar readouts per
MVM, which tracks ADC energy).

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.experiments.common import format_table, get_profile, shared_zoo
from repro.funcsim import FuncSimConfig, IdealMvmEngine, make_engine
from repro.funcsim.cost import matmul_cost

N_IN, N_OUT = 96, 32


def mvm_fidelity(engine, reference_engine, rng, n_in=N_IN, n_out=N_OUT,
                 batch=64):
    """Relative output error of a random (but realistic-scale) MVM."""
    x = np.abs(rng.normal(size=(batch, n_in))) * 0.3  # post-ReLU-like
    w = rng.normal(size=(n_in, n_out)) * 0.2
    ref = reference_engine.matmul(x, reference_engine.prepare(w))
    out = engine.matmul(x, engine.prepare(w))
    return float(np.abs(out - ref).mean() / np.abs(ref).mean())


def main():
    profile = get_profile()
    zoo = shared_zoo()
    rng = np.random.default_rng(0)

    rows = []
    for size in (8, 16, 32):
        for slice_bits in (1, 2, 4):
            sim = FuncSimConfig(slice_bits=slice_bits)
            config = profile.crossbar(rows=size)
            emulator = zoo.get_or_train(config, profile.sampling_spec(0),
                                        profile.dnn_train_spec(0),
                                        progress=True)
            engine = make_engine("geniex", config, sim, emulator=emulator)
            ideal = IdealMvmEngine(sim)
            error = mvm_fidelity(engine, ideal, rng)
            cost = matmul_cost(N_IN, N_OUT, config, sim)
            rows.append([f"{size}x{size}", f"{slice_bits}-bit",
                         error, cost.adc_conversions])

    rows.sort(key=lambda r: r[2])
    print("\n" + format_table(
        "Design space: MVM error (vs ideal FxP) and ADC-conversion cost",
        ["crossbar", "slice width", "mean rel. error",
         "ADC conversions/MVM"], rows))
    best = rows[0]
    print(f"\nmost faithful point: {best[0]} crossbar, {best[1]} slices "
          f"(error {best[2]:.4f})")


if __name__ == "__main__":
    main()
