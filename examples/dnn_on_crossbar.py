"""Evaluate a trained CNN on non-ideal crossbar hardware.

The paper's end-to-end use case, expressed through the public API: train
a ResNet-style CNN (here on the procedural `shapes` dataset), then push
inference through the functional simulator — iterative MVM + tiling +
bit-slicing — under different analog fidelity models and compare top-1
accuracy:

* float        — the plain software model;
* ideal FxP    — 16-bit fixed-point, perfect crossbars;
* GENIEx       — non-idealities predicted by the trained emulator;
* analytical   — non-idealities from the linear parasitic model only.

Each evaluation is one ``Profile.to_spec(engine)`` +
``open_session(spec)`` + ``session.compile(model)`` — the same three
calls work for any spec, preset or JSON file.

Run:  python examples/dnn_on_crossbar.py          (about 5-10 minutes cold,
      seconds for the model-zoo pieces on a warm cache)
"""

from repro.api import resolve_emulator
from repro.experiments.accuracy import evaluate_spec, train_reference_network
from repro.experiments.common import format_table, get_profile, shared_zoo


def main():
    profile = get_profile()
    print(f"profile: {profile.name}")

    print("training / loading the reference CNN on `shapes`...")
    model, x_test, y_test, float_acc = train_reference_network(
        "shapes", profile, verbose=True)
    print(f"float top-1 accuracy: {float_acc:.4f}")

    spec = profile.to_spec("geniex")
    config, sim = spec.xbar.to_config(), spec.sim
    print(f"spec {spec.key()}: {config.rows}x{config.cols} crossbar, R_on "
          f"{config.r_on_ohm / 1e3:g}k, ON/OFF {config.onoff_ratio:g}, "
          f"Vsupply {config.v_supply_v:g} V; {sim.weight_bits}-bit FxP, "
          f"{sim.stream_bits}-bit streams, {sim.slice_bits}-bit slices, "
          f"{sim.adc_bits}-bit ADC")

    # Resolve the emulator once up front (trains or loads through the
    # zoo); every engine kind then evaluates the same spec.
    zoo = shared_zoo()
    emulator = resolve_emulator(spec, zoo=zoo, progress=True)
    rows = [["float (software)", float_acc]]
    for kind in ("ideal", "geniex", "analytical"):
        acc = evaluate_spec(model, x_test, y_test,
                            spec.evolve(engine=kind),
                            batch=profile.eval_batch, zoo=zoo,
                            emulator=emulator if kind == "geniex"
                            else None)
        rows.append([kind, acc])
        print(f"  {kind}: {acc:.4f}")

    print("\n" + format_table("CNN accuracy on crossbar hardware",
                              ["evaluation", "top-1 accuracy"], rows))


if __name__ == "__main__":
    main()
