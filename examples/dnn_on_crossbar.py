"""Evaluate a trained CNN on non-ideal crossbar hardware.

The paper's end-to-end use case: train a ResNet-style CNN (here on the
procedural `shapes` dataset), then push inference through the functional
simulator — iterative MVM + tiling + bit-slicing — with different analog
fidelity models, and compare top-1 accuracy:

* float        — the plain software model;
* ideal FxP    — 16-bit fixed-point, perfect crossbars;
* GENIEx       — non-idealities predicted by the trained emulator;
* analytical   — non-idealities from the linear parasitic model only.

Run:  python examples/dnn_on_crossbar.py          (about 5-10 minutes cold,
      seconds for the model-zoo pieces on a warm cache)
"""

from repro.experiments.accuracy import (
    evaluate_mode,
    train_reference_network,
)
from repro.experiments.common import format_table, get_profile, shared_zoo


def main():
    profile = get_profile()
    print(f"profile: {profile.name}")

    print("training / loading the reference CNN on `shapes`...")
    model, x_test, y_test, float_acc = train_reference_network(
        "shapes", profile, verbose=True)
    print(f"float top-1 accuracy: {float_acc:.4f}")

    config = profile.dnn_crossbar()
    sim = profile.funcsim()
    print(f"crossbar: {config.rows}x{config.cols}, R_on "
          f"{config.r_on_ohm / 1e3:g}k, ON/OFF {config.onoff_ratio:g}, "
          f"Vsupply {config.v_supply_v:g} V")
    print(f"precision: {sim.weight_bits}-bit FxP, {sim.stream_bits}-bit "
          f"streams, {sim.slice_bits}-bit slices, {sim.adc_bits}-bit ADC")

    print("training / loading the GENIEx emulator for this crossbar...")
    emulator = shared_zoo().get_or_train(config, profile.sampling_spec(0),
                                         profile.dnn_train_spec(0),
                                         progress=True)

    rows = [["float (software)", float_acc]]
    for mode in ("ideal", "geniex", "analytical"):
        acc = evaluate_mode(model, x_test, y_test, mode, config, sim,
                            profile.eval_batch,
                            emulator=emulator if mode == "geniex" else None)
        rows.append([mode, acc])
        print(f"  {mode}: {acc:.4f}")

    print("\n" + format_table("CNN accuracy on crossbar hardware",
                              ["evaluation", "top-1 accuracy"], rows))


if __name__ == "__main__":
    main()
