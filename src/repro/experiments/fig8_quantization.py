"""Figure 8: precision of weights/activations under non-idealities.

For 16/8/4-bit fixed-point networks on both datasets, compare (i) ideal
quantised inference, (ii) non-idealities per the analytical model, and
(iii) non-idealities per GENIEx. Paper findings: the accuracy cost of
non-ideality grows as precision drops, and the analytical model
overestimates the degradation at every precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    DATASETS,
    evaluate_mode,
    train_reference_network,
)
from repro.experiments.common import Profile, format_table, get_profile, \
    shared_zoo

PRECISIONS = (16, 8, 4)


@dataclass
class Fig8Result:
    rows: list = field(default_factory=list)
    float_accuracy: dict = field(default_factory=dict)

    def format(self) -> str:
        header_note = "\n".join(
            f"  {name}: float accuracy = {acc:.4f}"
            for name, acc in self.float_accuracy.items())
        table = format_table(
            "Fig 8: accuracy vs weight/activation precision",
            ["dataset", "bits", "ideal", "analytical", "GENIEx",
             "GENIEx degradation"],
            [[name, bits, ideal, ana, gen, ideal - gen]
             for name, bits, ideal, ana, gen in self.rows])
        return f"Fig 8 (both datasets)\n{header_note}\n\n{table}"


def run_fig8(profile: Profile | None = None, datasets=DATASETS,
             progress: bool = False) -> Fig8Result:
    profile = profile or get_profile()
    zoo = shared_zoo()
    config = profile.dnn_crossbar()
    emulator = zoo.get_or_train(config, profile.sampling_spec(0),
                                profile.dnn_train_spec(0), progress=progress)
    result = Fig8Result()
    for name in datasets:
        model, x_test, y_test, float_acc = train_reference_network(
            name, profile, verbose=progress)
        result.float_accuracy[name] = float_acc
        for bits in PRECISIONS:
            sim = profile.funcsim().with_precision(bits)
            acc_ideal = evaluate_mode(model, x_test, y_test, "ideal",
                                      config, sim, profile.eval_batch)
            acc_ana = evaluate_mode(model, x_test, y_test, "analytical",
                                    config, sim, profile.eval_batch)
            acc_gen = evaluate_mode(model, x_test, y_test, "geniex",
                                    config, sim, profile.eval_batch,
                                    emulator=emulator)
            result.rows.append((name, bits, acc_ideal, acc_ana, acc_gen))
    return result


if __name__ == "__main__":
    print(run_fig8(progress=True).format())
