"""Figure 2: non-ideality factor vs crossbar design parameters.

(a) I_ideal vs I_nonideal correlation/spread for the nominal 64x64 crossbar;
(b) NF distribution vs crossbar size; (c) vs ON resistance; (d) vs
conductance ON/OFF ratio. Paper findings to reproduce: NF grows with
crossbar size, shrinks with higher R_on and higher ON/OFF ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.metrics import nonideality_factor, valid_mask
from repro.core.sampling import SamplingSpec, VgSampler
from repro.experiments.common import Profile, format_table, get_profile
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm


@dataclass
class NfStats:
    """Quartiles of the NF distribution for one configuration."""

    label: str
    q1: float
    median: float
    q3: float
    mean: float

    @classmethod
    def from_currents(cls, label, i_ideal, i_nonideal) -> "NfStats":
        mask = valid_mask(i_ideal)
        nf = nonideality_factor(i_ideal, i_nonideal)[mask]
        return cls(label, float(np.percentile(nf, 25)),
                   float(np.percentile(nf, 50)),
                   float(np.percentile(nf, 75)), float(nf.mean()))

    def row(self) -> list:
        return [self.label, self.q1, self.median, self.q3, self.mean]


@dataclass
class Fig2Result:
    correlation: float
    scatter_mean_nf: float
    by_size: list = field(default_factory=list)
    by_r_on: list = field(default_factory=list)
    by_onoff: list = field(default_factory=list)

    def format(self) -> str:
        headers = ["config", "NF q1", "NF med", "NF q3", "NF mean"]
        parts = [
            "Fig 2(a): ideal-vs-nonideal currents (nominal crossbar)\n"
            f"  pearson r = {self.correlation:.4f}, "
            f"mean NF = {self.scatter_mean_nf:.4f}",
            format_table("Fig 2(b): NF vs crossbar size", headers,
                         [s.row() for s in self.by_size]),
            format_table("Fig 2(c): NF vs ON resistance", headers,
                         [s.row() for s in self.by_r_on]),
            format_table("Fig 2(d): NF vs ON/OFF ratio", headers,
                         [s.row() for s in self.by_onoff]),
        ]
        return "\n\n".join(parts)


def _simulate_nf(config: CrossbarConfig, n_g: int, n_v: int,
                 seed: int = 7) -> tuple:
    """Full-simulation currents for a stratified operating-point sample."""
    spec = SamplingSpec(n_g_matrices=n_g, n_v_per_g=n_v, seed=seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    i_ideal = np.empty((len(voltages), config.cols))
    i_nonideal = np.empty_like(i_ideal)
    for g in range(n_g):
        rows = np.nonzero(groups == g)[0]
        i_ideal[rows] = ideal_mvm(voltages[rows], conductances[g])
        i_nonideal[rows] = simulator.solve_batch(voltages[rows],
                                                 conductances[g], mode="full")
    return i_ideal, i_nonideal


def run_fig2(profile: Profile | None = None) -> Fig2Result:
    profile = profile or get_profile()
    n_g, n_v = profile.nf_n_g, profile.nf_n_v

    # (a) scatter statistics at the nominal size (largest in the sweep).
    nominal = profile.crossbar(rows=max(profile.xbar_sizes))
    i_ideal, i_nonideal = _simulate_nf(nominal, n_g, n_v)
    mask = valid_mask(i_ideal)
    corr = float(np.corrcoef(i_ideal[mask], i_nonideal[mask])[0, 1])
    mean_nf = float(nonideality_factor(i_ideal, i_nonideal)[mask].mean())
    result = Fig2Result(corr, mean_nf)

    # (b) size sweep.
    for size in profile.xbar_sizes:
        cfg = profile.crossbar(rows=size)
        result.by_size.append(NfStats.from_currents(
            f"{size}x{size}", *_simulate_nf(cfg, n_g, n_v)))

    # (c) ON-resistance sweep at the base size.
    for r_on in profile.r_on_sweep_ohm:
        cfg = profile.crossbar(r_on_ohm=r_on)
        result.by_r_on.append(NfStats.from_currents(
            f"Ron={r_on / 1e3:g}k", *_simulate_nf(cfg, n_g, n_v)))

    # (d) ON/OFF sweep at the base size.
    for ratio in profile.onoff_sweep:
        cfg = profile.crossbar(onoff_ratio=ratio)
        result.by_onoff.append(NfStats.from_currents(
            f"on/off={ratio:g}", *_simulate_nf(cfg, n_g, n_v)))
    return result


if __name__ == "__main__":
    print(run_fig2().format())
