"""Experiment drivers: one module per paper figure/table.

Each ``run_*`` function executes the experiment at the active profile
(``REPRO_PROFILE=quick|full``, default quick) and returns a result object
whose ``format()`` renders the same rows/series the paper reports. The
benchmark harness under ``benchmarks/`` wraps these one-to-one.
"""

from repro.experiments.common import (
    Profile,
    format_table,
    get_profile,
)
from repro.experiments.table1_comparison import run_table1
from repro.experiments.fig2_nf_analysis import run_fig2
from repro.experiments.fig3_nonlinearity import run_fig3
from repro.experiments.fig5_rmse import run_fig5
from repro.experiments.fig7_design_params import run_fig7
from repro.experiments.fig8_quantization import run_fig8
from repro.experiments.fig9_bitslicing import run_fig9
from repro.experiments.robustness import run_robustness
from repro.experiments.variations import run_variations

__all__ = [
    "Profile",
    "get_profile",
    "format_table",
    "run_table1",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_robustness",
    "run_variations",
]
