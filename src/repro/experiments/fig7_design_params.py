"""Figure 7: DNN accuracy vs crossbar design parameters.

(a) accuracy vs crossbar size, (b) vs ON resistance, (c) vs ON/OFF ratio —
all with GENIEx-modelled non-idealities on a 16-bit fixed-point network with
4-bit streams/slices; (d) GENIEx vs the analytical model at 0.25 V and 0.5 V
supply. Paper findings: larger crossbars / lower R_on / lower ON/OFF degrade
accuracy; the analytical model *overestimates* the degradation relative to
GENIEx.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    evaluate_mode,
    train_reference_network,
)
from repro.experiments.common import Profile, format_table, get_profile, \
    shared_zoo


@dataclass
class Fig7Result:
    float_accuracy: float
    ideal_accuracy: float
    by_size: list = field(default_factory=list)
    by_r_on: list = field(default_factory=list)
    by_onoff: list = field(default_factory=list)
    model_compare: list = field(default_factory=list)

    def _acc_rows(self, entries):
        return [[label, acc, self.ideal_accuracy - acc]
                for label, acc in entries]

    def format(self) -> str:
        headers = ["config", "accuracy", "degradation"]
        parts = [
            f"Fig 7 (CIFAR-100/ResNet-20 stand-in)\n"
            f"  float accuracy  = {self.float_accuracy:.4f}\n"
            f"  ideal FxP 16-bit = {self.ideal_accuracy:.4f}",
            format_table("Fig 7(a): accuracy vs crossbar size (GENIEx)",
                         headers, self._acc_rows(self.by_size)),
            format_table("Fig 7(b): accuracy vs ON resistance (GENIEx)",
                         headers, self._acc_rows(self.by_r_on)),
            format_table("Fig 7(c): accuracy vs ON/OFF ratio (GENIEx)",
                         headers, self._acc_rows(self.by_onoff)),
            format_table("Fig 7(d): analytical vs GENIEx",
                         ["Vsupply", "analytical", "GENIEx",
                          "analytical overestimates degradation by"],
                         [[f"{v:g} V", a_ana, a_gen, a_gen - a_ana]
                          for v, a_ana, a_gen in self.model_compare]),
        ]
        return "\n\n".join(parts)


def run_fig7(profile: Profile | None = None,
             progress: bool = False) -> Fig7Result:
    profile = profile or get_profile()
    zoo = shared_zoo()
    model, x_test, y_test, float_acc = train_reference_network(
        "shapes", profile, verbose=progress)
    sim = profile.funcsim()
    batch = profile.eval_batch

    ideal_acc = evaluate_mode(model, x_test, y_test, "ideal",
                              profile.dnn_crossbar(), sim, batch)
    result = Fig7Result(float_acc, ideal_acc)

    def geniex_accuracy(config):
        emulator = zoo.get_or_train(config, profile.sampling_spec(0),
                                    profile.dnn_train_spec(0), progress=progress)
        return evaluate_mode(model, x_test, y_test, "geniex", config, sim,
                             batch, emulator=emulator)

    # (a) crossbar size sweep.
    for size in profile.dnn_sizes:
        config = profile.dnn_crossbar(rows=size)
        result.by_size.append((f"{size}x{size}", geniex_accuracy(config)))

    # (b) ON resistance sweep.
    for r_on in profile.r_on_sweep_ohm:
        config = profile.dnn_crossbar(r_on_ohm=r_on)
        result.by_r_on.append((f"Ron={r_on / 1e3:g}k",
                               geniex_accuracy(config)))

    # (c) ON/OFF ratio sweep.
    for ratio in profile.onoff_sweep:
        config = profile.dnn_crossbar(onoff_ratio=ratio)
        result.by_onoff.append((f"on/off={ratio:g}",
                                geniex_accuracy(config)))

    # (d) analytical vs GENIEx at two supply voltages.
    for v_supply in (0.25, 0.5):
        config = profile.dnn_crossbar(v_supply_v=v_supply)
        acc_analytical = evaluate_mode(model, x_test, y_test, "analytical",
                                       config, sim, batch)
        acc_geniex = geniex_accuracy(config)
        result.model_compare.append((v_supply, acc_analytical, acc_geniex))
    return result


if __name__ == "__main__":
    print(run_fig7(progress=True).format())
