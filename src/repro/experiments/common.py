"""Shared experiment infrastructure: profiles, tables, cached networks.

Two profiles are provided. ``quick`` (default) runs every experiment at
laptop-CPU scale in minutes; ``full`` uses paper-scale parameters (64x64
crossbars, 500 hidden neurons, larger datasets) and is selected with
``REPRO_PROFILE=full``. All knobs live in :class:`Profile` so the figure
drivers contain no magic numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec
from repro.core.zoo import GeniexZoo, default_cache_dir
from repro.errors import ConfigError
from repro.funcsim.config import FuncSimConfig
from repro.xbar.config import CrossbarConfig


@dataclass(frozen=True)
class Profile:
    """All size knobs of the experiment suite.

    Attributes mirror the paper's experimental setup (Section 6); the quick
    profile scales them down while preserving every qualitative sweep.
    """

    name: str
    # Circuit-level studies (Figs. 2, 3, 5)
    xbar_sizes: tuple
    base_size: int
    r_on_sweep_ohm: tuple
    onoff_sweep: tuple
    nf_n_g: int
    nf_n_v: int
    fig5_size: int
    fig5_test_n_g: int
    fig5_test_n_v: int
    # GENIEx model (fig 5 headline fit)
    geniex_hidden: int
    geniex_hidden_layers: int
    geniex_n_g: int
    geniex_n_v: int
    geniex_epochs: int
    geniex_batch: int
    geniex_lr: float
    geniex_patience: int
    # GENIEx models used inside the functional simulator (figs 7-9): one
    # hidden layer keeps the per-tile forward pass cheap enough for whole-
    # DNN evaluation — the second layer's P x P matmul cannot be shared
    # across tiles and dominates otherwise.
    dnn_geniex_hidden: int
    dnn_geniex_hidden_layers: int
    # DNN accuracy studies (Figs. 7, 8, 9)
    dnn_base_size: int
    dnn_sizes: tuple
    image_size: int
    shapes_classes: int
    textures_classes: int
    cnn_width: int
    cnn_blocks: int
    train_images: int
    train_epochs: int
    eval_images: int
    eval_images_fig9: int
    eval_batch: int

    def crossbar(self, **overrides) -> CrossbarConfig:
        """Base crossbar config (paper nominal values) with overrides."""
        base = dict(rows=self.base_size, cols=self.base_size)
        base.update(overrides)
        if "rows" in overrides and "cols" not in overrides:
            base["cols"] = overrides["rows"]
        return CrossbarConfig(**base)

    def dnn_crossbar(self, **overrides) -> CrossbarConfig:
        """Crossbar used by the DNN accuracy experiments (figs 7-9).

        Devices are programmed with a program-and-verify reference at half
        the supply voltage (the mid-scale read level), so the RRAM sinh
        non-linearity is *centred* over the operating range: it
        under-delivers below V/2 and over-delivers above, a data-dependent
        residual with near-zero mean. Small-signal programming (v_ref = 0)
        would instead make every device systematically super-linear, which
        at 0.5 V supply overwhelms the IR drops and collapses accuracy for
        every faithful model — a programming-calibration artefact, not the
        regime the paper evaluates.
        """
        overrides.setdefault("rows", self.dnn_base_size)
        config = self.crossbar(**overrides)
        if "programming_v_ref_v" not in overrides:
            config = config.replace(
                programming_v_ref_v=config.v_supply_v / 2.0)
        return config

    def sampling_spec(self, seed: int = 0) -> SamplingSpec:
        return SamplingSpec(n_g_matrices=self.geniex_n_g,
                            n_v_per_g=self.geniex_n_v, seed=seed)

    def train_spec(self, seed: int = 0) -> TrainSpec:
        return TrainSpec(hidden=self.geniex_hidden,
                         hidden_layers=self.geniex_hidden_layers,
                         epochs=self.geniex_epochs,
                         batch_size=self.geniex_batch,
                         lr=self.geniex_lr,
                         patience=self.geniex_patience, seed=seed)

    def dnn_train_spec(self, seed: int = 0) -> TrainSpec:
        """Spec of the emulators embedded in the functional simulator."""
        return TrainSpec(hidden=self.dnn_geniex_hidden,
                         hidden_layers=self.dnn_geniex_hidden_layers,
                         epochs=self.geniex_epochs,
                         batch_size=self.geniex_batch,
                         lr=self.geniex_lr,
                         patience=self.geniex_patience, seed=seed)

    def funcsim(self, **overrides) -> FuncSimConfig:
        return FuncSimConfig(**overrides)

    def to_spec(self, engine: str = "geniex", *, seed: int = 0,
                workers: int | None = None, **xbar_overrides):
        """The profile's DNN-accuracy setup as one declarative spec.

        Returns the :class:`repro.api.spec.EmulationSpec` equivalent of
        the hand-wired ``dnn_crossbar()`` + ``funcsim()`` +
        ``dnn_train_spec()`` + ``make_engine`` assembly the figure
        drivers historically performed — resolved through
        :func:`repro.api.open_session`, it produces bit-identical
        results (tested). ``xbar_overrides`` feed
        :meth:`dnn_crossbar` (e.g. ``rows=16`` for the size sweeps);
        ``workers`` defaults to :func:`default_workers` (the
        ``REPRO_WORKERS`` env contract the loose path honoured).
        """
        if workers is None:
            workers = default_workers()
        from repro.api.spec import (EmulationSpec, EmulatorSpec,
                                    RuntimeSpec, SimSpec, XbarSpec)
        return EmulationSpec(
            engine=engine,
            xbar=XbarSpec.from_config(self.dnn_crossbar(**xbar_overrides)),
            sim=SimSpec.from_config(self.funcsim()),
            emulator=EmulatorSpec(sampling=self.sampling_spec(seed),
                                  training=self.dnn_train_spec(seed)),
            runtime=RuntimeSpec(workers=max(1, int(workers))))


QUICK = Profile(
    name="quick",
    xbar_sizes=(16, 32, 64),
    base_size=32,
    r_on_sweep_ohm=(50e3, 100e3, 300e3),
    onoff_sweep=(2.0, 6.0, 10.0),
    nf_n_g=4,
    nf_n_v=8,
    fig5_size=32,
    fig5_test_n_g=8,
    fig5_test_n_v=12,
    geniex_hidden=256,
    geniex_hidden_layers=2,
    geniex_n_g=60,
    geniex_n_v=20,
    geniex_epochs=180,
    geniex_batch=128,
    geniex_lr=2e-3,
    geniex_patience=50,
    dnn_geniex_hidden=192,
    dnn_geniex_hidden_layers=1,
    dnn_base_size=32,
    dnn_sizes=(8, 16, 32),
    image_size=12,
    shapes_classes=8,
    textures_classes=6,
    cnn_width=8,
    cnn_blocks=1,
    train_images=2000,
    train_epochs=12,
    eval_images=128,
    eval_images_fig9=64,
    eval_batch=64,
)

FULL = Profile(
    name="full",
    xbar_sizes=(16, 32, 64),
    base_size=64,
    r_on_sweep_ohm=(50e3, 100e3, 300e3),
    onoff_sweep=(2.0, 6.0, 10.0),
    nf_n_g=6,
    nf_n_v=12,
    fig5_size=64,
    fig5_test_n_g=10,
    fig5_test_n_v=20,
    geniex_hidden=500,
    geniex_hidden_layers=2,
    geniex_n_g=150,
    geniex_n_v=30,
    geniex_epochs=300,
    geniex_batch=128,
    geniex_lr=2e-3,
    geniex_patience=60,
    dnn_geniex_hidden=384,
    dnn_geniex_hidden_layers=1,
    dnn_base_size=64,
    dnn_sizes=(16, 32, 64),
    image_size=16,
    shapes_classes=10,
    textures_classes=8,
    cnn_width=12,
    cnn_blocks=2,
    train_images=4000,
    train_epochs=20,
    eval_images=512,
    eval_images_fig9=256,
    eval_batch=64,
)

_PROFILES = {"quick": QUICK, "full": FULL}


def get_profile(name: str | None = None) -> Profile:
    """Resolve the active profile (arg > ``REPRO_PROFILE`` env > quick)."""
    name = name or os.environ.get("REPRO_PROFILE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown profile {name!r}; choose from {sorted(_PROFILES)}")


def default_workers() -> int:
    """Funcsim runtime worker count (``REPRO_WORKERS`` env, default 1).

    Threaded through every accuracy experiment: ``1`` keeps the historical
    single-core inline path; ``> 1`` shards converted-model inference over
    the process backend (see :mod:`repro.funcsim.runtime`). The CLI's
    ``fig --workers`` sets the variable for one invocation.
    """
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        raise ConfigError(
            f"REPRO_WORKERS must be an integer, "
            f"got {os.environ.get('REPRO_WORKERS')!r}")


def shared_zoo(verbose: bool = False) -> GeniexZoo:
    """The GENIEx model zoo used by every experiment (disk-cached)."""
    return GeniexZoo(verbose=verbose)


def dnn_cache_dir() -> str:
    """Where trained reference CNNs are cached."""
    return os.path.join(os.path.dirname(default_cache_dir()), "dnn")


def format_table(title: str, headers: list, rows: list) -> str:
    """Fixed-width ASCII table used by every experiment's ``format()``."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[k]) for r in str_rows)) if str_rows
              else len(h) for k, h in enumerate(headers)]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[k].ljust(widths[k])
                               for k in range(len(headers))))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        return f"{value:.4g}"
    return str(value)
