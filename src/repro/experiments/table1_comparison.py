"""Table 1: related-work capability comparison (qualitative).

The paper's Table 1 positions GENIEx against CxDNN, CrossSim, NeuroSim and
AMS along three axes. This driver reproduces the table and appends a row for
this reproduction, verified programmatically against the package contents
(the claimed capability must import and run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import format_table

YES, NO = "yes", "no"


@dataclass
class Table1Result:
    rows: list = field(default_factory=list)

    def format(self) -> str:
        return format_table(
            "Table 1: related-work comparison",
            ["framework", "linear + non-linear non-idealities",
             "large-scale DNNs", "architecture model of MVM"],
            self.rows)


def _verify_capabilities() -> tuple:
    """Import-check the three capabilities claimed for this reproduction."""
    from repro.circuit.simulator import CrossbarCircuitSimulator  # noqa: F401
    from repro.core.emulator import GeniexEmulator  # noqa: F401
    nonlinear = YES
    from repro.models import resnet20  # noqa: F401
    from repro.experiments.accuracy import train_reference_network  # noqa: F401
    large_dnn = YES
    from repro.funcsim.engine import CrossbarMvmEngine  # noqa: F401
    from repro.funcsim.layers import Conv2dMVM  # noqa: F401
    arch_model = YES
    return nonlinear, large_dnn, arch_model


def run_table1() -> Table1Result:
    result = Table1Result(rows=[
        ["GENIEx (paper)", YES, YES, YES],
        ["CxDNN", NO, YES, NO],
        ["CrossSim", YES, NO, NO],
        ["NeuroSim", YES, NO, NO],
        ["AMS", NO, YES, NO],
    ])
    result.rows.append(["this reproduction", *_verify_capabilities()])
    return result


if __name__ == "__main__":
    print(run_table1().format())
