"""Figure 5: RMSE of NF — analytical model vs GENIEx, against the circuit.

The paper reports RMSE of the non-ideality factor with respect to HSPICE on
a 64x64 crossbar: analytical 1.73 / 8.99 and GENIEx 0.25 / 0.7 at supply
voltages 0.25 V / 0.5 V — i.e. GENIEx is ~7x / ~12.8x more accurate. The
reproduction trains a GENIEx model per supply voltage (cached in the zoo),
evaluates both models on a held-out operating-point set labelled by the full
circuit simulation, and reports the same two RMSE columns plus their ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytical.linear_model import AnalyticalLinearModel
from repro.core.dataset import build_geniex_dataset
from repro.core.metrics import rmse_of_nf
from repro.core.sampling import SamplingSpec
from repro.experiments.common import Profile, format_table, get_profile, \
    shared_zoo
from repro.xbar.config import CrossbarConfig

SUPPLY_VOLTAGES = (0.25, 0.5)


@dataclass
class Fig5Row:
    v_supply: float
    rmse_analytical: float
    rmse_geniex: float

    @property
    def ratio(self) -> float:
        return self.rmse_analytical / max(self.rmse_geniex, 1e-12)


@dataclass
class Fig5Result:
    rows: list = field(default_factory=list)

    def format(self) -> str:
        table_rows = [[f"{r.v_supply:g} V", r.rmse_analytical,
                       r.rmse_geniex, f"{r.ratio:.1f}x"] for r in self.rows]
        note = ("paper (64x64, HSPICE): analytical 1.73 / 8.99, GENIEx "
                "0.25 / 0.7 -> 7x / 12.8x")
        return format_table(
            "Fig 5: RMSE of NF w.r.t. circuit simulation",
            ["Vsupply", "analytical", "GENIEx", "improvement"],
            table_rows) + f"\n  {note}"


def evaluate_voltage(config: CrossbarConfig, profile: Profile,
                     progress: bool = False, sampling=None,
                     training=None, mode: str = "full") -> Fig5Row:
    """Train (or load) GENIEx for ``config`` and score both models.

    ``mode`` selects the emulator's characterisation labels (a spec's
    ``emulator.mode``); the held-out test set is always labelled by the
    full circuit simulation — that is the figure's ground truth.
    """
    zoo = shared_zoo()
    emulator = zoo.get_or_train(config,
                                sampling or profile.sampling_spec(seed=0),
                                training or profile.train_spec(seed=0),
                                mode=mode, progress=progress)
    test_spec = SamplingSpec(n_g_matrices=profile.fig5_test_n_g,
                             n_v_per_g=profile.fig5_test_n_v, seed=1234)
    test = build_geniex_dataset(config, test_spec, mode="full")

    analytical = AnalyticalLinearModel(config)
    i_geniex = np.empty_like(test.i_nonideal_a)
    i_analytical = np.empty_like(test.i_nonideal_a)
    for group in range(test_spec.n_g_matrices):
        rows = np.nonzero(test.group_index == group)[0]
        g = test.conductances_s[group]
        i_geniex[rows] = emulator.for_matrix(g).predict_currents(
            test.voltages_v[rows])
        i_analytical[rows] = analytical.predict_currents(
            test.voltages_v[rows], g)
    return Fig5Row(
        config.v_supply_v,
        rmse_of_nf(test.i_ideal_a, test.i_nonideal_a, i_analytical),
        rmse_of_nf(test.i_ideal_a, test.i_nonideal_a, i_geniex))


def run_fig5(profile: Profile | None = None,
             progress: bool = False, spec=None) -> Fig5Result:
    """Reproduce the Fig. 5 RMSE table.

    With a declarative ``spec`` (:class:`repro.api.spec.EmulationSpec`,
    e.g. from ``python -m repro fig fig5 --spec file.json``) the crossbar
    design and the GENIEx sampling/training hyper-parameters come from
    the spec instead of the profile; the supply-voltage sweep and the
    held-out test-set sizes stay the figure's own.
    """
    profile = profile or get_profile()
    result = Fig5Result()
    for v_supply in SUPPLY_VOLTAGES:
        if spec is not None:
            config = spec.xbar.to_config().replace(v_supply_v=v_supply)
            row = evaluate_voltage(config, profile, progress=progress,
                                   sampling=spec.emulator.sampling,
                                   training=spec.emulator.training,
                                   mode=spec.emulator.mode)
        else:
            config = profile.crossbar(rows=profile.fig5_size,
                                      v_supply_v=v_supply)
            row = evaluate_voltage(config, profile, progress=progress)
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run_fig5(progress=True).format())
