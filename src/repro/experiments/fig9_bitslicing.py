"""Figure 9: impact of stream (input) and slice (weight) bit widths.

For a 16-bit fixed-point network, sweep the bit-slicing configuration over
stream/slice widths {1, 2, 4} with GENIEx-modelled non-idealities. Paper
findings: 1- and 2-bit streams/slices recover near-ideal accuracy; 4-bit
costs ~12% on CIFAR-100; extremely sparse 1-bit x 1-bit operation can show
slightly *lower* accuracy than 2-bit because NF can go negative (device
non-linearity overshoot dominates when IR drops vanish).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.accuracy import (
    evaluate_mode,
    train_reference_network,
)
from repro.experiments.common import Profile, format_table, get_profile, \
    shared_zoo

WIDTHS = (1, 2, 4)


@dataclass
class Fig9Result:
    ideal_accuracy: float
    rows: list = field(default_factory=list)

    def format(self) -> str:
        return format_table(
            f"Fig 9: accuracy vs stream/slice widths "
            f"(ideal FxP = {self.ideal_accuracy:.4f})",
            ["streams", "slices", "accuracy", "degradation"],
            [[f"{st}-bit", f"{sl}-bit", acc, self.ideal_accuracy - acc]
             for st, sl, acc in self.rows])


def run_fig9(profile: Profile | None = None,
             progress: bool = False) -> Fig9Result:
    profile = profile or get_profile()
    zoo = shared_zoo()
    config = profile.dnn_crossbar()
    emulator = zoo.get_or_train(config, profile.sampling_spec(0),
                                profile.dnn_train_spec(0), progress=progress)
    model, x_test, y_test, _ = train_reference_network(
        "shapes", profile, verbose=progress)
    x_test = x_test[:profile.eval_images_fig9]
    y_test = y_test[:profile.eval_images_fig9]

    base_sim = profile.funcsim()
    ideal_acc = evaluate_mode(model, x_test, y_test, "ideal", config,
                              base_sim, profile.eval_batch)
    result = Fig9Result(ideal_acc)
    for stream_bits in WIDTHS:
        for slice_bits in WIDTHS:
            sim = base_sim.replace(stream_bits=stream_bits,
                                   slice_bits=slice_bits)
            acc = evaluate_mode(model, x_test, y_test, "geniex", config,
                                sim, profile.eval_batch, emulator=emulator)
            result.rows.append((stream_bits, slice_bits, acc))
            if progress:
                print(f"  [fig9] streams={stream_bits} slices={slice_bits} "
                      f"acc={acc:.4f}", flush=True)
    return result


if __name__ == "__main__":
    print(run_fig9(progress=True).format())
