"""Reference-network training and non-ideal accuracy evaluation.

Shared by the Fig. 7/8/9 drivers: train a ResNet-style CNN once per
(dataset, profile) pair — cached on disk — then evaluate it through any MVM
engine by converting the trained model with
:func:`repro.funcsim.convert_to_mvm` and measuring top-1 accuracy on the
held-out split.
"""

from __future__ import annotations

import os

import numpy as np

from repro.api.session import open_session
from repro.api.spec import EmulationSpec, RuntimeSpec, SimSpec, XbarSpec
from repro.core.emulator import GeniexEmulator
from repro.datasets import make_shapes_split, make_textures_split
from repro.errors import ConfigError
from repro.experiments.common import Profile, default_workers, dnn_cache_dir
from repro.funcsim import close_mvm_executor, convert_to_mvm, make_engine
from repro.funcsim.config import FuncSimConfig
from repro.models import ResNet
from repro.nn import Adam, cross_entropy, load_state_dict, save_state_dict
from repro.nn.losses import accuracy
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import rng_from_seed
from repro.xbar.config import CrossbarConfig

DATASETS = ("shapes", "textures")


def load_dataset(name: str, profile: Profile, seed: int = 0) -> tuple:
    """Train/test split of a named dataset at profile sizes."""
    if name == "shapes":
        return make_shapes_split(profile.train_images, profile.eval_images,
                                 image_size=profile.image_size,
                                 num_classes=profile.shapes_classes,
                                 seed=seed)
    if name == "textures":
        return make_textures_split(profile.train_images, profile.eval_images,
                                   image_size=profile.image_size,
                                   num_classes=profile.textures_classes,
                                   noise=0.6, seed=seed)
    raise ConfigError(f"unknown dataset {name!r}; choose from {DATASETS}")


def _network_for(name: str, profile: Profile, num_classes: int,
                 seed: int = 0) -> ResNet:
    return ResNet(profile.cnn_blocks, num_classes, in_channels=1,
                  width=profile.cnn_width, seed=seed)


def _cache_path(name: str, profile: Profile, seed: int) -> str:
    return os.path.join(dnn_cache_dir(),
                        f"{name}-{profile.name}-seed{seed}.npz")


def train_reference_network(name: str, profile: Profile,
                            seed: int = 0, verbose: bool = False) -> tuple:
    """Train (or load) the reference CNN for a dataset.

    Returns:
        ``(model, x_test, y_test, float_accuracy)``.
    """
    x_train, y_train, x_test, y_test = load_dataset(name, profile, seed)
    num_classes = int(y_train.max()) + 1
    model = _network_for(name, profile, num_classes, seed)
    path = _cache_path(name, profile, seed)
    if os.path.exists(path):
        model.load_state_dict(load_state_dict(path))
    else:
        rng = rng_from_seed(seed)
        optimizer = Adam(model.parameters(), lr=3e-3)
        batch = 64
        n = len(x_train)
        for epoch in range(profile.train_epochs):
            perm = rng.permutation(n)
            total = 0.0
            for start in range(0, n, batch):
                idx = perm[start:start + batch]
                loss = cross_entropy(model(Tensor(x_train[idx])),
                                     y_train[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += loss.item() * len(idx)
            if verbose:
                print(f"  [dnn-train:{name}] epoch {epoch} "
                      f"loss {total / n:.4f}", flush=True)
        save_state_dict(model.state_dict(), path)
    model.eval()
    float_acc = evaluate_float(model, x_test, y_test, profile.eval_batch)
    return model, x_test, y_test, float_acc


def _top1_accuracy(model, x: np.ndarray, y: np.ndarray,
                   batch: int) -> float:
    """Batched top-1 accuracy of any callable model (no grad)."""
    hits = 0
    with no_grad():
        for start in range(0, len(x), batch):
            logits = model(Tensor(x[start:start + batch]))
            hits += int((logits.data.argmax(axis=1)
                         == y[start:start + batch]).sum())
    return hits / len(x)


def evaluate_float(model, x: np.ndarray, y: np.ndarray,
                   batch: int = 64) -> float:
    """Top-1 accuracy of the plain float model."""
    model.eval()
    return _top1_accuracy(model, x, y, batch)


def evaluate_engine(model, x: np.ndarray, y: np.ndarray, engine,
                    batch: int = 64, workers: int | None = None,
                    executor=None) -> float:
    """Top-1 accuracy of the model converted onto an MVM engine.

    ``workers`` (default: ``REPRO_WORKERS`` env, i.e. 1) shards converted
    inference over the funcsim runtime; ``executor`` picks the backend
    (spec string or instance; ``workers > 1`` alone selects ``process``).
    The executor's worker pool is torn down before returning unless a
    ready-made instance was passed in (the caller owns its lifecycle).
    """
    owns_executor = not hasattr(executor, "matmul")
    if workers is None:
        workers = default_workers()
    if workers <= 1 and executor is None:
        converted = convert_to_mvm(model, engine)
    else:
        converted = convert_to_mvm(model, engine, executor=executor,
                                   workers=workers)
    try:
        return _top1_accuracy(converted, x, y, batch)
    finally:
        if owns_executor:
            close_mvm_executor(converted)


def evaluate_spec(model, x: np.ndarray, y: np.ndarray,
                  spec: EmulationSpec, batch: int = 64, zoo=None,
                  emulator: GeniexEmulator | None = None) -> float:
    """Top-1 accuracy of ``model`` evaluated through a declarative spec.

    The canonical evaluation path: the spec resolves through
    :func:`repro.api.open_session` (zoo get-or-train, engine factory,
    runtime workers per ``spec.runtime``) and the model is compiled with
    :meth:`Session.compile`. ``emulator`` short-circuits zoo resolution
    with a ready-trained instance, which the sweep drivers use to train
    their emulators once up front.
    """
    with open_session(spec, zoo=zoo, emulator=emulator) as session:
        return _top1_accuracy(session.compile(model), x, y, batch)


def evaluate_mode(model, x, y, mode: str, xbar: CrossbarConfig,
                  sim: FuncSimConfig, batch: int = 64,
                  emulator: GeniexEmulator | None = None,
                  workers: int | None = None) -> float:
    """Accuracy under a named engine mode (``ideal``/``geniex``/...).

    Thin adapter lowering loose (mode, xbar, sim, workers) arguments
    into an :class:`EmulationSpec` and delegating to
    :func:`evaluate_spec` — bit-identical to the historical hand-wired
    ``make_engine`` + ``convert_to_mvm`` assembly (tested).
    """
    if mode == "geniex" and emulator is None:
        raise ConfigError("geniex evaluation requires a trained emulator")
    spec = EmulationSpec(
        engine=mode,
        xbar=XbarSpec.from_config(xbar),
        sim=SimSpec.from_config(sim),
        runtime=RuntimeSpec(workers=default_workers()
                            if workers is None else max(1, int(workers))))
    return evaluate_spec(model, x, y, spec, batch=batch, emulator=emulator)


__all__ = [
    "DATASETS",
    "load_dataset",
    "train_reference_network",
    "evaluate_float",
    "evaluate_engine",
    "evaluate_spec",
    "evaluate_mode",
    "accuracy",
]
