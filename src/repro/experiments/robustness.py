"""Robustness sweep: a device-fault grid through the full funcsim stack.

The paper flags device variations as the factor that "exacerbates"
crossbar non-ideality. The old variation driver quantified that on one
hard-wired path (exact analog tiles through the circuit oracle); this
driver sweeps a ``sigma x fault-rate x drift`` grid of
:class:`~repro.nonideal.NonidealitySpec` compositions through the *full*
bit-sliced functional-simulator pipeline for any engine kind —
``geniex`` / ``exact`` / ``analytical`` by default — via the same
:func:`~repro.api.open_session` path every other surface uses, so the
numbers include quantisation, bit-slicing, ADC transfer and the engine's
own fidelity, not just raw analog error.

Two cost controls keep big grids honest:

* the GENIEx emulator is resolved **once per engine kind from the clean
  spec** and handed to every faulty session (the characterisation sweep
  is fault-independent; without this, conservative model-key separation
  would retrain per grid point);
* any grid cell whose fault composition is the identity reuses the
  already-computed clean solve (``reused`` column) — the sweep's clean
  baseline column costs nothing.

:func:`nf_stats` is the circuit-level companion (the migrated NF path the
``variations`` table is built from): it perturbs whole sampled
conductance matrices through the same pipeline and reports how the NF
distribution widens against the *intended* computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.session import open_session, resolve_emulator
from repro.api.spec import EmulationSpec
from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.metrics import nonideality_factor, valid_mask
from repro.core.sampling import SamplingSpec, VgSampler
from repro.errors import ConfigError
from repro.experiments.common import Profile, format_table, get_profile
from repro.funcsim.engine import IdealMvmEngine
from repro.mitigation.calibration import fit_affine_correction
from repro.nonideal import (
    DriftSpec,
    NonidealityPipeline,
    NonidealitySpec,
    StuckSpec,
    VariationSpec,
)
from repro.xbar.ideal import ideal_mvm

DEFAULT_SIGMAS = (0.0, 0.05, 0.1, 0.2)
DEFAULT_FAULT_RATES = (0.0, 0.01, 0.05)
DEFAULT_DRIFT_TIMES = (0.0, 1e3)
DEFAULT_ENGINES = ("geniex", "exact", "analytical")


def nonideality_for(sigma: float = 0.0, fault_rate: float = 0.0,
                    drift_time_s: float = 0.0,
                    seed: int = 13) -> NonidealitySpec:
    """One grid point's fault composition.

    ``fault_rate`` splits evenly between stuck-ON and stuck-OFF (the
    convention the variation study always used); drift uses the
    transform's default decay exponent.
    """
    return NonidealitySpec(
        seed=seed,
        variation=VariationSpec(sigma=sigma),
        stuck=StuckSpec(p_on=fault_rate / 2, p_off=fault_rate / 2),
        drift=DriftSpec(time_s=drift_time_s))


@dataclass
class RobustnessResult:
    """Grid rows ``[engine, sigma, fault, drift, rmse, p95, reused]``.

    With ``mitigated=True`` (from ``run_robustness(mitigate=True)``) two
    extra columns — mitigated RMSE and the fraction of RMSE recovered —
    sit *before* the trailing ``reused clean`` column, so ``row[4]``
    (raw RMSE) and ``row[-1]`` (reuse marker) index the same fields
    either way.
    """

    grid: list = field(default_factory=list)
    mitigated: bool = False

    def format(self) -> str:
        headers = ["engine", "sigma", "fault rate", "drift s", "RMSE",
                   "|err| p95"]
        if self.mitigated:
            headers += ["mitig RMSE", "recovered"]
        headers.append("reused clean")
        return format_table(
            "Robustness: MVM error vs device faults "
            "(full funcsim pipeline, error against the ideal FxP product)",
            headers, self.grid)


def nf_stats(config, nonideality: NonidealitySpec, n_g: int, n_v: int,
             seed: int = 13) -> list:
    """Circuit-level NF statistics under a fault composition.

    Samples ``n_g`` conductance matrices with ``n_v`` voltage vectors
    each, perturbs every matrix through the (coordinate-keyed, here
    matrix-index-keyed) pipeline, and solves the full non-linear circuit:
    the *intended* computation uses the target conductances, the hardware
    executes the perturbed ones. Returns
    ``[NF mean, NF std, relative |err| p95]`` — the row shape of the
    variation study's tables.
    """
    pipeline = NonidealityPipeline(nonideality)
    spec = SamplingSpec(n_g_matrices=n_g, n_v_per_g=n_v, seed=seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    nf_all, err_all = [], []
    for g in range(n_g):
        target = conductances[g]
        actual = pipeline.perturb(target, (g,), config.g_off_s,
                                  config.g_on_s)
        rows = np.nonzero(groups == g)[0]
        i_ideal = ideal_mvm(voltages[rows], target)
        i_real = simulator.solve_batch(voltages[rows], actual, mode="full")
        mask = valid_mask(i_ideal)
        nf_all.append(nonideality_factor(i_ideal, i_real)[mask])
        err_all.append(np.abs(i_ideal - i_real)[mask]
                       / np.abs(i_ideal)[mask])
    nf = np.concatenate(nf_all)
    err = np.concatenate(err_all)
    return [float(nf.mean()), float(nf.std()),
            float(np.percentile(err, 95))]


def _sweep_operands(spec: EmulationSpec, batch: int, seed: int) -> tuple:
    """Fixed (inputs, weights) spanning at least a 2x2 tile grid."""
    rows, cols = spec.xbar.rows, spec.xbar.cols
    n_in = rows + max(1, rows // 2)
    n_out = cols + max(1, cols // 4)
    rng = np.random.default_rng(seed)
    x = rng.uniform(-0.5, 0.5, size=(batch, n_in))
    weights = rng.uniform(-0.5, 0.5, size=(n_in, n_out))
    return x, weights


def run_robustness(profile: Profile | None = None, *,
                   spec: EmulationSpec | None = None,
                   engines: tuple = DEFAULT_ENGINES,
                   sigmas: tuple = DEFAULT_SIGMAS,
                   fault_rates: tuple = DEFAULT_FAULT_RATES,
                   drift_times: tuple = DEFAULT_DRIFT_TIMES,
                   batch: int = 16, seed: int = 13,
                   mitigate: bool = False, zoo=None) -> RobustnessResult:
    """Sweep the fault grid through the full funcsim engine pipeline.

    ``spec`` fixes the crossbar design / precision / emulator recipe
    (its ``engine`` and ``nonideality`` nodes are overridden per grid
    point); without one, the active profile's DNN-accuracy setup is
    used. One fixed operand pair streams through every engine x fault
    combination, and each row reports the error of the faulty crossbar
    product against the ideal fixed-point product.

    ``mitigate=True`` adds a per-cell output calibration column: a
    disjoint calibration batch (drawn from ``seed + 1``) runs through
    the same faulty engine, a per-output-column affine correction is
    fitted against the ideal product
    (:func:`~repro.mitigation.calibration.fit_affine_correction`, ridge
    from ``spec.mitigation.calibration.ridge``), and the held-out
    operands are re-scored after correction — quantifying how much of
    each cell's systematic error calibration recovers.
    """
    if spec is None:
        profile = profile or get_profile()
        spec = profile.to_spec(engine="geniex", seed=seed, workers=1)
    for engine in engines:
        if engine == "ideal":
            raise ConfigError(
                "the ideal engine has no analog state to perturb and "
                "cannot participate in a robustness sweep")
    x, weights = _sweep_operands(spec, batch, seed)
    ideal_engine = IdealMvmEngine(spec.sim.to_config())
    y_ideal = ideal_engine.matmul(x, weights)
    x_cal = y_cal_ideal = None
    if mitigate:
        # Calibration operands are disjoint from the scored batch (seed+1)
        # so the corrected RMSE is held-out, not a fit to its own target.
        cal_rng = np.random.default_rng(seed + 1)
        x_cal = cal_rng.uniform(-0.5, 0.5,
                                size=(max(batch, 32), x.shape[1]))
        y_cal_ideal = ideal_engine.matmul(x_cal, weights)

    result = RobustnessResult(mitigated=mitigate)
    grid = [(s, r, d) for s in sigmas for r in fault_rates
            for d in drift_times]
    for engine in engines:
        # Replace (not merge) the nonideality node: the engine baseline is
        # the clean crossbar even when the incoming spec carried faults.
        base = spec.evolve(engine=engine,
                           nonideality=NonidealitySpec(seed=seed))
        emulator = None
        if engine == "geniex":
            # Resolve from the *clean* spec exactly once per engine kind;
            # faulty sessions receive it directly, so conservative
            # model-key separation never retrains inside the sweep.
            emulator = resolve_emulator(base, zoo=zoo)
        # The clean solve is computed once, before the grid: every grid
        # cell whose composed transforms are the identity is then served
        # from it — the sweep's clean baseline column costs nothing.
        with open_session(base, zoo=zoo, emulator=emulator) as session:
            clean_y = session.matmul(x, weights)
            clean_y_cal = session.matmul(x_cal, weights) if mitigate \
                else None
        for sigma, rate, drift in grid:
            point = base.evolve(nonideality=nonideality_for(
                sigma=sigma, fault_rate=rate, drift_time_s=drift,
                seed=seed))
            reused = point.nonideality.is_identity
            if reused:
                y, y_cal = clean_y, clean_y_cal
            else:
                with open_session(point, zoo=zoo,
                                  emulator=emulator) as session:
                    y = session.matmul(x, weights)
                    y_cal = session.matmul(x_cal, weights) if mitigate \
                        else None
            err = np.abs(y - y_ideal)
            rmse = float(np.sqrt(np.mean(err ** 2)))
            row = [engine, f"{sigma:g}", f"{rate:g}", f"{drift:g}", rmse,
                   float(np.percentile(err, 95))]
            if mitigate:
                scale, offset = fit_affine_correction(
                    y_cal, y_cal_ideal,
                    ridge=spec.mitigation.calibration.ridge)
                mit_err = np.abs(y * scale + offset - y_ideal)
                mit_rmse = float(np.sqrt(np.mean(mit_err ** 2)))
                recovered = 1.0 - mit_rmse / rmse if rmse > 0 else 0.0
                row += [mit_rmse, f"{recovered:+.1%}"]
            row.append("yes" if reused else "no")
            result.grid.append(row)
    return result


if __name__ == "__main__":
    print(run_robustness().format())
