"""Device-variation study (the paper's "exacerbated further" remark).

Section 1 of the paper notes that non-ideality effects "get exacerbated
further due to the device variations". This driver quantifies that at the
circuit level: sweep the lognormal programming-variation sigma and the
stuck-at-fault rate, simulate the full non-ideal crossbar with perturbed
conductances, and report how the NF distribution widens.

Since the non-ideality refactor this is a thin wrapper over the
robustness driver (:mod:`repro.experiments.robustness`): each sweep point
is a declarative :class:`~repro.nonideal.NonidealitySpec` fed to
:func:`~repro.experiments.robustness.nf_stats`, so the exact same fault
compositions can be replayed through the full funcsim engines, the
serving stack, or any spec-driven surface. The table shape (titles,
columns, row structure) is unchanged; individual values differ from
pre-refactor runs because the draws now come from the pipeline's
coordinate-keyed RNG streams instead of the old ad-hoc spawned
generators — the qualitative trends (spread widening with sigma and
fault rate) are what the tests assert.
For MVM-level error through the complete bit-sliced pipeline (not just
the exact-analog circuit path this study hardwires), run
:func:`~repro.experiments.robustness.run_robustness` (CLI:
``python -m repro fig robustness``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import Profile, format_table, get_profile
from repro.experiments.robustness import nf_stats, nonideality_for

DEFAULT_SIGMAS = (0.0, 0.05, 0.1, 0.2)
DEFAULT_FAULT_RATES = (0.0, 0.01, 0.05)


@dataclass
class VariationResult:
    by_sigma: list = field(default_factory=list)
    by_fault_rate: list = field(default_factory=list)

    def format(self) -> str:
        return "\n\n".join([
            format_table(
                "Device variation: NF vs programming sigma (lognormal)",
                ["sigma", "NF mean", "NF std", "|err| p95"],
                self.by_sigma),
            format_table(
                "Device variation: NF vs stuck-at-fault rate",
                ["fault rate", "NF mean", "NF std", "|err| p95"],
                self.by_fault_rate),
        ])


def run_variations(profile: Profile | None = None,
                   sigmas=DEFAULT_SIGMAS,
                   fault_rates=DEFAULT_FAULT_RATES,
                   seed: int = 13) -> VariationResult:
    profile = profile or get_profile()
    config = profile.crossbar()
    n_g, n_v = profile.nf_n_g, profile.nf_n_v
    result = VariationResult()
    for sigma in sigmas:
        nonideality = nonideality_for(sigma=sigma, seed=seed)
        result.by_sigma.append(
            [f"{sigma:g}", *nf_stats(config, nonideality, n_g, n_v,
                                     seed=seed)])
    for rate in fault_rates:
        nonideality = nonideality_for(fault_rate=rate, seed=seed)
        result.by_fault_rate.append(
            [f"{rate:g}", *nf_stats(config, nonideality, n_g, n_v,
                                    seed=seed)])
    return result


if __name__ == "__main__":
    print(run_variations().format())
