"""Device-variation study (the paper's "exacerbated further" remark).

Section 1 of the paper notes that non-ideality effects "get exacerbated
further due to the device variations". This driver quantifies that: sweep
the lognormal programming-variation sigma and the stuck-at-fault rate,
simulate the full non-ideal crossbar with perturbed conductances, and
report how the NF distribution widens — plus the MVM-level error through
the functional simulator's exact-analog engine with perturbed tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.metrics import nonideality_factor, valid_mask
from repro.core.sampling import SamplingSpec, VgSampler
from repro.devices.variations import (
    apply_lognormal_variation,
    apply_stuck_faults,
)
from repro.experiments.common import Profile, format_table, get_profile
from repro.utils.rng import spawn_rngs
from repro.xbar.ideal import ideal_mvm

DEFAULT_SIGMAS = (0.0, 0.05, 0.1, 0.2)
DEFAULT_FAULT_RATES = (0.0, 0.01, 0.05)


@dataclass
class VariationResult:
    by_sigma: list = field(default_factory=list)
    by_fault_rate: list = field(default_factory=list)

    def format(self) -> str:
        return "\n\n".join([
            format_table(
                "Device variation: NF vs programming sigma (lognormal)",
                ["sigma", "NF mean", "NF std", "|err| p95"],
                self.by_sigma),
            format_table(
                "Device variation: NF vs stuck-at-fault rate",
                ["fault rate", "NF mean", "NF std", "|err| p95"],
                self.by_fault_rate),
        ])


def _nf_stats(config, conductance_perturber, n_g: int, n_v: int,
              seed: int = 13) -> list:
    """Simulate with per-group perturbed conductances; return NF stats."""
    spec = SamplingSpec(n_g_matrices=n_g, n_v_per_g=n_v, seed=seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    rngs = spawn_rngs(seed + 1, n_g)
    nf_all, err_all = [], []
    for g in range(n_g):
        target = conductances[g]
        actual = conductance_perturber(target, rngs[g])
        rows = np.nonzero(groups == g)[0]
        # The *intended* computation uses the target conductances; the
        # hardware executes the perturbed ones.
        i_ideal = ideal_mvm(voltages[rows], target)
        i_real = simulator.solve_batch(voltages[rows], actual, mode="full")
        mask = valid_mask(i_ideal)
        nf = nonideality_factor(i_ideal, i_real)[mask]
        nf_all.append(nf)
        err_all.append(np.abs(i_ideal - i_real)[mask]
                       / np.abs(i_ideal)[mask])
    nf = np.concatenate(nf_all)
    err = np.concatenate(err_all)
    return [float(nf.mean()), float(nf.std()),
            float(np.percentile(err, 95))]


def run_variations(profile: Profile | None = None,
                   sigmas=DEFAULT_SIGMAS,
                   fault_rates=DEFAULT_FAULT_RATES) -> VariationResult:
    profile = profile or get_profile()
    config = profile.crossbar()
    n_g, n_v = profile.nf_n_g, profile.nf_n_v
    result = VariationResult()

    for sigma in sigmas:
        def perturb(g, rng, sigma=sigma):
            return apply_lognormal_variation(
                g, sigma, rng, g_min_s=config.g_off_s,
                g_max_s=config.g_on_s)

        result.by_sigma.append(
            [f"{sigma:g}", *_nf_stats(config, perturb, n_g, n_v)])

    for rate in fault_rates:
        def perturb(g, rng, rate=rate):
            return apply_stuck_faults(g, rate / 2, rate / 2,
                                      config.g_on_s, config.g_off_s, rng)

        result.by_fault_rate.append(
            [f"{rate:g}", *_nf_stats(config, perturb, n_g, n_v)])
    return result


if __name__ == "__main__":
    print(run_variations().format())
