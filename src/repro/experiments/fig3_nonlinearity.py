"""Figure 3: impact of non-linear (data-dependent) non-idealities.

(a) output-current distributions with only linear non-idealities vs with
both linear and non-linear effects, at 0.25 V and 0.5 V supply; (b) the
relative difference between the two cases grows with the maximum supply
voltage — the core argument for a data-dependent model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.metrics import valid_mask
from repro.core.sampling import SamplingSpec, VgSampler
from repro.experiments.common import Profile, format_table, get_profile
from repro.xbar.ideal import ideal_mvm

DEFAULT_VSUPPLY_GRID = (0.1, 0.2, 0.25, 0.3, 0.4, 0.5)


@dataclass
class Fig3Result:
    distributions: list = field(default_factory=list)  # (V, stats dict)
    relative_error: list = field(default_factory=list)  # (V, mean, p95)

    def format(self) -> str:
        dist_rows = [[f"{v:g} V", s["linear_mean"], s["full_mean"],
                      s["linear_std"], s["full_std"]]
                     for v, s in self.distributions]
        err_rows = [[f"{v:g} V", mean, p95]
                    for v, mean, p95 in self.relative_error]
        return "\n\n".join([
            format_table(
                "Fig 3(a): output-current distribution (uA), linear-only vs "
                "full", ["Vsupply", "lin mean", "full mean", "lin std",
                         "full std"], dist_rows),
            format_table(
                "Fig 3(b): relative |full - linear| / linear vs supply "
                "voltage", ["Vsupply", "mean rel err", "p95 rel err"],
                err_rows),
        ])


def run_fig3(profile: Profile | None = None,
             vsupply_grid=DEFAULT_VSUPPLY_GRID) -> Fig3Result:
    profile = profile or get_profile()
    result = Fig3Result()
    for v_supply in vsupply_grid:
        config = profile.crossbar(v_supply_v=v_supply)
        spec = SamplingSpec(n_g_matrices=profile.nf_n_g,
                            n_v_per_g=profile.nf_n_v, seed=11)
        voltages, conductances, groups = VgSampler(config, spec).sample()
        simulator = CrossbarCircuitSimulator(config)
        i_linear = np.empty((len(voltages), config.cols))
        i_full = np.empty_like(i_linear)
        i_ideal = np.empty_like(i_linear)
        for g in range(spec.n_g_matrices):
            rows = np.nonzero(groups == g)[0]
            i_ideal[rows] = ideal_mvm(voltages[rows], conductances[g])
            i_linear[rows] = simulator.solve_batch(
                voltages[rows], conductances[g], mode="linear")
            i_full[rows] = simulator.solve_batch(
                voltages[rows], conductances[g], mode="full")
        mask = valid_mask(i_ideal)
        rel = np.abs(i_full[mask] - i_linear[mask]) / np.maximum(
            np.abs(i_linear[mask]), 1e-15)
        result.relative_error.append(
            (v_supply, float(rel.mean()), float(np.percentile(rel, 95))))
        if v_supply in (0.25, 0.5):
            result.distributions.append((v_supply, {
                "linear_mean": float(i_linear[mask].mean() * 1e6),
                "full_mean": float(i_full[mask].mean() * 1e6),
                "linear_std": float(i_linear[mask].std() * 1e6),
                "full_std": float(i_full[mask].std() * 1e6),
            }))
    return result


if __name__ == "__main__":
    print(run_fig3().format())
