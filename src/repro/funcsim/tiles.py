"""Tiling of weight matrices onto fixed-size crossbars.

A quantised weight matrix of shape ``(K, M)`` maps onto a grid of
``ceil(K / rows) x ceil(M / cols)`` crossbar tiles, zero-padded at the
edges. Tiles in a tile-row share the same input-vector slice; tiles in a
tile-column produce partial sums that are accumulated digitally
(paper Fig. 6, phase 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def n_tiles(length: int, tile: int) -> int:
    """Number of tiles covering ``length`` elements."""
    if length < 1 or tile < 1:
        raise ShapeError("length and tile size must be >= 1")
    return -(-length // tile)


def pad_axis(array: np.ndarray, axis: int, multiple: int) -> np.ndarray:
    """Zero-pad ``axis`` up to the next multiple of ``multiple``."""
    length = array.shape[axis]
    target = n_tiles(length, multiple) * multiple
    if target == length:
        return array
    widths = [(0, 0)] * array.ndim
    widths[axis] = (0, target - length)
    return np.pad(array, widths)


def tile_matrix(matrix: np.ndarray, tile_rows: int,
                tile_cols: int) -> np.ndarray:
    """Split ``(K, M)`` into ``(Tr, Tc, tile_rows, tile_cols)`` tiles."""
    if matrix.ndim != 2:
        raise ShapeError(f"expected a matrix, got shape {matrix.shape}")
    padded = pad_axis(pad_axis(matrix, 0, tile_rows), 1, tile_cols)
    t_r = padded.shape[0] // tile_rows
    t_c = padded.shape[1] // tile_cols
    return padded.reshape(t_r, tile_rows, t_c, tile_cols).transpose(
        0, 2, 1, 3)


def untile_matrix(tiles: np.ndarray, n_rows: int, n_cols: int) -> np.ndarray:
    """Inverse of :func:`tile_matrix`, trimming the zero padding."""
    if tiles.ndim != 4:
        raise ShapeError(f"expected 4-D tiles, got shape {tiles.shape}")
    t_r, t_c, tile_rows, tile_cols = tiles.shape
    merged = tiles.transpose(0, 2, 1, 3).reshape(t_r * tile_rows,
                                                 t_c * tile_cols)
    return merged[:n_rows, :n_cols]
