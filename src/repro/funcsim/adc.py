"""ADC transfer function.

Bit-line currents are digitised by an ``adc_bits`` converter whose LSB is
*aligned to the unit-count current* ``dV * dG`` — the current produced by a
single (stream-level 1) x (slice-level 1) product. This is how bit-sliced
accelerators size their converters (ISAAC: ``adc_bits ~ log2(rows) +
stream_bits + slice_bits``; the paper's 14 bits = 6 + 4 + 4 for a 64-row
crossbar): with an aligned grid the conversion of an *ideal* current is
lossless, so every ADC error observed downstream is attributable to analog
non-ideality or to genuinely insufficient resolution — not to an arbitrary
misalignment between the ADC grid and the integer count grid.

Currents above the span clip; device non-linearity can genuinely push
bit-line currents beyond the ideal maximum, and that saturation is part of
the modelled behaviour.

Grid-alignment subtlety: the ``g_off`` mapping bias adds ``(2^slice_bits -
1) / (onoff - 1)`` count-units of current per active input row. With the
paper's configuration (4-bit slices, ON/OFF = 6) that is exactly 3 units,
so the aligned ADC digitises ideal currents losslessly; for narrower slices
the bias is fractional and contributes a genuine sub-LSB conversion error.
Tests that want a lossless oracle for arbitrary slicing shrink the LSB with
``adc_headroom = 1 / (onoff - 1)`` so both grids align.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.validation import check_positive


class AdcModel:
    """Uniform quantiser over ``[0, (2**bits - 1) * lsb_a]``.

    Optional converter non-idealities (cf. the AMS error-modelling line of
    work the paper cites as related): a static input-referred ``offset_a``
    and white input-referred noise of ``noise_rms_a`` (re-sampled per
    conversion from a seeded generator, so runs stay reproducible).
    """

    def __init__(self, bits: int, lsb_a: float, offset_a: float = 0.0,
                 noise_rms_a: float = 0.0, seed=0):
        if bits < 1:
            raise ConfigError(f"adc bits must be >= 1, got {bits}")
        check_positive("lsb_a", lsb_a)
        if noise_rms_a < 0:
            raise ConfigError("noise_rms_a must be >= 0")
        self.bits = int(bits)
        self.lsb_a = float(lsb_a)
        self.offset_a = float(offset_a)
        self.noise_rms_a = float(noise_rms_a)
        self.n_codes = 2 ** self.bits
        self.full_scale_a = (self.n_codes - 1) * self.lsb_a
        self._rng = np.random.default_rng(seed)

    @classmethod
    def aligned(cls, bits: int, unit_current_a: float,
                headroom: float = 1.0, offset_lsb: float = 0.0,
                noise_lsb: float = 0.0, seed=0) -> "AdcModel":
        """LSB equal to ``headroom`` unit-count currents (default aligned).

        ``offset_lsb`` / ``noise_lsb`` specify converter non-idealities in
        LSB units.
        """
        lsb = unit_current_a * headroom
        return cls(bits, lsb, offset_a=offset_lsb * lsb,
                   noise_rms_a=noise_lsb * lsb, seed=seed)

    def codes(self, currents_a) -> np.ndarray:
        """Digital output codes (clipped round-to-nearest)."""
        currents_a = np.asarray(currents_a, dtype=np.float64)
        if self.offset_a:
            currents_a = currents_a + self.offset_a
        if self.noise_rms_a:
            currents_a = currents_a + self._rng.normal(
                0.0, self.noise_rms_a, size=currents_a.shape)
        q = np.rint(currents_a / self.lsb_a)
        return np.clip(q, 0, self.n_codes - 1).astype(np.int64)

    def measure(self, currents_a) -> np.ndarray:
        """Quantised current estimate (codes scaled back to Amperes)."""
        return self.codes(currents_a) * self.lsb_a

    def __repr__(self):
        return (f"AdcModel(bits={self.bits}, "
                f"full_scale_a={self.full_scale_a:g}, "
                f"offset_a={self.offset_a:g}, "
                f"noise_rms_a={self.noise_rms_a:g})")
