"""Fixed-point quantisation.

All digital datapaths of the functional simulator use signed two's-complement
fixed point, described by a total bit width and a fractional bit count
(paper defaults: 16-bit inputs/weights with 13 fractional bits, 32-bit
accumulator with 24 fractional bits). Saturation is symmetric so that every
representable magnitude has a negation — this keeps the sign-split used by
bit-slicing exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format ``Q(bits - frac_bits - 1).frac_bits``.

    Attributes:
        bits: Total width including the sign bit.
        frac_bits: Bits to the right of the binary point.
    """

    bits: int
    frac_bits: int

    def __post_init__(self):
        if self.bits < 2:
            raise ConfigError(f"bits must be >= 2, got {self.bits}")
        if self.frac_bits < 0 or self.frac_bits >= self.bits:
            raise ConfigError(
                f"frac_bits must lie in [0, bits), got {self.frac_bits}")

    @property
    def resolution(self) -> float:
        """Value of one LSB."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_int(self) -> int:
        """Largest representable integer code (symmetric saturation)."""
        return 2 ** (self.bits - 1) - 1

    @property
    def min_int(self) -> int:
        return -self.max_int

    @property
    def max_value(self) -> float:
        return self.max_int * self.resolution

    @property
    def magnitude_bits(self) -> int:
        """Bits needed for the magnitude of any representable code."""
        return self.bits - 1

    def quantize_to_int(self, x) -> np.ndarray:
        """Round-to-nearest integer codes with symmetric saturation."""
        x = np.asarray(x, dtype=np.float64)
        q = np.rint(x / self.resolution)
        return np.clip(q, self.min_int, self.max_int).astype(np.int64)

    def dequantize(self, q) -> np.ndarray:
        return np.asarray(q, dtype=np.float64) * self.resolution

    def quantize(self, x) -> np.ndarray:
        """Project onto the representable grid (float in, float out)."""
        return self.dequantize(self.quantize_to_int(x))

    def __str__(self):
        return f"Q{self.bits}.{self.frac_bits}"
