"""Functional-simulator configuration (bit widths of every component).

Defaults follow the paper's Section 6: accumulator 32-bit (24 fractional),
ADC 14-bit, inputs and weights 16-bit (13 fractional), 4-bit input streams,
4-bit weight slices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.funcsim.quant import FixedPointFormat
from repro.funcsim.slicing import n_units


@dataclass(frozen=True)
class FuncSimConfig:
    """Digital precision parameters of the MVM architecture.

    Attributes:
        weight_bits / weight_frac_bits: Fixed-point format of weights.
        activation_bits / activation_frac_bits: Format of activations.
        stream_bits: Input bit-stream width per DAC step (paper: 4).
        slice_bits: Weight bits per conductance slice (paper: 4).
        adc_bits: ADC resolution (paper: 14).
        accumulator_bits / accumulator_frac_bits: Partial-sum register
            format (paper: 32 total, 24 fractional).
        adc_headroom: Multiplier on the default ADC LSB / full scale.
        adc_offset_lsb / adc_noise_lsb: Converter offset and input-referred
            noise, in LSB units (0 = the paper's ideal converter).
        adc_seed: Seed of the converter-noise generator.
    """

    weight_bits: int = 16
    weight_frac_bits: int = 13
    activation_bits: int = 16
    activation_frac_bits: int = 13
    stream_bits: int = 4
    slice_bits: int = 4
    adc_bits: int = 14
    accumulator_bits: int = 32
    accumulator_frac_bits: int = 24
    adc_headroom: float = 1.0
    adc_offset_lsb: float = 0.0
    adc_noise_lsb: float = 0.0
    adc_seed: int = 0

    def __post_init__(self):
        if self.stream_bits < 1 or self.slice_bits < 1:
            raise ConfigError("stream_bits and slice_bits must be >= 1")
        if self.adc_headroom <= 0:
            raise ConfigError("adc_headroom must be positive")
        if self.adc_noise_lsb < 0:
            raise ConfigError("adc_noise_lsb must be >= 0")
        # Construction of the formats validates the width/frac combinations.
        self.weight_format
        self.activation_format
        self.accumulator_format

    @property
    def weight_format(self) -> FixedPointFormat:
        return FixedPointFormat(self.weight_bits, self.weight_frac_bits)

    @property
    def activation_format(self) -> FixedPointFormat:
        return FixedPointFormat(self.activation_bits,
                                self.activation_frac_bits)

    @property
    def accumulator_format(self) -> FixedPointFormat:
        return FixedPointFormat(self.accumulator_bits,
                                self.accumulator_frac_bits)

    @property
    def n_streams(self) -> int:
        """DAC steps per activation magnitude."""
        return n_units(self.activation_format.magnitude_bits,
                       self.stream_bits)

    @property
    def n_slices(self) -> int:
        """Conductance slices per weight magnitude."""
        return n_units(self.weight_format.magnitude_bits, self.slice_bits)

    def replace(self, **changes) -> "FuncSimConfig":
        return replace(self, **changes)

    def with_precision(self, bits: int) -> "FuncSimConfig":
        """Scale weight/activation width, keeping 3 integer bits.

        Matches the paper's Fig. 8 sweep convention: a ``bits``-bit network
        uses ``bits - 3`` fractional bits (16 -> 13, 8 -> 5, 4 -> 1).
        """
        if bits < 4:
            raise ConfigError(f"precision sweep expects bits >= 4, got {bits}")
        return self.replace(weight_bits=bits, weight_frac_bits=bits - 3,
                            activation_bits=bits,
                            activation_frac_bits=bits - 3)
