"""Bit-slicing and bit-streaming of integer operands.

Crossbars compute with unsigned physical quantities (voltages, conductances),
so signed integers are first split into non-negative positive/negative parts
(``q = pos - neg``), then each part is decomposed little-endian into units of
``unit_bits``:

    q = sum_k unit_k * 2**(k * unit_bits),   0 <= unit_k < 2**unit_bits

Weight units are the paper's *slices* (programmed as conductance levels) and
activation units are its *streams* (applied as DAC voltages over successive
steps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def n_units(total_bits: int, unit_bits: int) -> int:
    """Number of slices/streams needed for a ``total_bits`` magnitude."""
    if total_bits < 1 or unit_bits < 1:
        raise ConfigError("bit counts must be >= 1")
    return -(-total_bits // unit_bits)


def sign_split(q) -> tuple:
    """Split signed integers into non-negative (positive, negative) parts."""
    q = np.asarray(q)
    return np.maximum(q, 0), np.maximum(-q, 0)


def split_unsigned(q, total_bits: int, unit_bits: int) -> np.ndarray:
    """Decompose non-negative integers into little-endian units.

    Returns an array of shape ``(n_units, *q.shape)`` with unit values in
    ``[0, 2**unit_bits - 1]``.
    """
    q = np.asarray(q, dtype=np.int64)
    if np.any(q < 0):
        raise ConfigError("split_unsigned requires non-negative integers")
    if np.any(q >= 2 ** total_bits):
        raise ConfigError(
            f"values exceed {total_bits} bits: max {int(q.max())}")
    count = n_units(total_bits, unit_bits)
    units = np.empty((count,) + q.shape, dtype=np.int64)
    mask = (1 << unit_bits) - 1
    work = q.copy()
    for k in range(count):
        units[k] = work & mask
        work >>= unit_bits
    return units


def merge_unsigned(units: np.ndarray, unit_bits: int) -> np.ndarray:
    """Inverse of :func:`split_unsigned`."""
    units = np.asarray(units, dtype=np.int64)
    out = np.zeros(units.shape[1:], dtype=np.int64)
    for k in range(units.shape[0] - 1, -1, -1):
        out <<= unit_bits
        out += units[k]
    return out


def unit_weight(index: int, unit_bits: int) -> float:
    """Shift-and-add scale factor ``2**(index * unit_bits)``."""
    return float(2 ** (index * unit_bits))
