"""Process backend: shards run in worker processes over shared memory.

The network program is pickled into every worker exactly once (at pool
initialisation), so the per-matmul traffic is only the quantised
activation array — written into a ``multiprocessing.shared_memory``
segment the workers map read-only — plus a few shard descriptors. Workers
write their decoded ``(chunk, t_c * cols)`` slabs straight into a shared
output segment at disjoint offsets, and return nothing but their event
counters; the parent then merges tile-rows digitally in fixed order.

Per-worker tile-result caches are process-local (spawned from the program's
``tile_cache_size``), so cache hits never require cross-process
coordination; the hit counters are merged with the rest of the statistics.

Re-registering a layer program invalidates the pool: the next matmul
restarts it with the updated program set. Compile the whole network first
(``convert_to_mvm(..., executor=...)`` does) to pay initialisation once.
"""

from __future__ import annotations

import atexit
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from time import perf_counter

import numpy as np

from repro.errors import ConfigError
from repro.funcsim.runtime.base import ExecutorBase
from repro.funcsim.runtime.kernel import (
    DEFAULT_SHARD_ROWS,
    new_stat_counts,
    run_tile_row,
    shard_adc,
)
from repro.obs import SpanTimings

# ----------------------------------------------------------------------
# Worker-process state and entry points
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _worker_init(payload: bytes) -> None:
    """Pool initialiser: unpickle the program set once per worker."""
    _WORKER["programs"] = pickle.loads(payload)
    _WORKER["caches"] = {}


def _worker_cache(layer_id):
    from repro.funcsim.engine import TileResultCache

    program = _WORKER["programs"][layer_id]
    if not program.cacheable:
        return None
    cache = _WORKER["caches"].get(layer_id)
    if cache is None:
        cache = _WORKER["caches"][layer_id] = TileResultCache(
            program.tile_cache_size)
    return cache


def _worker_run(layer_id: str, in_name: str, in_shape: tuple,
                out_name: str, out_shape: tuple, seq: int,
                signs: list, tasks: list) -> tuple:
    """Execute a group of (chunk_idx, start, stop, tr) shards.

    Activations are read from — and decoded counts written to — the named
    shared-memory segments; only the event counters and the worker-local
    span-timing snapshot travel back by pickle, as ``(stats, timings)``.
    """
    program = _WORKER["programs"][layer_id]
    cache = _worker_cache(layer_id)
    plan = program.plan
    shm_in = shared_memory.SharedMemory(name=in_name)
    shm_out = shared_memory.SharedMemory(name=out_name)
    stats = new_stat_counts()
    timings = SpanTimings()
    try:
        qx = np.ndarray(in_shape, dtype=np.int64, buffer=shm_in.buf)
        counts = np.ndarray(out_shape, dtype=np.float64, buffer=shm_out.buf)
        for chunk_idx, start, stop, tr in tasks:
            adc = shard_adc(plan, seq, tr, chunk_idx)
            t0 = perf_counter()
            counts[tr, start:stop] = run_tile_row(
                program, qx[start:stop], signs[chunk_idx], tr, adc,
                cache=cache, stats=stats)
            timings.add("shard", perf_counter() - t0)
    finally:
        shm_in.close()
        shm_out.close()
    return stats, timings.snapshot()


class ProcessExecutor(ExecutorBase):
    """Shard execution across a ``ProcessPoolExecutor`` with shared memory."""

    name = "process"

    #: Worker dispatch pays shared-memory segment setup plus pickle IPC
    #: per call, so a shard must carry far more compute than in the
    #: thread backend before the pool wins.
    MIN_SHARD_COST = 1 << 17

    def __init__(self, workers: int = 2,
                 shard_rows: int = DEFAULT_SHARD_ROWS):
        super().__init__(workers=workers, shard_rows=shard_rows)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _on_program_change(self) -> None:
        """A new/changed layer invalidates the workers' program copies."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        with self._pool_lock:
            # close() sets _closed before taking this lock, so a matmul
            # racing a close can never resurrect a pool nothing will join.
            if self._closed:
                return None
            if self._pool is None:
                with self._lock:
                    programs = dict(self._programs)
                try:
                    payload = pickle.dumps(programs,
                                           protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as exc:
                    raise ConfigError(
                        f"layer programs are not picklable for the process "
                        f"backend ({exc}); tile models must not hold "
                        f"process-local state — use the threads backend "
                        f"for such factories") from exc
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init, initargs=(payload,))
            return self._pool

    # ------------------------------------------------------------------
    def _run_shards(self, layer_id, program, qx, chunks, signs, seq, counts,
                    call_stats, call_timings) -> None:
        plan = program.plan
        if self._should_inline(plan, qx):
            # Shared-memory setup and submit IPC would dwarf the compute;
            # same shards, same noise keying, identical results.
            self._run_shards_inline(layer_id, program, qx, chunks, signs,
                                    seq, counts, call_stats, call_timings)
            return
        pool = self._ensure_pool()
        if pool is None:  # closed concurrently: degrade to inline
            self._run_shards_inline(layer_id, program, qx, chunks, signs,
                                    seq, counts, call_stats, call_timings)
            return
        tasks = [(chunk_idx, start, stop, tr)
                 for chunk_idx, (start, stop) in enumerate(chunks)
                 for tr in range(plan.t_r)]
        # Group shards to amortise per-future IPC without skewing the
        # deterministic shard decomposition (grouping only affects *where*
        # shards run, never what they compute).
        n_groups = min(len(tasks), self.workers * 4)
        groups = [tasks[i::n_groups] for i in range(n_groups)]

        qx = np.ascontiguousarray(qx, dtype=np.int64)
        shm_in = shared_memory.SharedMemory(create=True, size=qx.nbytes)
        shm_out = shared_memory.SharedMemory(create=True,
                                             size=max(counts.nbytes, 1))
        try:
            np.ndarray(qx.shape, dtype=np.int64,
                       buffer=shm_in.buf)[...] = qx
            shared_counts = np.ndarray(counts.shape, dtype=np.float64,
                                       buffer=shm_out.buf)
            futures = [pool.submit(_worker_run, layer_id, shm_in.name,
                                   qx.shape, shm_out.name, counts.shape,
                                   seq, signs, group)
                       for group in groups]
            for future in futures:
                worker_stats, worker_timings = future.result()
                for key, value in worker_stats.items():
                    call_stats[key] += value
                call_timings.merge(worker_timings)
            counts[...] = shared_counts
        finally:
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()

    def close(self, wait: bool = True) -> None:
        self._closed = True  # before taking the lock; see _ensure_pool
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None
        # Drop the interpreter-exit safety net so closed executors (and
        # the programs they hold) become garbage-collectable.
        atexit.unregister(self.close)
        super().close(wait=wait)
