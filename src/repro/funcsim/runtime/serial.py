"""Serial backend: shards run in order on the calling thread.

Functionally today's single-core engine behaviour, expressed through the
shard kernel so it shares the exact decomposition (and therefore the exact
results) of the parallel backends. Useful as the baseline of equivalence
tests and as the zero-overhead default when ``workers == 1``.
"""

from __future__ import annotations

from repro.funcsim.runtime.base import ExecutorBase
from repro.funcsim.runtime.kernel import DEFAULT_SHARD_ROWS


class SerialExecutor(ExecutorBase):
    """In-order, in-process shard execution (single core)."""

    name = "serial"

    def __init__(self, shard_rows: int = DEFAULT_SHARD_ROWS):
        super().__init__(workers=1, shard_rows=shard_rows)

    _run_shards = ExecutorBase._run_shards_inline
