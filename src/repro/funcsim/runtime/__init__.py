"""Sharded execution runtime for the functional simulator.

The planner (:mod:`repro.funcsim.planner`) compiles prepared layers into
static, picklable tile programs; this package executes them. Work is
decomposed into (tile-row, batch-chunk) shards evaluated by a shared
kernel, scheduled by one of three interchangeable backends:

========= ==================================================================
backend   when to use it
========= ==================================================================
serial    single core, zero overhead — the default and the reference
threads   multi-core hosts; tile math is BLAS-dominated (releases the GIL)
          and the tile-result cache is shared between workers
process   multi-core hosts where Python-side decode dominates, or when GIL
          contention caps thread scaling; programs ship to workers once,
          activations/outputs travel through shared memory
========= ==================================================================

Determinism: the shard decomposition depends only on the workload and
``shard_rows`` — never on the worker count — so in batch-invariant mode
every backend returns bit-identical outputs, and with ADC noise the
coordinate-keyed noise streams make results reproducible at any worker
count (see :mod:`repro.funcsim.runtime.kernel`).

Each shard runs through :func:`~repro.funcsim.runtime.kernel.run_tile_row`,
which dispatches to the compiled fused kernel when the program carries one
(see :mod:`repro.funcsim.compiler`) and to the interpreted reference kernel
otherwise — bit-identically either way. The fused kernel's array ops come
from the pluggable :mod:`~repro.funcsim.runtime.backends` registry.
"""

from repro.funcsim.runtime.backends import (
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.funcsim.runtime.base import ExecutorBase, make_executor
from repro.funcsim.runtime.kernel import (
    DEFAULT_SHARD_ROWS,
    chunk_ranges,
    execute_tile_row,
    merge_tile_rows,
    quantize_input,
    run_tile_row,
    shard_adc,
)
from repro.funcsim.runtime.process import ProcessExecutor
from repro.funcsim.runtime.serial import SerialExecutor
from repro.funcsim.runtime.threads import ThreadExecutor

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "get_backend",
    "make_executor",
    "resolve_backend",
    "chunk_ranges",
    "execute_tile_row",
    "merge_tile_rows",
    "quantize_input",
    "run_tile_row",
    "shard_adc",
]
