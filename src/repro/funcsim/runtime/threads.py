"""Thread backend: shards fan out over a shared thread pool.

The tile models spend most of their time inside BLAS gemm calls (GENIEx
hidden-layer matmuls, analytical transfer-matrix products), which release
the GIL — so threads scale on multi-core hosts without any serialisation
cost, and the tile-result cache can be *shared* across workers (it is
lock-protected), letting one thread's read-outs serve another's hits.

Each shard accumulates its event counters into a shard-local dict that is
merged into the call's counters under a lock, so statistics stay coherent
at any concurrency.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.funcsim.runtime.base import ExecutorBase
from repro.funcsim.runtime.kernel import (
    DEFAULT_SHARD_ROWS,
    new_stat_counts,
    run_tile_row,
    shard_adc,
)


class ThreadExecutor(ExecutorBase):
    """Shard execution across a ``ThreadPoolExecutor``."""

    name = "threads"

    #: Thread dispatch is cheap (no IPC), but a shard still has to out-run
    #: futures bookkeeping and result handling to be worth queuing.
    MIN_SHARD_COST = 1 << 14

    def __init__(self, workers: int = 2,
                 shard_rows: int = DEFAULT_SHARD_ROWS):
        super().__init__(workers=workers, shard_rows=shard_rows)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor | None:
        with self._pool_lock:
            # close() sets _closed before taking this lock, so a matmul
            # racing a close can never resurrect a pool nothing will join.
            if self._closed:
                return None
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="funcsim-shard")
            return self._pool

    def _run_shards(self, layer_id, program, qx, chunks, signs, seq, counts,
                    call_stats, call_timings) -> None:
        plan = program.plan
        if self._should_inline(plan, qx):
            # Pool dispatch would cost more than the compute; same shards,
            # same noise keying, identical results.
            self._run_shards_inline(layer_id, program, qx, chunks, signs,
                                    seq, counts, call_stats, call_timings)
            return
        cache = self._cache_for(layer_id, program)
        merge_lock = threading.Lock()

        def run(task) -> None:
            chunk_idx, start, stop, tr = task
            local = new_stat_counts()
            adc = shard_adc(plan, seq, tr, chunk_idx)
            t0 = perf_counter()
            # Disjoint (tr, chunk) slab: safe to write without a lock.
            counts[tr, start:stop] = run_tile_row(
                program, qx[start:stop], signs[chunk_idx], tr, adc,
                cache=cache, stats=local)
            # SpanTimings.add is internally locked, so worker threads
            # record straight into the shared per-call accumulator.
            call_timings.add("shard", perf_counter() - t0)
            with merge_lock:
                for key, value in local.items():
                    call_stats[key] += value

        tasks = [(chunk_idx, start, stop, tr)
                 for chunk_idx, (start, stop) in enumerate(chunks)
                 for tr in range(plan.t_r)]
        pool = self._ensure_pool()
        if pool is None:  # closed concurrently: degrade to inline
            self._run_shards_inline(layer_id, program, qx, chunks, signs,
                                    seq, counts, call_stats, call_timings)
            return
        # list() propagates the first worker exception to the caller.
        list(pool.map(run, tasks))

    def close(self, wait: bool = True) -> None:
        self._closed = True  # before taking the lock; see _ensure_pool
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait)
                self._pool = None
        super().close(wait=wait)
