"""Torch backend: decode stage on torch CPU tensors.

Torch's CPU element-wise float64 adds are exact IEEE-754 operations, so
running the ordered decode accumulation on zero-copy tensor views of the
numpy buffers is bitwise interchangeable with the numpy loop. As with the
numba backend, the tile read-out matmuls stay on numpy's BLAS — torch's
own BLAS build is not guaranteed to match numpy's bit-for-bit, and the
compiled path must remain bit-identical to the interpreted reference.

Importing this module is safe without torch installed; availability is
reported through :meth:`TorchBackend.is_available` and the registry falls
back to numpy with a one-time warning.
"""

from __future__ import annotations

import numpy as np

from repro.funcsim.runtime.backends.numpy_backend import NumpyBackend


class TorchBackend(NumpyBackend):
    """Numpy ops with the decode accumulation on torch CPU tensors."""

    name = "torch"

    @staticmethod
    def is_available() -> bool:
        try:
            import torch  # noqa: F401
        except Exception:
            return False
        return True

    @staticmethod
    def unavailable_reason() -> str:
        return "the torch package is not installed"

    def decode_accumulate(self, terms: np.ndarray,
                          out: np.ndarray) -> np.ndarray:
        import torch

        terms_t = torch.from_numpy(np.ascontiguousarray(terms))
        out_t = torch.from_numpy(out)  # shares memory: updates land in out
        for j in range(terms_t.shape[0]):
            out_t += terms_t[j].permute(1, 0, 2)
        return out

    def decode_contract(self, counts: np.ndarray,
                        prefac: np.ndarray) -> np.ndarray:
        import torch

        # torch.einsum's reduction order is not specified, so the fused
        # contraction stays an explicit ascending-(s, w, k) loop of exact
        # power-of-two scaled adds on zero-copy tensor views.
        counts_t = torch.from_numpy(np.ascontiguousarray(counts))
        s_n, batch, w_n, k_n, t_n, c_n = counts_t.shape
        out = np.zeros((batch, t_n, c_n))
        out_t = torch.from_numpy(out)
        for s in range(s_n):
            for w in range(w_n):
                for k in range(k_n):
                    out_t += counts_t[s, :, w, k] * float(prefac[s, w, k])
        return out
