"""Numba backend: JIT-compiled ordered decode accumulation.

The decode collapse is a strictly ordered float64 accumulation (see
:meth:`~repro.funcsim.runtime.backends.numpy_backend.NumpyBackend.
decode_accumulate`); the JIT kernel performs the same scalar adds in the
same order, so it is bitwise interchangeable with the numpy loop while
avoiding one temporary traversal per ``j`` step. The tile read-out
matmuls stay on numpy's BLAS (numba would not beat it there, and keeping
the physics on one BLAS build preserves the interpreter-fallback
bit-identity guarantee).

Importing this module is safe without numba installed; availability is
reported through :meth:`NumbaBackend.is_available` and the registry falls
back to numpy with a one-time warning.
"""

from __future__ import annotations

import numpy as np

from repro.funcsim.runtime.backends.numpy_backend import NumpyBackend


class NumbaBackend(NumpyBackend):
    """Numpy ops with a numba-JIT decode accumulation."""

    name = "numba"
    _kernel = None
    _contract_kernel = None

    @staticmethod
    def is_available() -> bool:
        try:
            import numba  # noqa: F401
        except Exception:
            return False
        return True

    @staticmethod
    def unavailable_reason() -> str:
        return "the numba package is not installed"

    def decode_accumulate(self, terms: np.ndarray,
                          out: np.ndarray) -> np.ndarray:
        if NumbaBackend._kernel is None:
            import numba

            @numba.njit(cache=False)
            def _accumulate(terms, out):
                n_terms, t_c, batch, cols = terms.shape
                for j in range(n_terms):
                    for t in range(t_c):
                        for b in range(batch):
                            for c in range(cols):
                                out[b, t, c] += terms[j, t, b, c]

            NumbaBackend._kernel = _accumulate
        NumbaBackend._kernel(np.ascontiguousarray(terms), out)
        return out

    def decode_contract(self, counts: np.ndarray,
                        prefac: np.ndarray) -> np.ndarray:
        if NumbaBackend._contract_kernel is None:
            import numba

            @numba.njit(cache=False)
            def _contract(counts, prefac, out):
                s_n, batch, w_n, k_n, t_n, c_n = counts.shape
                # Ascending (s, w, k) accumulation per output element —
                # the interpreted kernel's addition order.
                for s in range(s_n):
                    for b in range(batch):
                        for w in range(w_n):
                            for k in range(k_n):
                                f = prefac[s, w, k]
                                for t in range(t_n):
                                    for c in range(c_n):
                                        out[b, t, c] += \
                                            counts[s, b, w, k, t, c] * f

            NumbaBackend._contract_kernel = _contract
        out = np.zeros(counts.shape[1:2] + counts.shape[4:])
        NumbaBackend._contract_kernel(np.ascontiguousarray(counts),
                                      np.ascontiguousarray(prefac), out)
        return out
