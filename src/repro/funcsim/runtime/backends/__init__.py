"""Pluggable array backends for the compiled fused kernel.

The compiler (:mod:`repro.funcsim.compiler`) lowers a layer program into
stacked dense tensors and expresses its execution through a tiny op set —
the :class:`ArrayBackend` protocol — so the fused kernels are written once
and run on interchangeable array runtimes:

========= ==================================================================
backend   what it is
========= ==================================================================
numpy     the reference implementation; always available, always the
          fallback, and the baseline every other backend must match
          bit-for-bit
numba     JIT-compiles the ordered decode accumulation; auto-detected,
          falls back to numpy (with a one-time warning) when the package
          is absent
torch     runs the decode stage on torch CPU tensors (exact IEEE-754
          float64 ops, so bitwise interchangeable); auto-detected with
          the same numpy fallback
========= ==================================================================

Bitwise contract: a backend may override any op, but every op is specified
down to the floating-point operation order (see
:class:`~repro.funcsim.runtime.backends.numpy_backend.NumpyBackend`), so
all backends produce bit-identical results — and the compiled path stays
bit-identical to the interpreted reference kernel no matter which backend
executes it. The stacked tile read-outs themselves always run on numpy's
BLAS: they are the physics model, and keeping them on one BLAS build is
what makes the interpreter fallback invisible.

Selection precedence: an explicit spec/engine value beats the
``REPRO_BACKEND`` environment variable, which beats the default
(``numpy``). The value ``"interp"`` (alias ``"interpreted"``/``"off"``)
disables compilation entirely and forces the interpreted kernel.
"""

from __future__ import annotations

import os
import warnings

from repro.errors import ConfigError
from repro.funcsim.runtime.backends.numpy_backend import NumpyBackend

#: Array backends :func:`resolve_backend` accepts, in documentation order.
BACKEND_KINDS = ("numpy", "numba", "torch")

#: Selector values that disable compilation (interpreted kernel only).
INTERPRETER_KINDS = ("interp", "interpreted", "off")

_instances: dict = {}
_warned: set = set()


def _backend_class(kind: str):
    if kind == "numpy":
        return NumpyBackend
    if kind == "numba":
        from repro.funcsim.runtime.backends.numba_backend import NumbaBackend
        return NumbaBackend
    if kind == "torch":
        from repro.funcsim.runtime.backends.torch_backend import TorchBackend
        return TorchBackend
    raise KeyError(kind)


def available_backends() -> tuple:
    """Backends usable on this host, in :data:`BACKEND_KINDS` order."""
    return tuple(kind for kind in BACKEND_KINDS
                 if _backend_class(kind).is_available())


def get_backend(kind: str):
    """Backend instance by exact name (no env/None resolution).

    An unavailable optional backend (numba/torch without the package)
    degrades to numpy and warns once per process — a missing accelerator
    must never turn a working setup into an import error.
    """
    cls = _backend_class(kind)
    if not cls.is_available():
        if kind not in _warned:
            _warned.add(kind)
            warnings.warn(
                f"array backend {kind!r} is unavailable "
                f"({cls.unavailable_reason()}); falling back to numpy",
                RuntimeWarning, stacklevel=3)
        kind, cls = "numpy", NumpyBackend
    instance = _instances.get(kind)
    if instance is None:
        instance = _instances[kind] = cls()
    return instance


def resolve_backend(name: str | None = None, path: str = "runtime.backend"):
    """Resolve a backend selector to an instance (``None`` = interpreter).

    ``name=None`` consults ``$REPRO_BACKEND`` and finally defaults to
    ``"numpy"`` — compiled execution is on unless explicitly disabled
    with an interpreter selector (:data:`INTERPRETER_KINDS`). Unknown
    names raise :class:`~repro.errors.ConfigError` citing ``path`` (or
    the environment variable when the value came from there).
    """
    if name is None:
        env = os.environ.get("REPRO_BACKEND")
        if env:
            name, path = env, "$REPRO_BACKEND"
        else:
            name = "numpy"
    kind = str(name).lower()
    if kind in INTERPRETER_KINDS:
        return None
    if kind not in BACKEND_KINDS:
        raise ConfigError(
            f"unknown array backend {name!r} at {path}; expected one of "
            f"{BACKEND_KINDS + INTERPRETER_KINDS}")
    return get_backend(kind)


__all__ = [
    "BACKEND_KINDS",
    "INTERPRETER_KINDS",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
]
