"""Reference numpy backend: the op set every backend must match bitwise.

Each op is specified down to the floating-point operation *order*, because
the compiled kernel's acceptance bar is bit-identity with the interpreted
reference kernel — not approximate agreement. Alternative backends inherit
from :class:`NumpyBackend` and override only the ops they accelerate.
"""

from __future__ import annotations

import numpy as np

from repro.utils.numerics import batch_invariant_matmul


class NumpyBackend:
    """Always-available reference implementation of the fused-kernel ops."""

    name = "numpy"

    @staticmethod
    def is_available() -> bool:
        return True

    @staticmethod
    def unavailable_reason() -> str:
        return ""

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        """BLAS 2-D product (exactly ``a @ b``).

        The compiler concatenates a tile-row's model operands along
        columns, so one call covers every model; BLAS computes each
        output column from a single operand column, which keeps the
        concatenated product bitwise equal to the per-model products.
        ``out`` (optional) receives the product — same values, no
        result allocation.
        """
        return np.matmul(a, b, out=out)

    @staticmethod
    def invariant_matmul(a: np.ndarray, b: np.ndarray,
                         out=None) -> np.ndarray:
        """Batch-invariant 2-D product (einsum; row/column independent)."""
        return batch_invariant_matmul(a, b, out)

    @staticmethod
    def decode_accumulate(terms: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Ordered decode collapse: ``out[b,t,c] += sum_j terms[j,t,b,c]``.

        ``j`` enumerates the (stream, weight-sign, slice) combinations in
        exactly the interpreted kernel's nested loop order. The sum stays
        an explicit ascending-``j`` loop of vectorized adds: ``np.sum``
        reduces pairwise, which regroups the additions and drifts in the
        last ulp, breaking bit-identity with the reference kernel. ``j``
        is small (streams x signs x slices), so the loop costs nothing
        next to the element-wise adds it issues.
        """
        for j in range(terms.shape[0]):
            out += terms[j].transpose(1, 0, 2)
        return out

    @staticmethod
    def decode_contract(counts: np.ndarray,
                        prefac: np.ndarray) -> np.ndarray:
        """Fused decode collapse over the natural measurement layout.

        ``counts`` is the bias-corrected count tensor in the stacked
        read-out's native ``(stream, batch, sign, slice, t_c, cols)``
        memory order; ``prefac`` the ``(stream, sign, slice)`` signed
        power-of-two shift-and-add factors. Returns ``(batch, t_c,
        cols)``. ``np.einsum`` (``optimize=False``) accumulates the
        contracted ``(s, w, k)`` axes in ascending index order for every
        output element — the interpreted kernel's exact addition order —
        and each ``counts * prefac`` product is an exact power-of-two
        scaling, so the single fused contraction is bitwise equal to the
        reference chain of per-term multiply-accumulate passes.
        """
        return np.einsum("sbwktc,swk->btc", counts, prefac)
