"""Shard execution kernel shared by every runtime backend.

A *shard* is one (tile-row, batch-chunk) unit of an MVM: the kernel streams
the chunk's activation bits through every (weight-sign, slice, tile-column)
model of the tile-row, digitises the analog read-outs and decodes them into
the tile-row's contribution ``tr_counts`` of shape ``(chunk, t_c * cols)``.
Shards are independent, so backends may run them in any order on any
worker; :func:`merge_tile_rows` then accumulates the per-tile-row
contributions *in tile-row order* through the fixed-point accumulator,
exactly as the hardware's peripheral digital logic would.

Determinism contract:

* The shard decomposition is a pure function of the batch size and the
  executor's ``shard_rows`` — never of the worker count — so the set of
  shards (and therefore every zero-stream skipping decision) is identical
  no matter how execution is scheduled.
* With a deterministic ADC the kernel is pure, so any schedule produces
  bit-identical results; in batch-invariant mode results are additionally
  identical across backends *and* chunk sizes.
* With ADC noise, :func:`shard_adc` derives each shard's noise stream from
  ``(adc_seed, layer uid, matmul sequence, tile-row, chunk)`` — tile
  coordinates, not shard assignment — so noisy runs reproduce bit-exactly
  at any worker count.

The kernel is also the engine's serial execution path: a legacy
``CrossbarMvmEngine.matmul`` call is one full-batch chunk per tile-row
with the engine's own sequential ADC passed in, which keeps the refactor
bit-identical to the historical monolithic implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.funcsim.adc import AdcModel
from repro.funcsim.planner import LayerPlan, LayerProgram
from repro.funcsim.slicing import sign_split, split_unsigned
from repro.funcsim.tiles import pad_axis

#: Default batch rows per shard. Fixed (worker-count independent) so the
#: shard set — and with it zero-skip decisions and noise keying — depends
#: only on the workload, never on the execution schedule. Sized so the
#: Python-side decode loop stays negligible against the batched tile math
#: while conv-sized im2col batches still split into several chunks per
#: tile-row for the parallel backends.
DEFAULT_SHARD_ROWS = 1024


def quantize_input(plan: LayerPlan, x: np.ndarray) -> np.ndarray:
    """Validate, quantise and pad a ``(B, n_in)`` activation batch."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if x.shape[1] != plan.n_in:
        raise ShapeError(
            f"input features {x.shape[1]} != weight rows {plan.n_in}")
    qx = plan.sim_config.activation_format.quantize_to_int(x)
    return pad_axis(qx, 1, plan.rows)


def active_signs(qx: np.ndarray) -> list:
    """Activation signs present in a quantised (chunk) batch.

    Computed over the full input width of the chunk — not per tile-row —
    mirroring the historical engine loop so the per-block zero-stream
    skip statistics stay comparable.
    """
    parts = sign_split(qx)
    signs = [k for k, part in enumerate(parts) if np.any(part)]
    return signs or [0]


def chunk_ranges(batch: int, shard_rows: int) -> list:
    """Fixed decomposition of ``batch`` rows into ``(start, stop)`` chunks."""
    shard_rows = max(1, int(shard_rows))
    return [(start, min(start + shard_rows, batch))
            for start in range(0, batch, shard_rows)]


def shard_adc(plan: LayerPlan, seq: int, tr: int, chunk: int) -> AdcModel:
    """ADC instance for one shard, with a coordinate-keyed noise stream."""
    if plan.adc_noise_rms_a == 0.0:
        seed = 0  # deterministic transfer function; seed is irrelevant
    else:
        seed = plan.noise_seed(seq, tr, chunk)
    return AdcModel(plan.adc_bits, plan.adc_lsb_a,
                    offset_a=plan.adc_offset_a,
                    noise_rms_a=plan.adc_noise_rms_a, seed=seed)


def _measure_tile_row(program: LayerProgram, tr: int, stream_levels: list,
                      batch: int, adc: AdcModel, cache, stats) -> dict:
    """One batched analog + ADC pass over every model of a tile-row.

    All ``S`` active stream blocks are stacked into a single
    ``(S * batch, rows)`` voltage batch; each tile model then runs one
    batched call (minus any read-outs served by the tile-result cache)
    and the measured currents come back as per-stream ``(batch, cols)``
    slices. Returns ``{(sign, slice, tc): [S slices]}``.
    """
    plan = program.plan
    cfg = plan.sim_config
    cols = plan.cols
    s_count = len(stream_levels)
    # Serialise each stream block once; the key bytes are shared by
    # every (sign, slice, tile-column) lookup below.
    level_bytes = [levels.tobytes() for levels in stream_levels] \
        if cache is not None else None
    # The stacked voltages and the factory's shared term are only
    # needed on a cache miss; fully-cached tile-rows skip both.
    voltages = None
    shared = None
    # Miss patterns repeat across the (sign, slice, tile-column) models,
    # so the stacked-row selection index is memoised per pattern instead
    # of being rebuilt from per-stream aranges for every model.
    base_rows = None
    sel_by_pattern: dict = {}

    measured = {}
    for sw in plan.sign_present:
        for k in range(cfg.n_slices):
            for tc in range(plan.t_c):
                model = program.models[(sw, k, tr, tc)]
                stats["readouts"] += s_count
                stats["adc_conversions"] += s_count * batch * cols
                result = [None] * s_count
                keys = [None] * s_count
                missing = []
                if cache is not None:
                    for s in range(s_count):
                        keys[s] = (plan.uid, sw, k, tr, tc, batch,
                                   level_bytes[s])
                        hit = cache.get(keys[s])
                        if hit is None:
                            missing.append(s)
                        else:
                            result[s] = hit
                            stats["cache_hits"] += 1
                else:
                    missing = list(range(s_count))
                if missing:
                    if voltages is None:
                        voltages = np.concatenate(
                            stream_levels, axis=0) * plan.v_lsb
                        shared = program.tile_factory.prepare_voltages(
                            voltages)
                    if len(missing) == s_count:
                        v_sub, c_sub = voltages, shared
                    else:
                        pattern = tuple(missing)
                        sel = sel_by_pattern.get(pattern)
                        if sel is None:
                            if base_rows is None:
                                base_rows = np.arange(batch)
                            sel = sel_by_pattern[pattern] = (
                                np.asarray(missing)[:, None] * batch
                                + base_rows).ravel()
                        v_sub = voltages[sel]
                        c_sub = shared[sel] \
                            if isinstance(shared, np.ndarray) else shared
                    i_meas = adc.measure(
                        model.currents(v_sub, c_sub)
                    ).reshape(len(missing), batch, cols)
                    for j, s in enumerate(missing):
                        result[s] = i_meas[j]
                        if cache is not None:
                            # Copy out of the stacked measurement so a
                            # cache entry never pins the whole block.
                            cache.put(keys[s], i_meas[j].copy())
                measured[(sw, k, tc)] = result
    return measured


def gather_streams(plan: LayerPlan, qx: np.ndarray, x_signs: list,
                   tr: int, stats: dict) -> tuple:
    """Non-zero (sign, stream) level blocks of tile-row ``tr``.

    Returns ``(stream_levels, stream_info)`` in the fixed (activation
    sign, stream) order the decode stage consumes them — the interpreted
    and compiled kernels share this gather, so their zero-stream skip
    decisions (and the ``skipped_zero_streams`` statistics) are
    identical by construction.
    """
    cfg = plan.sim_config
    block = qx[:, tr * plan.rows:(tr + 1) * plan.rows]
    parts = sign_split(block)
    per_stream_models = len(plan.sign_present) * cfg.n_slices * plan.t_c
    mag_bits = cfg.activation_format.magnitude_bits
    stream_levels = []
    stream_info = []
    for sx in x_signs:
        units = split_unsigned(parts[sx], mag_bits, cfg.stream_bits)
        for m in range(cfg.n_streams):
            levels = units[m]
            if not levels.any():
                # Zero drive => exactly zero currents.
                stats["skipped_zero_streams"] += per_stream_models
                continue
            stream_levels.append(levels)
            stream_info.append((sx, m))
    return stream_levels, stream_info


def execute_tile_row(program: LayerProgram, qx: np.ndarray, x_signs: list,
                     tr: int, adc: AdcModel, cache=None,
                     stats=None) -> np.ndarray:
    """Decoded contribution of tile-row ``tr`` for one quantised chunk.

    ``qx`` is the full-width padded integer activation chunk; ``x_signs``
    the activation signs present in it (see :func:`active_signs`).
    Returns ``(chunk, t_c * cols)`` float counts, already scaled by the
    shift-and-add and sign factors but *not* by ``value_lsb`` — the merge
    step applies that together with the accumulator format.

    This is the interpreted *reference* kernel; :func:`run_tile_row`
    dispatches to the compiled fused kernel when the program carries one
    and falls back here (bit-identically) when it does not.
    """
    plan = program.plan
    cfg = plan.sim_config
    cols = plan.cols
    if stats is None:
        stats = new_stat_counts()
    batch = qx.shape[0]
    stream_levels, stream_info = gather_streams(plan, qx, x_signs, tr, stats)

    tr_counts = np.zeros((batch, plan.out_width))
    if not stream_levels:
        return tr_counts
    measured = _measure_tile_row(program, tr, stream_levels, batch, adc,
                                 cache, stats)
    for s, (sx, m) in enumerate(stream_info):
        sx_factor = 1.0 if sx == 0 else -1.0
        stream_sum = stream_levels[s].sum(axis=1)[:, None]
        stream_scale = float(2 ** (m * cfg.stream_bits))
        for sw in plan.sign_present:
            sw_factor = 1.0 if sw == 0 else -1.0
            for k in range(cfg.n_slices):
                slice_scale = float(2 ** (k * cfg.slice_bits))
                for tc in range(plan.t_c):
                    i_meas = measured[(sw, k, tc)][s]
                    counts = i_meas * plan.decode \
                        - plan.bias_factor * stream_sum
                    tr_counts[:, tc * cols:(tc + 1) * cols] += (
                        sx_factor * sw_factor * stream_scale
                        * slice_scale * counts)
    return tr_counts


def run_tile_row(program: LayerProgram, qx: np.ndarray, x_signs: list,
                 tr: int, adc: AdcModel, cache=None,
                 stats=None) -> np.ndarray:
    """Execute one (tile-row, chunk) shard: compiled when possible.

    Programs lowered by :func:`repro.funcsim.compiler.compile_program`
    run through the fused kernel (counted as ``fused_calls``); programs
    without a compiled form — compilation disabled, an unfusible tile
    kind, or the fused kernel declining a shard (memory guard) — run
    through the interpreted reference kernel, counted as
    ``fallback_calls`` when compilation had been requested. Both paths
    are bit-identical, so the dispatch is purely a performance decision.
    """
    if stats is None:
        stats = new_stat_counts()
    compiled = getattr(program, "compiled", None)
    if compiled is not None:
        from repro.funcsim.compiler import execute_tile_row_fused

        out = execute_tile_row_fused(program, qx, x_signs, tr, adc,
                                     cache=cache, stats=stats)
        if out is not None:
            stats["fused_calls"] += 1
            return out
    if getattr(program, "compile_requested", False):
        stats["fallback_calls"] += 1
    return execute_tile_row(program, qx, x_signs, tr, adc, cache=cache,
                            stats=stats)


def merge_tile_rows(plan: LayerPlan, counts: np.ndarray) -> np.ndarray:
    """Accumulate per-tile-row counts ``(t_r, B, t_c * cols)`` digitally.

    Tile-row partial sums pass through the fixed-point accumulator register
    in tile-row order (paper: 32-bit, 24 fractional) — the order is part of
    the modelled hardware, so the merge is sequential no matter how the
    shards were scheduled. Returns the ``(B, n_out)`` output values.
    """
    acc = plan.sim_config.accumulator_format
    out_value = np.zeros(counts.shape[1:])
    for tr in range(counts.shape[0]):
        out_value = acc.quantize(out_value + counts[tr] * plan.value_lsb)
    return out_value[:, :plan.n_out]


#: Every per-shard counter, in report order. The single source of truth
#: for the stat schema: ``EngineStats.FIELDS`` aliases this tuple, so the
#: kernel's shard-local dicts and the engine's cumulative report can
#: never drift apart (a new counter added here is automatically counted,
#: merged, snapshotted and serialised everywhere).
STAT_FIELDS = ("matmuls", "readouts", "skipped_zero_streams",
               "adc_conversions", "cache_hits", "fused_calls",
               "fallback_calls")


def new_stat_counts() -> dict:
    """Fresh per-shard counter dict (mergeable into ``EngineStats``)."""
    return dict.fromkeys(STAT_FIELDS, 0)
