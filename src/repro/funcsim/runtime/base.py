"""Executor interface of the sharded funcsim runtime.

An executor owns a set of compiled :class:`~repro.funcsim.planner.LayerProgram`
objects (one per converted layer, or one per prepared matrix when driven
through ``CrossbarMvmEngine``) and executes matmuls against them by
decomposing each call into (tile-row, batch-chunk) shards:

* :class:`SerialExecutor <repro.funcsim.runtime.serial.SerialExecutor>` —
  runs shards in order on the calling thread (today's behaviour);
* :class:`ThreadExecutor <repro.funcsim.runtime.threads.ThreadExecutor>` —
  fans shards out over a thread pool (the BLAS-heavy tile models release
  the GIL inside gemm, so threads scale for geniex/analytical tiles);
* :class:`ProcessExecutor <repro.funcsim.runtime.process.ProcessExecutor>` —
  worker processes with shared-memory activation/output arrays, for
  workloads where Python-side decode time dominates.

All backends share the same kernel and the same fixed shard decomposition,
so in batch-invariant mode every backend produces bit-identical outputs at
any worker count; see :mod:`repro.funcsim.runtime.kernel` for the
determinism contract.
"""

from __future__ import annotations

import contextlib
import os
import threading
from time import perf_counter

import numpy as np

from repro.errors import ConfigError
from repro.funcsim.planner import LayerProgram, NetworkProgram
from repro.funcsim.runtime.kernel import (
    DEFAULT_SHARD_ROWS,
    active_signs,
    chunk_ranges,
    merge_tile_rows,
    new_stat_counts,
    quantize_input,
    run_tile_row,
    shard_adc,
)
from repro.obs import SpanTimings, span

#: Work (activation elements x tile-rows) below which the parallel
#: backends run shards inline on the calling thread: pool dispatch / IPC
#: would cost more than the compute. Purely a scheduling decision — the
#: shard set and noise keying are unchanged, so results are identical.
INLINE_WORK_THRESHOLD = 1 << 15


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware, like the benches)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class ExecutorBase:
    """Common scheduling logic; backends implement ``_run_shards``."""

    name = "base"

    #: Minimum estimated ADC conversions per shard for pool dispatch to
    #: pay for itself; below it (or on a single-CPU host) the parallel
    #: backends run the call inline. ``0`` disables the estimate (the
    #: serial backend, which has no dispatch cost to amortise). Backends
    #: override per their dispatch overhead; see :meth:`_should_inline`.
    MIN_SHARD_COST = 0

    def __init__(self, workers: int = 1,
                 shard_rows: int = DEFAULT_SHARD_ROWS):
        from repro.funcsim.engine import EngineStats  # circular at import
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.shard_rows = int(shard_rows)
        # Per-instance copies so callers (and tests) can tune or disable
        # the small-work / cheap-shard inline fallbacks.
        self.inline_work_threshold = INLINE_WORK_THRESHOLD
        self.min_shard_cost = self.MIN_SHARD_COST
        self.stats = EngineStats()
        # Cumulative per-stage wall times; shard workers record into a
        # per-call accumulator which folds in here, exactly like the
        # event counters fold into ``stats``.
        self.span_timings = SpanTimings()
        self._programs: dict = {}
        self._seq: dict = {}
        self._caches: dict = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Program management
    # ------------------------------------------------------------------
    def load_program(self, network: NetworkProgram) -> None:
        """Register every layer of a compiled network at once."""
        for layer_id, program in network.items():
            self.add_layer(layer_id, program)

    def add_layer(self, layer_id: str, program: LayerProgram) -> None:
        """Register (or refresh) one layer program.

        Re-registering an equivalent program (same static plan — uids are
        content digests, so equal plans mean value-identical programs) is
        a no-op: callers that re-prepare the same weights per call must
        not invalidate worker state (the process backend would otherwise
        respawn its pool on every matmul).
        """
        with self._lock:
            known = self._programs.get(layer_id)
            if known is program or (known is not None
                                    and known.plan == program.plan):
                return
            self._programs[layer_id] = program
            self._seq.setdefault(layer_id, 0)
        self._on_program_change()

    def has_layer(self, layer_id: str) -> bool:
        with self._lock:
            return layer_id in self._programs

    def remove_layer(self, layer_id: str) -> None:
        """Forget one layer program (and its shard caches).

        Owners with bounded prepared-matrix caches (e.g.
        :class:`repro.api.session.Session`) evict executor-side state in
        step with their own LRU through this, keeping executor memory
        bounded too. Removing an unknown id is a no-op; a later matmul
        for the id raises until the layer is re-registered (engines
        re-add automatically on their next call).
        """
        with self._lock:
            if layer_id not in self._programs:
                return
            del self._programs[layer_id]
            self._seq.pop(layer_id, None)
            self._caches.pop(layer_id, None)
        self._on_program_change()

    def _on_program_change(self) -> None:
        """Backend hook: invalidate worker state after (re)registration."""

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def matmul(self, layer_id: str, x: np.ndarray, stats=None) -> np.ndarray:
        """Sharded MVM of ``x (B, n_in)`` through a registered layer.

        Merges the call's event counters into ``self.stats`` and, when
        given, into ``stats`` (typically the owning engine's counters).

        A closed executor still answers — it degrades to the inline serial
        schedule (same shards, same noise keying, identical results) so
        work already holding a reference (e.g. a queued serve microbatch
        whose engine was evicted) completes instead of failing; only the
        worker pools are gone.
        """
        with self._lock:
            program = self._programs.get(layer_id)
            if program is None:
                raise ConfigError(
                    f"no layer program registered under {layer_id!r}")
            seq = self._seq[layer_id]
            self._seq[layer_id] = seq + 1
        plan = program.plan
        with span("engine-compute", layer=layer_id, backend=self.name):
            qx = quantize_input(plan, x)
            batch = qx.shape[0]
            chunks = chunk_ranges(batch, self.shard_rows)
            # Activation signs are a per-chunk property shared by every
            # tile-row shard of the chunk; compute them once here.
            signs = [active_signs(qx[start:stop]) for start, stop in chunks]
            counts = np.empty((plan.t_r, batch, plan.out_width))
            call_stats = new_stat_counts()
            call_stats["matmuls"] = 1
            call_timings = SpanTimings()
            t_shards = perf_counter()
            # The spans observe wall time only — no RNG, no numeric state
            # — so traced and untraced runs are bit-identical.
            fused = contextlib.nullcontext() if program.compiled is None \
                else span("fused-execute", layer=layer_id,
                          backend=program.compiled.backend_name)
            with fused, span("tile-shards", shards=len(chunks) * plan.t_r):
                if self._closed:
                    self._run_shards_inline(layer_id, program, qx, chunks,
                                            signs, seq, counts, call_stats,
                                            call_timings)
                else:
                    self._run_shards(layer_id, program, qx, chunks, signs,
                                     seq, counts, call_stats, call_timings)
            call_timings.add("tile-shards", perf_counter() - t_shards)
            out = merge_tile_rows(plan, counts)
        self.stats.merge(call_stats)
        self.span_timings.merge(call_timings)
        if stats is not None and stats is not self.stats:
            stats.merge(call_stats)
        return out

    def _run_shards(self, layer_id: str, program: LayerProgram,
                    qx: np.ndarray, chunks: list, signs: list, seq: int,
                    counts: np.ndarray, call_stats: dict,
                    call_timings: SpanTimings) -> None:
        """Fill ``counts[tr, start:stop]`` for every (tile-row, chunk) shard,
        accumulating event counters into ``call_stats`` and per-shard wall
        times into ``call_timings`` (under the ``"shard"`` stage name)."""
        raise NotImplementedError

    def _cache_for(self, layer_id: str, program: LayerProgram):
        """Calling-process tile-result cache of one layer (or ``None``)."""
        from repro.funcsim.engine import TileResultCache

        if not program.cacheable:
            return None
        with self._lock:
            cache = self._caches.get(layer_id)
            if cache is None:
                cache = self._caches[layer_id] = TileResultCache(
                    program.tile_cache_size)
        return cache

    def _run_shards_inline(self, layer_id, program, qx, chunks, signs, seq,
                           counts, call_stats, call_timings) -> None:
        """Serial reference schedule, shared by every backend.

        The parallel backends fall back to it for small or cheap matmuls
        (see :meth:`_should_inline`) — same shards, same noise keying, so
        the output is bit-identical to a pooled run.
        """
        plan = program.plan
        cache = self._cache_for(layer_id, program)
        for chunk_idx, (start, stop) in enumerate(chunks):
            qx_chunk = qx[start:stop]
            for tr in range(plan.t_r):
                adc = shard_adc(plan, seq, tr, chunk_idx)
                t0 = perf_counter()
                counts[tr, start:stop] = run_tile_row(
                    program, qx_chunk, signs[chunk_idx], tr, adc,
                    cache=cache, stats=call_stats)
                call_timings.add("shard", perf_counter() - t0)

    def _is_small_work(self, plan, qx: np.ndarray) -> bool:
        return qx.size * plan.t_r <= self.inline_work_threshold

    def _should_inline(self, plan, qx: np.ndarray) -> bool:
        """Run this call inline instead of dispatching to the pool?

        Purely a scheduling decision — the shard decomposition and noise
        keying are fixed, so inline and pooled runs are bit-identical.
        Inline wins when (a) the whole call is small (activation elements
        x tile-rows under ``inline_work_threshold``) or (b) the layer
        plan's worst-case cost model prices a single shard below the
        backend's ``min_shard_cost``, where dispatch overhead dominates
        the shard compute (conv-sized im2col batches clear the bar; the
        small fully-connected heads that dragged the parallel backends
        below 1x do not). Setting ``inline_work_threshold <= 0`` disables
        every inline fallback (tests force pooled execution this way).
        """
        if self.inline_work_threshold <= 0:
            return False
        if self._is_small_work(plan, qx):
            return True
        if self.min_shard_cost > 0 and plan.cost is not None:
            # cost is per input row (one MVM); scale to one chunk's rows
            # and divide by the tile-row count for a per-shard estimate.
            chunk_rows = min(qx.shape[0], self.shard_rows)
            per_shard = (plan.cost.adc_conversions * chunk_rows
                         / max(plan.t_r, 1))
            if per_shard < self.min_shard_cost:
                return True
        return False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Release worker pools. Idempotent.

        ``wait=False`` returns without joining workers (the serve registry
        closes evicted engines from the event loop and must not block).
        After closing, the executor still serves matmuls inline — see
        :meth:`matmul` — so in-flight references complete correctly.
        """
        self._closed = True

    def __enter__(self) -> "ExecutorBase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self):
        return (f"{type(self).__name__}(workers={self.workers}, "
                f"layers={len(self._programs)}, "
                f"shard_rows={self.shard_rows})")


def make_executor(backend="serial", workers: int | None = None,
                  shard_rows: int = DEFAULT_SHARD_ROWS):
    """Executor factory: ``serial | threads | process`` (or an instance).

    ``workers`` defaults to the host CPU count for the parallel backends.
    Passing an :class:`ExecutorBase` instance returns it unchanged, so APIs
    accepting ``executor=...`` take either a spec string or a ready object.
    """
    import os

    from repro.funcsim.runtime.process import ProcessExecutor
    from repro.funcsim.runtime.serial import SerialExecutor
    from repro.funcsim.runtime.threads import ThreadExecutor

    if isinstance(backend, ExecutorBase):
        return backend
    if backend is None:
        backend = "serial"
    kind = str(backend).lower()
    if workers is None:
        workers = 1 if kind == "serial" else (os.cpu_count() or 1)
    if kind == "serial":
        return SerialExecutor(shard_rows=shard_rows)
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers=workers, shard_rows=shard_rows)
    if kind in ("process", "processes"):
        return ProcessExecutor(workers=workers, shard_rows=shard_rows)
    raise ConfigError(
        f"unknown executor backend {backend!r}; "
        f"expected serial, threads or process")
