"""Static cost model of the bit-sliced crossbar MVM architecture.

Counts the architectural events that dominate energy in ISAAC/PUMA-class
accelerators — ADC conversions, DAC activations and crossbar readout
operations — for a given workload shape and configuration. Purely
combinatorial (no simulation), so it can sweep large design spaces; the
counts follow exactly the loop structure of
:class:`repro.funcsim.engine.CrossbarMvmEngine`.

A *readout* is one (tile, weight-sign, slice, stream) analog evaluation of
all ``cols`` bit lines; each readout costs ``cols`` ADC conversions. DAC
activations count one per driven row per stream step. Worst-case counts
assume no zero-stream skipping and both weight signs present; callers can
scale by measured sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.tiles import n_tiles
from repro.nn.imops import conv2d_output_shape
from repro.xbar.config import CrossbarConfig


@dataclass(frozen=True)
class CostReport:
    """Event counts for one workload on one configuration.

    Attributes:
        readouts: (tile, sign, slice, stream) crossbar evaluations.
        adc_conversions: Bit-line digitisations (= readouts * cols).
        dac_activations: Driven-row DAC events (= rows per readout group).
        tiles: Programmed crossbar tiles (per weight sign and slice).
        mvms: Number of matrix-vector products covered.
    """

    readouts: int
    adc_conversions: int
    dac_activations: int
    tiles: int
    mvms: int

    def __add__(self, other: "CostReport") -> "CostReport":
        return CostReport(
            self.readouts + other.readouts,
            self.adc_conversions + other.adc_conversions,
            self.dac_activations + other.dac_activations,
            self.tiles + other.tiles,
            self.mvms + other.mvms)

    def scaled(self, factor: int) -> "CostReport":
        """Costs for ``factor`` repetitions (e.g. a batch of inputs)."""
        if factor < 0:
            raise ConfigError("factor must be >= 0")
        return CostReport(self.readouts * factor,
                          self.adc_conversions * factor,
                          self.dac_activations * factor,
                          self.tiles, self.mvms * factor)


def matmul_cost(n_in: int, n_out: int, xbar: CrossbarConfig,
                sim: FuncSimConfig, signed_inputs: bool = False,
                signed_weights: bool = True) -> CostReport:
    """Worst-case cost of one ``(n_in,) x (n_in, n_out)`` MVM."""
    if n_in < 1 or n_out < 1:
        raise ConfigError("operand dimensions must be >= 1")
    t_r = n_tiles(n_in, xbar.rows)
    t_c = n_tiles(n_out, xbar.cols)
    weight_signs = 2 if signed_weights else 1
    input_passes = 2 if signed_inputs else 1
    tiles = t_r * t_c * weight_signs * sim.n_slices
    readouts = tiles * sim.n_streams * input_passes
    adc = readouts * xbar.cols
    # Each (tile-row, stream, input-pass) drives the rows once; the same
    # drive is shared by every tile column / slice / weight sign.
    dac = t_r * sim.n_streams * input_passes * xbar.rows
    return CostReport(readouts, adc, dac, tiles, 1)


def conv2d_cost(image_hw: tuple, in_channels: int, out_channels: int,
                kernel: tuple, xbar: CrossbarConfig, sim: FuncSimConfig,
                stride=(1, 1), padding=(0, 0),
                signed_inputs: bool = False) -> CostReport:
    """Cost of one image through a conv layer (iterative-MVM execution)."""
    h, w = image_hw
    out_h, out_w = conv2d_output_shape(h, w, kernel, stride, padding)
    per_pixel = matmul_cost(in_channels * kernel[0] * kernel[1],
                            out_channels, xbar, sim,
                            signed_inputs=signed_inputs)
    return per_pixel.scaled(out_h * out_w)


def model_cost(model, image_hw: tuple, xbar: CrossbarConfig,
               sim: FuncSimConfig) -> CostReport:
    """Cost of one input image through a :class:`repro.nn.Module` tree.

    Recursively walks the module hierarchy in registration (= forward)
    order, accounting every ``Conv2d``/``Linear`` (or their MVM
    counterparts) at the spatial size each one actually sees: pooling
    updates the spatial size, residual blocks evaluate their projection at
    the block input size, and cost-free layers (activations, norms,
    flatten) pass through. Supports the module types shipped with the
    library.
    """
    total, _, _ = _walk_cost(model, image_hw[0], image_hw[1], xbar, sim)
    return total


def _walk_cost(module, h: int, w: int, xbar, sim):
    from repro.funcsim.layers import Conv2dMVM, LinearMVM
    from repro.models.resnet import BasicBlock
    from repro.nn.modules import (
        AvgPool2d,
        Conv2d,
        Linear,
        MaxPool2d,
    )
    from repro.nn.functional import _pair

    zero = CostReport(0, 0, 0, 0, 0)

    if isinstance(module, (Conv2d, Conv2dMVM)):
        cost = conv2d_cost((h, w), module.in_channels,
                           module.out_channels, module.kernel_size, xbar,
                           sim, stride=module.stride,
                           padding=module.padding)
        h, w = conv2d_output_shape(h, w, module.kernel_size, module.stride,
                                   module.padding)
        return cost, h, w
    if isinstance(module, (Linear, LinearMVM)):
        return matmul_cost(module.in_features, module.out_features, xbar,
                           sim), h, w
    if isinstance(module, (MaxPool2d, AvgPool2d)):
        kernel = _pair(module.kernel_size)
        stride = kernel if module.stride is None else _pair(module.stride)
        h, w = conv2d_output_shape(h, w, kernel, stride, (0, 0))
        return zero, h, w
    if isinstance(module, BasicBlock):
        cost1, h1, w1 = _walk_cost(module.conv1, h, w, xbar, sim)
        cost2, h2, w2 = _walk_cost(module.conv2, h1, w1, xbar, sim)
        total = cost1 + cost2
        if module.projection is not None:
            proj, _, _ = _walk_cost(module.projection, h, w, xbar, sim)
            total = total + proj
        return total, h2, w2
    # Containers and cost-free layers: fold over children in order.
    total = zero
    for child in module._modules.values():
        cost, h, w = _walk_cost(child, h, w, xbar, sim)
        total = total + cost
    return total, h, w


def network_cost(layer_shapes, xbar: CrossbarConfig,
                 sim: FuncSimConfig) -> CostReport:
    """Aggregate cost over ``(kind, ...)`` layer descriptors.

    Each descriptor is either ``("linear", n_in, n_out)`` or
    ``("conv", (h, w), c_in, c_out, (kh, kw), (sh, sw), (ph, pw))``.
    """
    total = CostReport(0, 0, 0, 0, 0)
    for shape in layer_shapes:
        kind = shape[0]
        if kind == "linear":
            total = total + matmul_cost(shape[1], shape[2], xbar, sim)
        elif kind == "conv":
            total = total + conv2d_cost(shape[1], shape[2], shape[3],
                                        shape[4], xbar, sim,
                                        stride=shape[5], padding=shape[6])
        else:
            raise ConfigError(f"unknown layer kind {kind!r}")
    return total
