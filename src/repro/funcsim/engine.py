"""MVM engines: the bit-sliced crossbar pipeline with pluggable tile models.

``CrossbarMvmEngine.matmul`` reproduces the paper's execution model. For each
tile-row the quantised activations are sign-split and streamed
``stream_bits`` at a time as DAC voltages; every (weight-sign, slice, tile)
crossbar returns analog bit-line currents from its *tile model*; the ADC
digitises them; the digital back-end removes the ``g_off`` mapping bias,
merges streams/slices with shift-and-add and accumulates tile partial sums
in the fixed-point accumulator.

**Batched execution.** Every tile model accepts voltage batches of shape
``(M, rows)`` and returns currents of shape ``(M, cols)`` — that is the
batched tile API. ``matmul`` exploits it by stacking all non-zero
(activation-sign, stream) blocks of a tile-row into one ``(S * B, rows)``
voltage batch and issuing a *single* batched call per tile model instead of
``S`` separate ones, so the per-call overhead (Python dispatch, normaliser
matmuls, sparse back-substitution setup, Newton bring-up) is paid once per
tile. The digital decode then walks the measured ``(S, B, cols)`` slices in
the exact order the sequential pipeline used, keeping results bit-identical
(for a noiseless ADC; with ADC noise the seeded samples are drawn in a
different order, so noisy runs are statistically, not bitwise, equivalent
to per-stream execution — while remaining reproducible run-to-run).

**Tile-result caching.** Measured (post-ADC) tile read-outs are memoised in
a per-engine LRU keyed by (prepared-matrix id, tile key, stream level
pattern). Convolution layers re-issue identical stream patterns constantly
(im2col patches share activation blocks), so repeated patterns skip the
analog model entirely. The cache is value-exact — keys include the raw
integer stream levels — and is disabled automatically when ADC noise is
enabled, because noisy conversions must be re-sampled per read-out.
``EngineStats`` counts logical read-outs as if no cache existed (the stats
describe the modelled hardware); ``cache_hits`` reports the software-side
savings.

Tile models:

* :class:`GeniexTileFactory` — GENIEx emulation (default non-ideal mode),
  with the conductance term of the hidden layer precomputed per tile and the
  voltage term shared across all tiles in a tile-row.
* :class:`AnalyticalTileFactory` — exact linear parasitic model (one sparse
  LU per tile, reused across all streams).
* :class:`DecoupledTileFactory` — cheap first-order IR-drop model.
* :class:`CircuitTileFactory` — full non-linear circuit solve via the
  batched Newton path (slow; used to validate the emulator in tests).

:class:`IdealMvmEngine` bypasses the analog pipeline entirely and computes
the exact fixed-point product ("Ideal FxP" in the paper's figures).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analytical.fast_model import DecoupledIrDropModel
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.emulator import GeniexEmulator
from repro.errors import ConfigError, ShapeError
from repro.funcsim.adc import AdcModel
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.slicing import sign_split, split_unsigned
from repro.funcsim.tiles import n_tiles, pad_axis, tile_matrix
from repro.utils.cache import LruDict
from repro.utils.numerics import batch_invariant_matmul
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.xbar.mapping import conductances_from_levels

from scipy.sparse.linalg import splu


# ----------------------------------------------------------------------
# Tile models
# ----------------------------------------------------------------------
def _select_matmul(batch_invariant: bool):
    """Tile-math matrix product: BLAS by default, einsum when the caller
    needs per-row results that are independent of the batch size (see
    :func:`repro.utils.numerics.batch_invariant_matmul`)."""
    if batch_invariant:
        return batch_invariant_matmul
    return np.matmul


class ExactTileFactory:
    """Ideality oracle: tiles compute the exact analog dot product.

    Running the full bit-sliced pipeline with this factory isolates the
    *digital* error sources (activation/weight quantisation, ADC resolution,
    accumulator width) from crossbar non-idealities, and doubles as the
    correctness oracle for the decode path: with a sufficiently fine ADC the
    engine must reproduce :class:`IdealMvmEngine` exactly (tested).
    """

    name = "exact"

    def __init__(self, config: CrossbarConfig, batch_invariant: bool = False):
        self.config = config
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        g = np.asarray(conductance_s, dtype=float)
        matmul = self._matmul if self.batch_invariant else None

        class _Tile:
            def currents(self, voltages_v, cache=None):
                if matmul is not None:
                    return matmul(np.atleast_2d(voltages_v), g)
                return ideal_mvm(voltages_v, g)

        return _Tile()


class GeniexTileFactory:
    """Builds GENIEx-backed tile models for one trained emulator."""

    name = "geniex"

    def __init__(self, emulator: GeniexEmulator,
                 batch_invariant: bool = False):
        self.emulator = emulator
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)
        w1v, _, _ = emulator.model.first_layer_views()
        self._w1v_t = np.ascontiguousarray(w1v.T)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if (self.emulator.rows, self.emulator.cols) != config.shape:
            raise ConfigError(
                f"emulator was trained for "
                f"{self.emulator.rows}x{self.emulator.cols} crossbars, "
                f"engine uses {config.rows}x{config.cols}")

    def prepare_voltages(self, voltages_v: np.ndarray):
        """Hidden-layer voltage term, shared by every tile in a tile-row."""
        v_norm = self.emulator.normalizer.normalize_v(voltages_v)
        return self._matmul(v_norm, self._w1v_t)

    def build(self, conductance_s: np.ndarray) -> "GeniexTileModel":
        return GeniexTileModel(self, conductance_s)


class GeniexTileModel:
    """Per-tile GENIEx forward pass with the G term folded in."""

    def __init__(self, factory: GeniexTileFactory, conductance_s: np.ndarray):
        self._factory = factory
        emulator = factory.emulator
        _, w1g, b1 = emulator.model.first_layer_views()
        g_norm = emulator.normalizer.normalize_g(conductance_s).reshape(-1)
        self._hidden_bias = (g_norm @ w1g.T + b1).astype(np.float32)
        self.conductance_s = conductance_s

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        factory = self._factory
        if cache is None:
            cache = factory.prepare_voltages(voltages_v)
        hidden = cache + self._hidden_bias
        fr_norm = factory.emulator.model.forward_hidden(
            hidden, matmul=factory._matmul if factory.batch_invariant
            else None)
        fr = factory.emulator.normalizer.denormalize_fr(fr_norm)
        if factory.batch_invariant:
            i_ideal = factory._matmul(np.atleast_2d(voltages_v),
                                      self.conductance_s)
        else:
            i_ideal = ideal_mvm(voltages_v, self.conductance_s)
        return i_ideal / fr


class AnalyticalTileFactory:
    """Exact linear parasitic model, reduced to a transfer matrix per tile.

    The parasitic network is linear, so programming a tile amounts to one
    sparse solve of ``rows`` unit-voltage problems; afterwards every
    readout is a dense ``V @ T`` matmul — the CxDNN "matrix inversion"
    formulation, and the reason the analytical engine keeps up with GENIEx
    on throughput.
    """

    name = "analytical"

    def __init__(self, config: CrossbarConfig, batch_invariant: bool = False):
        self.config = config
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)
        self._solver = LinearCrossbarSolver(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray) -> "AnalyticalTileModel":
        return AnalyticalTileModel(
            self._solver.transfer_matrix(conductance_s), self._matmul)


class AnalyticalTileModel:
    def __init__(self, transfer: np.ndarray, matmul=np.matmul):
        self._transfer = transfer
        self._matmul = matmul

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        return self._matmul(np.atleast_2d(voltages_v), self._transfer)


class DecoupledTileFactory:
    """First-order IR-drop approximation (ablation model)."""

    name = "decoupled"

    def __init__(self, config: CrossbarConfig, n_sweeps: int = 2):
        self.config = config
        self._model = DecoupledIrDropModel(config, n_sweeps=n_sweeps)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        model = self._model
        g = np.asarray(conductance_s, dtype=float)

        class _Tile:
            def currents(self, voltages_v, cache=None):
                return model.predict_currents(voltages_v, g)

        return _Tile()


class CircuitTileFactory:
    """Full non-linear circuit solve per operating point (slow, exact)."""

    name = "circuit"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self._simulator = CrossbarCircuitSimulator(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        simulator = self._simulator
        g = np.asarray(conductance_s, dtype=float)

        class _Tile:
            def currents(self, voltages_v, cache=None):
                return simulator.solve_batch(voltages_v, g, mode="full")

        return _Tile()


# ----------------------------------------------------------------------
# Prepared weights
# ----------------------------------------------------------------------
_PREPARED_IDS = itertools.count()


class PreparedMatrix:
    """Weight matrix quantised, sliced, tiled and programmed into models.

    ``uid`` is a process-unique identifier used to key tile-result cache
    entries, so results programmed from one weight matrix can never be
    served for another.
    """

    def __init__(self, n_in: int, n_out: int, qw: np.ndarray, models: dict,
                 t_r: int, t_c: int, sign_present: tuple):
        self.n_in = n_in
        self.n_out = n_out
        self.qw = qw
        self.models = models  # (sign, slice, tr, tc) -> tile model
        self.t_r = t_r
        self.t_c = t_c
        self.sign_present = sign_present
        self.uid = next(_PREPARED_IDS)


class TileResultCache(LruDict):
    """LRU cache of measured (post-ADC) tile read-outs.

    Keys combine the prepared-matrix uid, the tile coordinates and the raw
    integer stream-level block, so hits are value-exact. ``max_entries``
    bounds memory at roughly ``max_entries * batch * cols`` floats.
    """

    def __init__(self, max_entries: int):
        super().__init__(max_entries)
        self.hits = 0
        self.misses = 0

    def get(self, key):
        value = super().get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def clear(self) -> None:
        super().clear()
        self.hits = 0
        self.misses = 0


class EngineStats:
    """Cumulative event counters of a :class:`CrossbarMvmEngine`.

    ``readouts`` counts logical analog tile evaluations — what the modelled
    hardware would execute, independent of the software tile-result cache;
    zero-valued stream blocks are skipped (they drive no current) and
    tallied separately, so ``readouts + skipped`` equals the static worst
    case of :func:`repro.funcsim.cost.matmul_cost` scaled by the batch.
    ``cache_hits`` counts read-outs served from the tile-result cache
    instead of the tile model (a software-side saving; such read-outs still
    count in ``readouts`` and ``adc_conversions``).
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.matmuls = 0
        self.readouts = 0
        self.skipped_zero_streams = 0
        self.adc_conversions = 0
        self.cache_hits = 0

    def __repr__(self):
        return (f"EngineStats(matmuls={self.matmuls}, "
                f"readouts={self.readouts}, "
                f"skipped={self.skipped_zero_streams}, "
                f"adc={self.adc_conversions}, "
                f"cache_hits={self.cache_hits})")


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class IdealMvmEngine:
    """Exact fixed-point matmul — the paper's "Ideal FxP" reference.

    Activations and weights are quantised to their fixed-point formats, the
    integer product is computed exactly, and the result passes once through
    the accumulator format.
    """

    name = "ideal"

    def __init__(self, sim_config: FuncSimConfig):
        self.sim_config = sim_config

    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        qw = self.sim_config.weight_format.quantize_to_int(weights)
        return PreparedMatrix(weights.shape[0], weights.shape[1], qw, {},
                              0, 0, (1,))

    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        cfg = self.sim_config
        qx = cfg.activation_format.quantize_to_int(x)
        counts = qx.astype(np.float64) @ prepared.qw.astype(np.float64)
        value = counts * (cfg.activation_format.resolution *
                          cfg.weight_format.resolution)
        return cfg.accumulator_format.quantize(value)


class CrossbarMvmEngine:
    """Bit-sliced, tiled crossbar MVM with a non-ideal tile model.

    ``tile_cache_size`` bounds the LRU tile-result cache (measured per-tile
    read-outs keyed by activation pattern); ``0`` disables it. The cache is
    also disabled when the ADC models noise, because noisy conversions must
    be re-sampled on every read-out.
    """

    def __init__(self, xbar_config: CrossbarConfig,
                 sim_config: FuncSimConfig, tile_factory,
                 tile_cache_size: int = 256):
        tile_factory.check_crossbar(xbar_config)
        self.xbar_config = xbar_config
        self.sim_config = sim_config
        self.tile_factory = tile_factory
        self.name = tile_factory.name
        if tile_cache_size > 0 and sim_config.adc_noise_lsb == 0.0:
            self.tile_cache = TileResultCache(tile_cache_size)
        else:
            self.tile_cache = None
        # DAC / conductance LSBs of the digital <-> analog mapping.
        self._v_lsb = xbar_config.v_supply_v / (2 ** sim_config.stream_bits - 1)
        n_g_levels = 2 ** sim_config.slice_bits
        self._g_lsb = ((xbar_config.g_on_s - xbar_config.g_off_s)
                       / (n_g_levels - 1)) if n_g_levels > 1 else \
            (xbar_config.g_on_s - xbar_config.g_off_s)
        self.adc = AdcModel.aligned(sim_config.adc_bits,
                                    self._v_lsb * self._g_lsb,
                                    headroom=sim_config.adc_headroom,
                                    offset_lsb=sim_config.adc_offset_lsb,
                                    noise_lsb=sim_config.adc_noise_lsb,
                                    seed=sim_config.adc_seed)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        """Quantise, sign-split, slice and tile a ``(K, M)`` weight matrix,
        programming one tile model per (sign, slice, tile)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        cfg, xcfg = self.sim_config, self.xbar_config
        qw = cfg.weight_format.quantize_to_int(weights)
        parts = sign_split(qw)
        sign_present = tuple(k for k, part in enumerate(parts)
                             if np.any(part) or k == 0)
        t_r = n_tiles(weights.shape[0], xcfg.rows)
        t_c = n_tiles(weights.shape[1], xcfg.cols)
        n_levels = 2 ** cfg.slice_bits

        models = {}
        for sign in sign_present:
            slices = split_unsigned(parts[sign],
                                    cfg.weight_format.magnitude_bits,
                                    cfg.slice_bits)
            for k in range(cfg.n_slices):
                tiles = tile_matrix(slices[k], xcfg.rows, xcfg.cols)
                for tr in range(t_r):
                    for tc in range(t_c):
                        g = conductances_from_levels(tiles[tr, tc], n_levels,
                                                     xcfg)
                        models[(sign, k, tr, tc)] = self.tile_factory.build(g)
        return PreparedMatrix(weights.shape[0], weights.shape[1], qw, models,
                              t_r, t_c, sign_present)

    # ------------------------------------------------------------------
    def _measure_tile_row(self, prepared, tr: int, stream_levels: list,
                          batch: int) -> dict:
        """One batched analog + ADC pass over every model of a tile-row.

        All ``S`` active stream blocks are stacked into a single
        ``(S * batch, rows)`` voltage batch; each tile model then runs one
        batched call (minus any read-outs served by the tile-result cache)
        and the measured currents come back as per-stream ``(batch, cols)``
        slices. Returns ``{(sign, slice, tc): [S slices]}``.
        """
        cfg = self.sim_config
        cols = self.xbar_config.cols
        s_count = len(stream_levels)
        cache = self.tile_cache
        # Serialise each stream block once; the key bytes are shared by
        # every (sign, slice, tile-column) lookup below.
        level_bytes = [levels.tobytes() for levels in stream_levels] \
            if cache is not None else None
        # The stacked voltages and the factory's shared term are only
        # needed on a cache miss; fully-cached tile-rows skip both.
        voltages = None
        shared = None

        measured = {}
        for sw in prepared.sign_present:
            for k in range(cfg.n_slices):
                for tc in range(prepared.t_c):
                    model = prepared.models[(sw, k, tr, tc)]
                    self.stats.readouts += s_count
                    self.stats.adc_conversions += s_count * batch * cols
                    result = [None] * s_count
                    keys = [None] * s_count
                    missing = []
                    if cache is not None:
                        for s in range(s_count):
                            keys[s] = (prepared.uid, sw, k, tr, tc, batch,
                                       level_bytes[s])
                            hit = cache.get(keys[s])
                            if hit is None:
                                missing.append(s)
                            else:
                                result[s] = hit
                                self.stats.cache_hits += 1
                    else:
                        missing = list(range(s_count))
                    if missing:
                        if voltages is None:
                            voltages = np.concatenate(
                                stream_levels, axis=0) * self._v_lsb
                            shared = self.tile_factory.prepare_voltages(
                                voltages)
                        if len(missing) == s_count:
                            v_sub, c_sub = voltages, shared
                        else:
                            sel = np.concatenate(
                                [np.arange(s * batch, (s + 1) * batch)
                                 for s in missing])
                            v_sub = voltages[sel]
                            c_sub = shared[sel] \
                                if isinstance(shared, np.ndarray) else shared
                        i_meas = self.adc.measure(
                            model.currents(v_sub, c_sub)
                        ).reshape(len(missing), batch, cols)
                        for j, s in enumerate(missing):
                            result[s] = i_meas[j]
                            if cache is not None:
                                # Copy out of the stacked measurement so a
                                # cache entry never pins the whole block.
                                cache.put(keys[s], i_meas[j].copy())
                    measured[(sw, k, tc)] = result
        return measured

    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        """Quantised crossbar product of ``x (B, K)`` with prepared weights.

        All non-zero stream blocks of a tile-row are read out through one
        batched tile-model call each (see the module docstring); the decode
        applies the same shift-and-add in the same order as a per-stream
        pipeline, so outputs are identical to sequential execution (up to
        noise-sample ordering when ADC noise is enabled).
        """
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != prepared.n_in:
            raise ShapeError(
                f"input features {x.shape[1]} != weight rows {prepared.n_in}")
        cfg, xcfg = self.sim_config, self.xbar_config
        batch = x.shape[0]
        rows, cols = xcfg.rows, xcfg.cols
        t_r, t_c = prepared.t_r, prepared.t_c

        qx = cfg.activation_format.quantize_to_int(x)
        qx = pad_axis(qx, 1, rows)
        x_parts = sign_split(qx)
        x_signs = [k for k, part in enumerate(x_parts) if np.any(part)]
        if not x_signs:
            x_signs = [0]
        streams = {
            sx: split_unsigned(x_parts[sx],
                               cfg.activation_format.magnitude_bits,
                               cfg.stream_bits)
            for sx in x_signs
        }

        value_lsb = (cfg.activation_format.resolution *
                     cfg.weight_format.resolution)
        acc = cfg.accumulator_format
        bias_factor = xcfg.g_off_s / self._g_lsb
        decode = 1.0 / (self._v_lsb * self._g_lsb)

        self.stats.matmuls += 1
        per_stream_models = len(prepared.sign_present) * cfg.n_slices * t_c
        out_value = np.zeros((batch, t_c * cols))
        for tr in range(t_r):
            row_block = slice(tr * rows, (tr + 1) * rows)
            # Gather the non-zero stream blocks of this tile-row in the
            # (sign, stream) order the decode below consumes them.
            stream_levels = []
            stream_info = []
            for sx in x_signs:
                for m in range(cfg.n_streams):
                    levels = streams[sx][m][:, row_block]
                    if not levels.any():
                        # Zero drive => exactly zero currents.
                        self.stats.skipped_zero_streams += per_stream_models
                        continue
                    stream_levels.append(levels)
                    stream_info.append((sx, m))
            tr_counts = np.zeros((batch, t_c * cols))
            if stream_levels:
                measured = self._measure_tile_row(prepared, tr,
                                                  stream_levels, batch)
                for s, (sx, m) in enumerate(stream_info):
                    sx_factor = 1.0 if sx == 0 else -1.0
                    stream_sum = stream_levels[s].sum(axis=1)[:, None]
                    stream_scale = float(2 ** (m * cfg.stream_bits))
                    for sw in prepared.sign_present:
                        sw_factor = 1.0 if sw == 0 else -1.0
                        for k in range(cfg.n_slices):
                            slice_scale = float(2 ** (k * cfg.slice_bits))
                            for tc in range(t_c):
                                i_meas = measured[(sw, k, tc)][s]
                                counts = i_meas * decode \
                                    - bias_factor * stream_sum
                                tr_counts[:, tc * cols:(tc + 1) * cols] += (
                                    sx_factor * sw_factor * stream_scale
                                    * slice_scale * counts)
            # Tile-row partial sums accumulate through the fixed-point
            # accumulator register (paper: 32-bit, 24 fractional).
            out_value = acc.quantize(out_value + tr_counts * value_lsb)
        return out_value[:, :prepared.n_out]


def make_engine(kind: str, xbar_config: CrossbarConfig,
                sim_config: FuncSimConfig,
                emulator: GeniexEmulator | None = None,
                tile_cache_size: int = 256,
                batch_invariant: bool = False):
    """Engine factory: ``ideal | geniex | analytical | decoupled | circuit``.

    ``batch_invariant=True`` routes tile matmuls through the einsum kernel
    so each output row is bitwise independent of the batch it shares (the
    serving layer needs this; see :mod:`repro.utils.numerics`). Supported
    for ``geniex``, ``exact`` and ``analytical``; ``ideal`` is inherently
    invariant (exact integer arithmetic); the iterative ``decoupled`` and
    ``circuit`` models are not, and reject the flag. Invariance also
    requires a deterministic, zero-preserving ADC: the engine skips
    all-zero stream blocks *per batch*, which only equals per-row
    execution when ``measure(0) == 0``, so converter offset or noise is
    rejected too.
    """
    if kind == "ideal":
        return IdealMvmEngine(sim_config)
    if batch_invariant and (sim_config.adc_offset_lsb != 0.0
                            or sim_config.adc_noise_lsb != 0.0):
        raise ConfigError(
            "batch-invariant execution requires a deterministic, "
            "zero-preserving ADC (adc_offset_lsb == adc_noise_lsb == 0); "
            "zero-drive stream blocks are skipped per batch and would "
            "otherwise measure differently depending on batch composition")
    if kind == "geniex":
        if emulator is None:
            raise ConfigError("geniex engine requires a trained emulator")
        factory = GeniexTileFactory(emulator, batch_invariant=batch_invariant)
    elif kind == "exact":
        factory = ExactTileFactory(xbar_config,
                                   batch_invariant=batch_invariant)
    elif kind == "analytical":
        factory = AnalyticalTileFactory(xbar_config,
                                        batch_invariant=batch_invariant)
    elif kind in ("decoupled", "circuit"):
        if batch_invariant:
            raise ConfigError(
                f"batch-invariant execution is not supported for the "
                f"iterative {kind!r} tile model")
        factory = DecoupledTileFactory(xbar_config) if kind == "decoupled" \
            else CircuitTileFactory(xbar_config)
    else:
        raise ConfigError(
            f"unknown engine kind {kind!r}; expected ideal, exact, geniex, "
            f"analytical, decoupled or circuit")
    return CrossbarMvmEngine(xbar_config, sim_config, factory,
                             tile_cache_size=tile_cache_size)
