"""MVM engines: the bit-sliced crossbar pipeline with pluggable tile models.

``CrossbarMvmEngine`` reproduces the paper's execution model in two phases
(the plan/execute split):

* **Compile** — :meth:`CrossbarMvmEngine.prepare` quantises, sign-splits,
  slices and tiles a weight matrix, programs one tile model per
  (weight-sign, slice, tile) and lowers the result into a static, picklable
  :class:`~repro.funcsim.planner.LayerProgram` (tile schedule, decode
  constants, ADC transfer, cost metadata).
* **Execute** — :meth:`CrossbarMvmEngine.matmul` streams quantised
  activations through the program via the shard kernel
  (:mod:`repro.funcsim.runtime.kernel`): per tile-row the sign-split
  activations are streamed ``stream_bits`` at a time as DAC voltages; every
  (weight-sign, slice, tile) crossbar returns analog bit-line currents from
  its *tile model*; the ADC digitises them; the digital back-end removes
  the ``g_off`` mapping bias, merges streams/slices with shift-and-add and
  accumulates tile partial sums in the fixed-point accumulator.

Without an executor the engine runs the kernel inline on the calling
thread — bit-identical to the historical monolithic implementation,
including the sequential ADC noise stream. With an executor
(``make_engine(..., executor="process", workers=4)`` or any
:class:`repro.funcsim.runtime.ExecutorBase`) execution is sharded across
tile-rows and batch chunks on threads or worker processes; see
:mod:`repro.funcsim.runtime` for the determinism contract.

**Batched execution.** Every tile model accepts voltage batches of shape
``(M, rows)`` and returns currents of shape ``(M, cols)`` — that is the
batched tile API. The kernel exploits it by stacking all non-zero
(activation-sign, stream) blocks of a tile-row into one ``(S * B, rows)``
voltage batch and issuing a *single* batched call per tile model instead of
``S`` separate ones, so the per-call overhead (Python dispatch, normaliser
matmuls, sparse back-substitution setup, Newton bring-up) is paid once per
tile.

**Tile-result caching.** Measured (post-ADC) tile read-outs are memoised in
a per-engine LRU keyed by (prepared-matrix uid, tile key, stream level
pattern). Convolution layers re-issue identical stream patterns constantly
(im2col patches share activation blocks), so repeated patterns skip the
analog model entirely. The cache is value-exact — keys include the raw
integer stream levels — and is disabled automatically when ADC noise is
enabled, because noisy conversions must be re-sampled per read-out.
``EngineStats`` counts logical read-outs as if no cache existed (the stats
describe the modelled hardware); ``cache_hits`` reports the software-side
savings.

Tile models:

* :class:`GeniexTileFactory` — GENIEx emulation (default non-ideal mode),
  with the conductance term of the hidden layer precomputed per tile and the
  voltage term shared across all tiles in a tile-row.
* :class:`AnalyticalTileFactory` — exact linear parasitic model (one sparse
  LU per tile, reused across all streams).
* :class:`DecoupledTileFactory` — cheap first-order IR-drop model.
* :class:`CircuitTileFactory` — full non-linear circuit solve via the
  batched Newton path (slow; used to validate the emulator in tests).

:class:`IdealMvmEngine` bypasses the analog pipeline entirely and computes
the exact fixed-point product ("Ideal FxP" in the paper's figures).
"""

from __future__ import annotations

import contextlib
import hashlib
import threading

import numpy as np

from repro.analytical.fast_model import DecoupledIrDropModel
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.emulator import GeniexEmulator
from repro.errors import ConfigError, ShapeError
from repro.funcsim.adc import AdcModel
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.compiler import compile_program
from repro.funcsim.planner import plan_layer
from repro.funcsim.runtime.backends import resolve_backend
from repro.funcsim.runtime.base import make_executor
from repro.funcsim.runtime.kernel import (
    STAT_FIELDS,
    active_signs,
    new_stat_counts,
    quantize_input,
    run_tile_row,
)
from repro.obs import span
from repro.funcsim.slicing import sign_split, split_unsigned
from repro.funcsim.tiles import n_tiles, tile_matrix
from repro.nonideal.pipeline import as_pipeline
from repro.utils.cache import LruDict
from repro.utils.digest import content_key
from repro.utils.numerics import batch_invariant_matmul
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.xbar.mapping import conductances_from_levels

#: Every engine kind :func:`make_engine` accepts, in documentation order.
#: The factory's docstring, its error message and the serving protocol all
#: derive from this single tuple (tested against the docstring).
ENGINE_KINDS = ("ideal", "exact", "geniex", "analytical", "decoupled",
                "circuit")

#: Kinds whose tile models support the batch-invariant einsum kernel
#: (closed-form tile math; the iterative ``decoupled``/``circuit`` models
#: cannot, and ``ideal`` is inherently invariant without the flag). The
#: single source of truth: :func:`make_engine` enforces it here and
#: :func:`repro.api.spec.supports_batch_invariance` builds on it.
INVARIANT_KINDS = ("geniex", "exact", "analytical")


# ----------------------------------------------------------------------
# Tile models
# ----------------------------------------------------------------------
def _select_matmul(batch_invariant: bool):
    """Tile-math matrix product: BLAS by default, einsum when the caller
    needs per-row results that are independent of the batch size (see
    :func:`repro.utils.numerics.batch_invariant_matmul`)."""
    if batch_invariant:
        return batch_invariant_matmul
    return np.matmul


class ExactTileModel:
    """Tile computing the exact analog dot product (ideality oracle)."""

    def __init__(self, conductance_s: np.ndarray, matmul=None):
        self.conductance_s = np.asarray(conductance_s, dtype=float)
        self._matmul = matmul

    def currents(self, voltages_v, cache=None) -> np.ndarray:
        if self._matmul is not None:
            return self._matmul(np.atleast_2d(voltages_v),
                                self.conductance_s)
        return ideal_mvm(voltages_v, self.conductance_s)


class ExactTileFactory:
    """Ideality oracle: tiles compute the exact analog dot product.

    Running the full bit-sliced pipeline with this factory isolates the
    *digital* error sources (activation/weight quantisation, ADC resolution,
    accumulator width) from crossbar non-idealities, and doubles as the
    correctness oracle for the decode path: with a sufficiently fine ADC the
    engine must reproduce :class:`IdealMvmEngine` exactly (tested).
    """

    name = "exact"

    def __init__(self, config: CrossbarConfig, batch_invariant: bool = False):
        self.config = config
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def cache_token(self) -> str:
        return f"exact|bi={int(self.batch_invariant)}"

    def build(self, conductance_s: np.ndarray) -> ExactTileModel:
        return ExactTileModel(
            conductance_s,
            self._matmul if self.batch_invariant else None)


class GeniexTileFactory:
    """Builds GENIEx-backed tile models for one trained emulator."""

    name = "geniex"

    def __init__(self, emulator: GeniexEmulator,
                 batch_invariant: bool = False):
        self.emulator = emulator
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)
        w1v, _, _ = emulator.model.first_layer_views()
        self._w1v_t = np.ascontiguousarray(w1v.T)
        self._cache_token = None

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if (self.emulator.rows, self.emulator.cols) != config.shape:
            raise ConfigError(
                f"emulator was trained for "
                f"{self.emulator.rows}x{self.emulator.cols} crossbars, "
                f"engine uses {config.rows}x{config.cols}")

    def prepare_voltages(self, voltages_v: np.ndarray):
        """Hidden-layer voltage term, shared by every tile in a tile-row."""
        v_norm = self.emulator.normalizer.normalize_v(voltages_v)
        return self._matmul(v_norm, self._w1v_t)

    def cache_token(self) -> str:
        """Identity of the emulation function, not just its topology.

        Digests the trained network's parameters so two engines backed by
        *differently trained* emulators (same crossbar shape) can never
        share prepared-matrix uids — and with them tile-result cache
        entries or runtime layer programs.
        """
        if self._cache_token is None:
            digest = hashlib.sha256()
            for name, array in self.emulator.model.state_dict().items():
                digest.update(name.encode())
                digest.update(np.ascontiguousarray(array).tobytes())
            self._cache_token = (f"geniex|bi={int(self.batch_invariant)}"
                                 f"|em={digest.hexdigest()[:16]}")
        return self._cache_token

    def build(self, conductance_s: np.ndarray) -> "GeniexTileModel":
        return GeniexTileModel(self, conductance_s)


class GeniexTileModel:
    """Per-tile GENIEx forward pass with the G term folded in."""

    def __init__(self, factory: GeniexTileFactory, conductance_s: np.ndarray):
        self._factory = factory
        emulator = factory.emulator
        _, w1g, b1 = emulator.model.first_layer_views()
        g_norm = emulator.normalizer.normalize_g(conductance_s).reshape(-1)
        self._hidden_bias = (g_norm @ w1g.T + b1).astype(np.float32)
        self.conductance_s = conductance_s

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        factory = self._factory
        if cache is None:
            cache = factory.prepare_voltages(voltages_v)
        hidden = cache + self._hidden_bias
        fr_norm = factory.emulator.model.forward_hidden(
            hidden, matmul=factory._matmul if factory.batch_invariant
            else None)
        fr = factory.emulator.normalizer.denormalize_fr(fr_norm)
        if factory.batch_invariant:
            i_ideal = factory._matmul(np.atleast_2d(voltages_v),
                                      self.conductance_s)
        else:
            i_ideal = ideal_mvm(voltages_v, self.conductance_s)
        return i_ideal / fr


class AnalyticalTileFactory:
    """Exact linear parasitic model, reduced to a transfer matrix per tile.

    The parasitic network is linear, so programming a tile amounts to one
    sparse solve of ``rows`` unit-voltage problems; afterwards every
    readout is a dense ``V @ T`` matmul — the CxDNN "matrix inversion"
    formulation, and the reason the analytical engine keeps up with GENIEx
    on throughput.
    """

    name = "analytical"

    def __init__(self, config: CrossbarConfig, batch_invariant: bool = False):
        self.config = config
        self.batch_invariant = bool(batch_invariant)
        self._matmul = _select_matmul(batch_invariant)
        self._solver = LinearCrossbarSolver(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def cache_token(self) -> str:
        return f"analytical|bi={int(self.batch_invariant)}"

    def build(self, conductance_s: np.ndarray) -> "AnalyticalTileModel":
        return AnalyticalTileModel(
            self._solver.transfer_matrix(conductance_s), self._matmul)

    def __getstate__(self):
        # The sparse-LU cache inside the solver is not picklable (and not
        # needed after tiles are built); worker processes rebuild it lazily.
        state = self.__dict__.copy()
        state["_solver"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._solver is None:
            self._solver = LinearCrossbarSolver(self.config)


class AnalyticalTileModel:
    def __init__(self, transfer: np.ndarray, matmul=np.matmul):
        self._transfer = transfer
        self._matmul = matmul

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        return self._matmul(np.atleast_2d(voltages_v), self._transfer)


class DecoupledTileModel:
    """Tile evaluating the first-order IR-drop approximation."""

    def __init__(self, model: DecoupledIrDropModel,
                 conductance_s: np.ndarray):
        self._model = model
        self.conductance_s = np.asarray(conductance_s, dtype=float)

    def currents(self, voltages_v, cache=None) -> np.ndarray:
        return self._model.predict_currents(voltages_v, self.conductance_s)


class DecoupledTileFactory:
    """First-order IR-drop approximation (ablation model)."""

    name = "decoupled"

    def __init__(self, config: CrossbarConfig, n_sweeps: int = 2):
        self.config = config
        self._model = DecoupledIrDropModel(config, n_sweeps=n_sweeps)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def cache_token(self) -> str:
        return f"decoupled|sweeps={self._model.n_sweeps}"

    def build(self, conductance_s: np.ndarray) -> DecoupledTileModel:
        return DecoupledTileModel(self._model,
                                  np.asarray(conductance_s, dtype=float))


class CircuitTileModel:
    """Tile running a full non-linear circuit solve per readout."""

    def __init__(self, simulator: CrossbarCircuitSimulator,
                 conductance_s: np.ndarray):
        self._simulator = simulator
        self.conductance_s = np.asarray(conductance_s, dtype=float)

    def currents(self, voltages_v, cache=None) -> np.ndarray:
        return self._simulator.solve_batch(voltages_v, self.conductance_s,
                                           mode="full")


class CircuitTileFactory:
    """Full non-linear circuit solve per operating point (slow, exact)."""

    name = "circuit"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self._simulator = CrossbarCircuitSimulator(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def cache_token(self) -> str:
        return "circuit"

    def build(self, conductance_s: np.ndarray) -> CircuitTileModel:
        return CircuitTileModel(self._simulator,
                                np.asarray(conductance_s, dtype=float))


# ----------------------------------------------------------------------
# Prepared weights
# ----------------------------------------------------------------------
def _content_uid(token: str, qw: np.ndarray, t_r: int, t_c: int,
                 sign_present: tuple) -> str:
    """Deterministic prepared-matrix identifier.

    A digest of the quantised weights and the tiling layout (plus an
    engine-configuration token), so uids are stable across processes —
    fork-safe, unlike a per-process counter — and equal exactly when the
    programmed tiles are value-identical, which makes any tile-result
    cache sharing value-exact by construction. Built on the shared
    :mod:`repro.utils.digest` primitives, like every other content key
    in the repository.
    """
    return content_key("", token, [t_r, t_c, list(sign_present)],
                       np.ascontiguousarray(qw), length=16)


class PreparedMatrix:
    """Weight matrix quantised, sliced, tiled and programmed into models.

    ``uid`` identifies the prepared content in tile-result cache keys and
    runtime layer programs. It is a content digest (weights + tiling +
    engine token), not a process-local counter: two workers that prepare
    the same matrix agree on the uid, and two *different* matrices can
    never collide just because they were prepared in forked processes with
    the same counter state.
    """

    def __init__(self, n_in: int, n_out: int, qw: np.ndarray, models: dict,
                 t_r: int, t_c: int, sign_present: tuple, token: str = ""):
        self.n_in = n_in
        self.n_out = n_out
        self.qw = qw
        self.models = models  # (sign, slice, tr, tc) -> tile model
        self.t_r = t_r
        self.t_c = t_c
        self.sign_present = sign_present
        self.uid = _content_uid(token, qw, t_r, t_c, sign_present)
        #: Compiled :class:`~repro.funcsim.planner.LayerProgram`, attached
        #: by the preparing engine (``None`` for the ideal engine).
        self.program = None


class TileResultCache(LruDict):
    """LRU cache of measured (post-ADC) tile read-outs.

    Keys combine the prepared-matrix uid, the tile coordinates and the raw
    integer stream-level block, so hits are value-exact. ``max_entries``
    bounds memory at roughly ``max_entries * batch * cols`` floats.

    Hit/miss counters are updated under the cache lock, so a single
    instance may be shared by concurrent shard workers (the thread backend
    does) without racing the statistics.
    """

    def __init__(self, max_entries: int):
        super().__init__(max_entries)
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            value = super().get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def counters(self) -> tuple:
        """Consistent ``(hits, misses)`` snapshot."""
        with self._lock:
            return self.hits, self.misses

    def __setstate__(self, state):
        super().__setstate__(state)
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self.hits = 0
            self.misses = 0


class EngineStats:
    """Cumulative event counters of a :class:`CrossbarMvmEngine`.

    ``readouts`` counts logical analog tile evaluations — what the modelled
    hardware would execute, independent of the software tile-result cache;
    zero-valued stream blocks are skipped (they drive no current) and
    tallied separately, so ``readouts + skipped`` equals the static worst
    case of :func:`repro.funcsim.cost.matmul_cost` scaled by the batch.
    ``cache_hits`` counts read-outs served from the tile-result cache
    instead of the tile model (a software-side saving; such read-outs still
    count in ``readouts`` and ``adc_conversions``).

    Counters accumulate shard-locally during execution and are folded in
    through :meth:`merge`, which is lock-protected — per-worker statistics
    aggregate into one coherent report instead of racing on increments.
    """

    # Aliases the kernel's schema: one tuple defines which counters
    # exist, everywhere (shard dicts, merge validation, snapshots, repr).
    FIELDS = STAT_FIELDS

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            for field in self.FIELDS:
                setattr(self, field, 0)

    def snapshot(self) -> dict:
        """Consistent copy of all counters."""
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}

    def as_dict(self) -> dict:
        """Alias of :meth:`snapshot` (dict-like reporting surfaces)."""
        return self.snapshot()

    def merge(self, other) -> "EngineStats":
        """Fold another stats object (or counter mapping) into this one."""
        counts = other.snapshot() if isinstance(other, EngineStats) \
            else dict(other)
        unknown = set(counts) - set(self.FIELDS)
        if unknown:
            raise ConfigError(f"unknown stat counters: {sorted(unknown)}")
        with self._lock:
            for field, value in counts.items():
                setattr(self, field, getattr(self, field) + int(value))
        return self

    def __getstate__(self):
        return self.snapshot()

    def __setstate__(self, state):
        self._lock = threading.Lock()
        for field in self.FIELDS:
            setattr(self, field, state.get(field, 0))

    # Short labels for the repr; fields without one print in full.
    _REPR_LABELS = {"skipped_zero_streams": "skipped",
                    "adc_conversions": "adc"}

    def __repr__(self):
        counts = self.snapshot()
        body = ", ".join(
            f"{self._REPR_LABELS.get(field, field)}={counts[field]}"
            for field in self.FIELDS)
        return f"EngineStats({body})"


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class IdealMvmEngine:
    """Exact fixed-point matmul — the paper's "Ideal FxP" reference.

    Activations and weights are quantised to their fixed-point formats, the
    integer product is computed exactly, and the result passes once through
    the accumulator format.
    """

    name = "ideal"

    def __init__(self, sim_config: FuncSimConfig):
        self.sim_config = sim_config

    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        qw = self.sim_config.weight_format.quantize_to_int(weights)
        return PreparedMatrix(weights.shape[0], weights.shape[1], qw, {},
                              0, 0, (1,), token=f"ideal|{self.sim_config!r}")

    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        cfg = self.sim_config
        qx = cfg.activation_format.quantize_to_int(x)
        counts = qx.astype(np.float64) @ prepared.qw.astype(np.float64)
        value = counts * (cfg.activation_format.resolution *
                          cfg.weight_format.resolution)
        return cfg.accumulator_format.quantize(value)

    def close(self, wait: bool = True) -> None:
        """No-op (uniform engine lifecycle API; nothing to release)."""


class CrossbarMvmEngine:
    """Bit-sliced, tiled crossbar MVM with a non-ideal tile model.

    ``tile_cache_size`` bounds the LRU tile-result cache (measured per-tile
    read-outs keyed by activation pattern); ``0`` disables it. The cache is
    also disabled when the ADC models noise, because noisy conversions must
    be re-sampled on every read-out.

    ``executor`` (optional, any :class:`repro.funcsim.runtime.ExecutorBase`)
    shards every ``matmul`` across tile-rows and batch chunks on the given
    backend; without one the kernel runs inline, reproducing the historical
    single-core behaviour bit-for-bit.

    ``nonideality`` (optional :class:`repro.nonideal.NonidealitySpec` or
    pipeline) injects device faults at *programming* time: every tile's
    mapped conductances are perturbed by the coordinate-keyed pipeline in
    :meth:`prepare`, before the layer program is built — so the perturbed
    tiles travel inside the program across thread and process boundaries
    and every executor backend computes on bit-identical hardware state.

    ``backend`` selects the array backend of the compiled fused kernel
    (``"numpy"`` default, ``"numba"``/``"torch"`` when installed; see
    :mod:`repro.funcsim.runtime.backends`). The interpreter sentinels
    ``"interp"``/``"interpreted"``/``"off"`` disable the compile pass and
    run the reference kernel; either way the results are bit-identical,
    and the choice never enters cache keys or spec digests.
    """

    def __init__(self, xbar_config: CrossbarConfig,
                 sim_config: FuncSimConfig, tile_factory,
                 tile_cache_size: int = 256, executor=None,
                 nonideality=None, backend=None):
        tile_factory.check_crossbar(xbar_config)
        self.xbar_config = xbar_config
        self.sim_config = sim_config
        self.tile_factory = tile_factory
        self.name = tile_factory.name
        self.executor = executor
        self.array_backend = resolve_backend(backend)
        # None for clean engines (identity pipelines normalise to None,
        # keeping the clean path's prepared-matrix tokens byte-identical).
        self.nonideality = as_pipeline(nonideality)
        if tile_cache_size > 0 and sim_config.adc_noise_lsb == 0.0:
            self.tile_cache = TileResultCache(tile_cache_size)
        else:
            self.tile_cache = None
        # DAC / conductance LSBs of the digital <-> analog mapping.
        self._v_lsb = xbar_config.v_supply_v / (2 ** sim_config.stream_bits - 1)
        n_g_levels = 2 ** sim_config.slice_bits
        self._g_lsb = ((xbar_config.g_on_s - xbar_config.g_off_s)
                       / (n_g_levels - 1)) if n_g_levels > 1 else \
            (xbar_config.g_on_s - xbar_config.g_off_s)
        self.adc = AdcModel.aligned(sim_config.adc_bits,
                                    self._v_lsb * self._g_lsb,
                                    headroom=sim_config.adc_headroom,
                                    offset_lsb=sim_config.adc_offset_lsb,
                                    noise_lsb=sim_config.adc_noise_lsb,
                                    seed=sim_config.adc_seed)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        """Compile a ``(K, M)`` weight matrix: quantise, sign-split, slice
        and tile it, program one tile model per (sign, slice, tile), and
        lower the result into an executable layer program."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        cfg, xcfg = self.sim_config, self.xbar_config
        qw = cfg.weight_format.quantize_to_int(weights)
        parts = sign_split(qw)
        sign_present = tuple(k for k, part in enumerate(parts)
                             if np.any(part) or k == 0)
        t_r = n_tiles(weights.shape[0], xcfg.rows)
        t_c = n_tiles(weights.shape[1], xcfg.cols)
        n_levels = 2 ** cfg.slice_bits

        # Distinct prepared matrices map onto physically distinct crossbar
        # arrays, so their fault draws must be independent: the stream key
        # leads with a content digest of the quantised weights (stable
        # across processes, like the prepared-matrix uid) — two layers of
        # a converted DNN never share a stuck-cell mask just because they
        # share tile coordinates, while re-preparing the same weights
        # anywhere reproduces the same faults bit-for-bit.
        weights_stream_key = None
        if self.nonideality is not None:
            weights_stream_key = int(
                content_key("", np.ascontiguousarray(qw), length=15), 16)
        models = {}
        for sign in sign_present:
            slices = split_unsigned(parts[sign],
                                    cfg.weight_format.magnitude_bits,
                                    cfg.slice_bits)
            for k in range(cfg.n_slices):
                tiles = tile_matrix(slices[k], xcfg.rows, xcfg.cols)
                for tr in range(t_r):
                    for tc in range(t_c):
                        g = conductances_from_levels(tiles[tr, tc], n_levels,
                                                     xcfg)
                        if self.nonideality is not None:
                            # Device faults strike the *programmed* matrix;
                            # the coordinate key makes the draw a property
                            # of the (layer, tile), not of programming
                            # order or schedule.
                            g = self.nonideality.perturb(
                                g, (weights_stream_key, sign, k, tr, tc),
                                xcfg.g_off_s, xcfg.g_on_s)
                        models[(sign, k, tr, tc)] = self.tile_factory.build(g)
        token = f"{self.tile_factory.cache_token()}|{xcfg!r}|{cfg!r}"
        if self.nonideality is not None:
            # Fold the fault composition into the prepared-matrix uid so a
            # perturbed layer can never share tile-result cache entries or
            # runtime layer programs with a clean (or differently-faulty)
            # preparation of the same weights. Clean engines keep the
            # historical token byte-for-byte.
            token = f"{token}|{self.nonideality.digest()}"
        prepared = PreparedMatrix(
            weights.shape[0], weights.shape[1], qw, models, t_r, t_c,
            sign_present, token=token)
        prepared.program = plan_layer(self, prepared)
        if self.array_backend is not None:
            prepared.program.compile_requested = True
            prepared.program.compiled = compile_program(prepared.program,
                                                        self.array_backend)
        return prepared

    # ------------------------------------------------------------------
    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        """Quantised crossbar product of ``x (B, K)`` with prepared weights.

        With an executor attached the call is sharded across the runtime
        backend; otherwise the shard kernel runs inline over the full batch
        (one shard per tile-row, sequential ADC), which is bit-identical to
        per-stream sequential execution for a noiseless ADC — with ADC
        noise the seeded samples are drawn in stacked-batch order, so noisy
        runs are statistically, not bitwise, equivalent to per-stream
        execution while remaining reproducible run-to-run.
        """
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        program = prepared.program
        if program is None:
            raise ConfigError(
                "prepared matrix has no layer program; it was not prepared "
                "by a CrossbarMvmEngine")
        if self.executor is not None:
            self.executor.add_layer(prepared.uid, program)
            return self.executor.matmul(prepared.uid, x, stats=self.stats)
        # The spans observe wall time only — no RNG, no numeric state —
        # so traced and untraced runs are bit-identical.
        with span("engine-compute"):
            plan = program.plan
            qx = quantize_input(plan, x)
            x_signs = active_signs(qx)
            counts = new_stat_counts()
            counts["matmuls"] = 1
            acc = plan.sim_config.accumulator_format
            out_value = np.zeros((qx.shape[0], plan.out_width))
            fused = contextlib.nullcontext() if program.compiled is None \
                else span("fused-execute", layer=plan.uid,
                          backend=program.compiled.backend_name)
            with fused:
                for tr in range(plan.t_r):
                    tr_counts = run_tile_row(program, qx, x_signs, tr,
                                             self.adc,
                                             cache=self.tile_cache,
                                             stats=counts)
                    # Tile-row partial sums accumulate through the
                    # fixed-point accumulator register (paper: 32-bit, 24
                    # fractional).
                    out_value = acc.quantize(out_value
                                             + tr_counts * plan.value_lsb)
            self.stats.merge(counts)
            return out_value[:, :prepared.n_out]

    def close(self, wait: bool = True) -> None:
        """Release the attached executor's workers (if any).

        The executor keeps serving matmuls inline afterwards, so closing
        a live engine degrades it to single-core rather than breaking it.
        """
        if self.executor is not None:
            self.executor.close(wait=wait)


def make_engine(kind: str, xbar_config: CrossbarConfig,
                sim_config: FuncSimConfig,
                emulator: GeniexEmulator | None = None,
                tile_cache_size: int = 256,
                batch_invariant: bool = False,
                executor=None, workers: int | None = None,
                nonideality=None, backend=None):
    """Engine factory: ``ideal | exact | geniex | analytical | decoupled |
    circuit`` (the :data:`ENGINE_KINDS` tuple).

    ``ideal`` bypasses the analog pipeline (exact fixed-point product);
    ``exact`` runs the full bit-sliced pipeline with ideality-oracle tiles,
    isolating the digital error sources from crossbar non-idealities.

    ``batch_invariant=True`` routes tile matmuls through the einsum kernel
    so each output row is bitwise independent of the batch it shares (the
    serving layer needs this; see :mod:`repro.utils.numerics`). Supported
    for ``geniex``, ``exact`` and ``analytical``; ``ideal`` is inherently
    invariant (exact integer arithmetic); the iterative ``decoupled`` and
    ``circuit`` models are not, and reject the flag. Invariance also
    requires a deterministic, zero-preserving ADC: the engine skips
    all-zero stream blocks *per batch*, which only equals per-row
    execution when ``measure(0) == 0``, so converter offset or noise is
    rejected too.

    ``executor`` selects the runtime backend (``"serial"``, ``"threads"``,
    ``"process"`` or an :class:`repro.funcsim.runtime.ExecutorBase`
    instance) and ``workers`` its parallelism; ``workers > 1`` alone
    defaults to the process backend. Without either, the engine runs
    single-core exactly as before.

    ``nonideality`` (a :class:`repro.nonideal.NonidealitySpec` or
    pipeline; identity normalises to "none") injects device faults into
    every tile at programming time — see :mod:`repro.nonideal`. Rejected
    for ``ideal``: that engine is the *digital* fixed-point reference
    with no analog crossbar state to perturb, and silently returning
    clean results for a faulty spec would misreport every robustness
    sweep built on it.

    ``backend`` picks the fused-kernel array backend (``None`` resolves
    through ``$REPRO_BACKEND`` to ``"numpy"``; ``"interp"`` forces the
    interpreted reference kernel) — purely a performance knob, outputs
    are bit-identical either way. Ignored for ``ideal``.
    """
    nonideality = as_pipeline(nonideality)
    if kind == "ideal":
        if nonideality is not None:
            raise ConfigError(
                "the ideal engine is the digital fixed-point reference "
                "and has no programmed conductances to perturb; drop the "
                "nonideality node or pick an analog engine kind")
        # Digital exact integer math: nothing to shard. executor/workers
        # are ignored (convert_to_mvm leaves ideal layers detached too).
        return IdealMvmEngine(sim_config)
    if batch_invariant and (sim_config.adc_offset_lsb != 0.0
                            or sim_config.adc_noise_lsb != 0.0):
        raise ConfigError(
            "batch-invariant execution requires a deterministic, "
            "zero-preserving ADC (adc_offset_lsb == adc_noise_lsb == 0); "
            "zero-drive stream blocks are skipped per batch and would "
            "otherwise measure differently depending on batch composition")
    if kind == "geniex":
        if emulator is None:
            raise ConfigError("geniex engine requires a trained emulator")
        factory = GeniexTileFactory(emulator, batch_invariant=batch_invariant)
    elif kind == "exact":
        factory = ExactTileFactory(xbar_config,
                                   batch_invariant=batch_invariant)
    elif kind == "analytical":
        factory = AnalyticalTileFactory(xbar_config,
                                        batch_invariant=batch_invariant)
    elif kind in ("decoupled", "circuit"):
        # The only kinds that *reject* the flag: they are not in
        # INVARIANT_KINDS and, unlike "ideal" (exact integer math,
        # invariant with or without the flag), cannot honour it.
        if batch_invariant:
            raise ConfigError(
                f"batch-invariant execution is not supported for the "
                f"iterative {kind!r} tile model")
        factory = DecoupledTileFactory(xbar_config) if kind == "decoupled" \
            else CircuitTileFactory(xbar_config)
    else:
        raise ConfigError(
            f"unknown engine kind {kind!r}; expected one of "
            f"{', '.join(ENGINE_KINDS)}")
    # Resolve the executor last: validation errors above must not leave
    # an orphaned worker pool behind.
    if executor is None and workers is not None and workers > 1:
        executor = "process"
    if executor is not None:
        executor = make_executor(executor, workers=workers)
    return CrossbarMvmEngine(xbar_config, sim_config, factory,
                             tile_cache_size=tile_cache_size,
                             executor=executor, nonideality=nonideality,
                             backend=backend)
