"""MVM engines: the bit-sliced crossbar pipeline with pluggable tile models.

``CrossbarMvmEngine.matmul`` reproduces the paper's execution model. For each
tile-row the quantised activations are sign-split and streamed
``stream_bits`` at a time as DAC voltages; every (weight-sign, slice, tile)
crossbar returns analog bit-line currents from its *tile model*; the ADC
digitises them; the digital back-end removes the ``g_off`` mapping bias,
merges streams/slices with shift-and-add and accumulates tile partial sums
in the fixed-point accumulator.

Tile models:

* :class:`GeniexTileFactory` — GENIEx emulation (default non-ideal mode),
  with the conductance term of the hidden layer precomputed per tile and the
  voltage term shared across all tiles in a tile-row.
* :class:`AnalyticalTileFactory` — exact linear parasitic model (one sparse
  LU per tile, reused across all streams).
* :class:`DecoupledTileFactory` — cheap first-order IR-drop model.
* :class:`CircuitTileFactory` — full non-linear circuit solve (slow; used
  to validate the emulator in tests).

:class:`IdealMvmEngine` bypasses the analog pipeline entirely and computes
the exact fixed-point product ("Ideal FxP" in the paper's figures).
"""

from __future__ import annotations

import numpy as np

from repro.analytical.fast_model import DecoupledIrDropModel
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.emulator import GeniexEmulator
from repro.errors import ConfigError, ShapeError
from repro.funcsim.adc import AdcModel
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.slicing import sign_split, split_unsigned
from repro.funcsim.tiles import n_tiles, pad_axis, tile_matrix
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.xbar.mapping import conductances_from_levels

from scipy.sparse.linalg import splu


# ----------------------------------------------------------------------
# Tile models
# ----------------------------------------------------------------------
class ExactTileFactory:
    """Ideality oracle: tiles compute the exact analog dot product.

    Running the full bit-sliced pipeline with this factory isolates the
    *digital* error sources (activation/weight quantisation, ADC resolution,
    accumulator width) from crossbar non-idealities, and doubles as the
    correctness oracle for the decode path: with a sufficiently fine ADC the
    engine must reproduce :class:`IdealMvmEngine` exactly (tested).
    """

    name = "exact"

    def __init__(self, config: CrossbarConfig):
        self.config = config

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        g = np.asarray(conductance_s, dtype=float)

        class _Tile:
            def currents(self, voltages_v, cache=None):
                return ideal_mvm(voltages_v, g)

        return _Tile()


class GeniexTileFactory:
    """Builds GENIEx-backed tile models for one trained emulator."""

    name = "geniex"

    def __init__(self, emulator: GeniexEmulator):
        self.emulator = emulator
        w1v, _, _ = emulator.model.first_layer_views()
        self._w1v_t = np.ascontiguousarray(w1v.T)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if (self.emulator.rows, self.emulator.cols) != config.shape:
            raise ConfigError(
                f"emulator was trained for "
                f"{self.emulator.rows}x{self.emulator.cols} crossbars, "
                f"engine uses {config.rows}x{config.cols}")

    def prepare_voltages(self, voltages_v: np.ndarray):
        """Hidden-layer voltage term, shared by every tile in a tile-row."""
        v_norm = self.emulator.normalizer.normalize_v(voltages_v)
        return v_norm @ self._w1v_t

    def build(self, conductance_s: np.ndarray) -> "GeniexTileModel":
        return GeniexTileModel(self, conductance_s)


class GeniexTileModel:
    """Per-tile GENIEx forward pass with the G term folded in."""

    def __init__(self, factory: GeniexTileFactory, conductance_s: np.ndarray):
        self._factory = factory
        emulator = factory.emulator
        _, w1g, b1 = emulator.model.first_layer_views()
        g_norm = emulator.normalizer.normalize_g(conductance_s).reshape(-1)
        self._hidden_bias = (g_norm @ w1g.T + b1).astype(np.float32)
        self.conductance_s = conductance_s

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        factory = self._factory
        if cache is None:
            cache = factory.prepare_voltages(voltages_v)
        hidden = cache + self._hidden_bias
        fr_norm = factory.emulator.model.forward_hidden(hidden)
        fr = factory.emulator.normalizer.denormalize_fr(fr_norm)
        i_ideal = ideal_mvm(voltages_v, self.conductance_s)
        return i_ideal / fr


class AnalyticalTileFactory:
    """Exact linear parasitic model, reduced to a transfer matrix per tile.

    The parasitic network is linear, so programming a tile amounts to one
    sparse solve of ``rows`` unit-voltage problems; afterwards every
    readout is a dense ``V @ T`` matmul — the CxDNN "matrix inversion"
    formulation, and the reason the analytical engine keeps up with GENIEx
    on throughput.
    """

    name = "analytical"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self._solver = LinearCrossbarSolver(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray) -> "AnalyticalTileModel":
        return AnalyticalTileModel(
            self._solver.transfer_matrix(conductance_s))


class AnalyticalTileModel:
    def __init__(self, transfer: np.ndarray):
        self._transfer = transfer

    def currents(self, voltages_v: np.ndarray, cache=None) -> np.ndarray:
        return np.atleast_2d(voltages_v) @ self._transfer


class DecoupledTileFactory:
    """First-order IR-drop approximation (ablation model)."""

    name = "decoupled"

    def __init__(self, config: CrossbarConfig, n_sweeps: int = 2):
        self.config = config
        self._model = DecoupledIrDropModel(config, n_sweeps=n_sweeps)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        model = self._model
        g = np.asarray(conductance_s, dtype=float)

        class _Tile:
            def currents(self, voltages_v, cache=None):
                return model.predict_currents(voltages_v, g)

        return _Tile()


class CircuitTileFactory:
    """Full non-linear circuit solve per operating point (slow, exact)."""

    name = "circuit"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self._simulator = CrossbarCircuitSimulator(config)

    def check_crossbar(self, config: CrossbarConfig) -> None:
        if config.shape != self.config.shape:
            raise ConfigError("tile factory / engine crossbar shape mismatch")

    def prepare_voltages(self, voltages_v: np.ndarray):
        return None

    def build(self, conductance_s: np.ndarray):
        simulator = self._simulator
        g = np.asarray(conductance_s, dtype=float)

        class _Tile:
            def currents(self, voltages_v, cache=None):
                return simulator.solve_batch(voltages_v, g, mode="full")

        return _Tile()


# ----------------------------------------------------------------------
# Prepared weights
# ----------------------------------------------------------------------
class PreparedMatrix:
    """Weight matrix quantised, sliced, tiled and programmed into models."""

    def __init__(self, n_in: int, n_out: int, qw: np.ndarray, models: dict,
                 t_r: int, t_c: int, sign_present: tuple):
        self.n_in = n_in
        self.n_out = n_out
        self.qw = qw
        self.models = models  # (sign, slice, tr, tc) -> tile model
        self.t_r = t_r
        self.t_c = t_c
        self.sign_present = sign_present


class EngineStats:
    """Cumulative event counters of a :class:`CrossbarMvmEngine`.

    ``readouts`` counts actual analog tile evaluations; zero-valued stream
    blocks are skipped (they drive no current) and tallied separately, so
    ``readouts + skipped`` equals the static worst case of
    :func:`repro.funcsim.cost.matmul_cost` scaled by the batch.
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.matmuls = 0
        self.readouts = 0
        self.skipped_zero_streams = 0
        self.adc_conversions = 0

    def __repr__(self):
        return (f"EngineStats(matmuls={self.matmuls}, "
                f"readouts={self.readouts}, "
                f"skipped={self.skipped_zero_streams}, "
                f"adc={self.adc_conversions})")


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class IdealMvmEngine:
    """Exact fixed-point matmul — the paper's "Ideal FxP" reference.

    Activations and weights are quantised to their fixed-point formats, the
    integer product is computed exactly, and the result passes once through
    the accumulator format.
    """

    name = "ideal"

    def __init__(self, sim_config: FuncSimConfig):
        self.sim_config = sim_config

    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        qw = self.sim_config.weight_format.quantize_to_int(weights)
        return PreparedMatrix(weights.shape[0], weights.shape[1], qw, {},
                              0, 0, (1,))

    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        cfg = self.sim_config
        qx = cfg.activation_format.quantize_to_int(x)
        counts = qx.astype(np.float64) @ prepared.qw.astype(np.float64)
        value = counts * (cfg.activation_format.resolution *
                          cfg.weight_format.resolution)
        return cfg.accumulator_format.quantize(value)


class CrossbarMvmEngine:
    """Bit-sliced, tiled crossbar MVM with a non-ideal tile model."""

    def __init__(self, xbar_config: CrossbarConfig,
                 sim_config: FuncSimConfig, tile_factory):
        tile_factory.check_crossbar(xbar_config)
        self.xbar_config = xbar_config
        self.sim_config = sim_config
        self.tile_factory = tile_factory
        self.name = tile_factory.name
        # DAC / conductance LSBs of the digital <-> analog mapping.
        self._v_lsb = xbar_config.v_supply_v / (2 ** sim_config.stream_bits - 1)
        n_g_levels = 2 ** sim_config.slice_bits
        self._g_lsb = ((xbar_config.g_on_s - xbar_config.g_off_s)
                       / (n_g_levels - 1)) if n_g_levels > 1 else \
            (xbar_config.g_on_s - xbar_config.g_off_s)
        self.adc = AdcModel.aligned(sim_config.adc_bits,
                                    self._v_lsb * self._g_lsb,
                                    headroom=sim_config.adc_headroom,
                                    offset_lsb=sim_config.adc_offset_lsb,
                                    noise_lsb=sim_config.adc_noise_lsb,
                                    seed=sim_config.adc_seed)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def prepare(self, weights: np.ndarray) -> PreparedMatrix:
        """Quantise, sign-split, slice and tile a ``(K, M)`` weight matrix,
        programming one tile model per (sign, slice, tile)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"expected (K, M) weights, got {weights.shape}")
        cfg, xcfg = self.sim_config, self.xbar_config
        qw = cfg.weight_format.quantize_to_int(weights)
        parts = sign_split(qw)
        sign_present = tuple(k for k, part in enumerate(parts)
                             if np.any(part) or k == 0)
        t_r = n_tiles(weights.shape[0], xcfg.rows)
        t_c = n_tiles(weights.shape[1], xcfg.cols)
        n_levels = 2 ** cfg.slice_bits

        models = {}
        for sign in sign_present:
            slices = split_unsigned(parts[sign],
                                    cfg.weight_format.magnitude_bits,
                                    cfg.slice_bits)
            for k in range(cfg.n_slices):
                tiles = tile_matrix(slices[k], xcfg.rows, xcfg.cols)
                for tr in range(t_r):
                    for tc in range(t_c):
                        g = conductances_from_levels(tiles[tr, tc], n_levels,
                                                     xcfg)
                        models[(sign, k, tr, tc)] = self.tile_factory.build(g)
        return PreparedMatrix(weights.shape[0], weights.shape[1], qw, models,
                              t_r, t_c, sign_present)

    # ------------------------------------------------------------------
    def matmul(self, x: np.ndarray, prepared) -> np.ndarray:
        """Quantised crossbar product of ``x (B, K)`` with prepared weights."""
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != prepared.n_in:
            raise ShapeError(
                f"input features {x.shape[1]} != weight rows {prepared.n_in}")
        cfg, xcfg = self.sim_config, self.xbar_config
        batch = x.shape[0]
        rows, cols = xcfg.rows, xcfg.cols
        t_r, t_c = prepared.t_r, prepared.t_c

        qx = cfg.activation_format.quantize_to_int(x)
        qx = pad_axis(qx, 1, rows)
        x_parts = sign_split(qx)
        x_signs = [k for k, part in enumerate(x_parts) if np.any(part)]
        if not x_signs:
            x_signs = [0]
        streams = {
            sx: split_unsigned(x_parts[sx],
                               cfg.activation_format.magnitude_bits,
                               cfg.stream_bits)
            for sx in x_signs
        }

        value_lsb = (cfg.activation_format.resolution *
                     cfg.weight_format.resolution)
        acc = cfg.accumulator_format
        bias_factor = xcfg.g_off_s / self._g_lsb
        decode = 1.0 / (self._v_lsb * self._g_lsb)

        self.stats.matmuls += 1
        per_stream_models = len(prepared.sign_present) * cfg.n_slices * t_c
        out_value = np.zeros((batch, t_c * cols))
        for tr in range(t_r):
            row_block = slice(tr * rows, (tr + 1) * rows)
            tr_counts = np.zeros((batch, t_c * cols))
            for sx in x_signs:
                sx_factor = 1.0 if sx == 0 else -1.0
                for m in range(cfg.n_streams):
                    levels = streams[sx][m][:, row_block]
                    if not levels.any():
                        # Zero drive => exactly zero currents.
                        self.stats.skipped_zero_streams += per_stream_models
                        continue
                    voltages = levels * self._v_lsb
                    cache = self.tile_factory.prepare_voltages(voltages)
                    stream_sum = levels.sum(axis=1)[:, None]
                    stream_scale = float(2 ** (m * cfg.stream_bits))
                    for sw in prepared.sign_present:
                        sw_factor = 1.0 if sw == 0 else -1.0
                        for k in range(cfg.n_slices):
                            slice_scale = float(2 ** (k * cfg.slice_bits))
                            for tc in range(t_c):
                                model = prepared.models[(sw, k, tr, tc)]
                                i_raw = model.currents(voltages, cache)
                                i_meas = self.adc.measure(i_raw)
                                self.stats.readouts += 1
                                self.stats.adc_conversions += i_meas.size
                                counts = i_meas * decode \
                                    - bias_factor * stream_sum
                                tr_counts[:, tc * cols:(tc + 1) * cols] += (
                                    sx_factor * sw_factor * stream_scale
                                    * slice_scale * counts)
            # Tile-row partial sums accumulate through the fixed-point
            # accumulator register (paper: 32-bit, 24 fractional).
            out_value = acc.quantize(out_value + tr_counts * value_lsb)
        return out_value[:, :prepared.n_out]


def make_engine(kind: str, xbar_config: CrossbarConfig,
                sim_config: FuncSimConfig,
                emulator: GeniexEmulator | None = None):
    """Engine factory: ``ideal | geniex | analytical | decoupled | circuit``."""
    if kind == "ideal":
        return IdealMvmEngine(sim_config)
    if kind == "geniex":
        if emulator is None:
            raise ConfigError("geniex engine requires a trained emulator")
        factory = GeniexTileFactory(emulator)
    elif kind == "exact":
        factory = ExactTileFactory(xbar_config)
    elif kind == "analytical":
        factory = AnalyticalTileFactory(xbar_config)
    elif kind == "decoupled":
        factory = DecoupledTileFactory(xbar_config)
    elif kind == "circuit":
        factory = CircuitTileFactory(xbar_config)
    else:
        raise ConfigError(
            f"unknown engine kind {kind!r}; expected ideal, exact, geniex, "
            f"analytical, decoupled or circuit")
    return CrossbarMvmEngine(xbar_config, sim_config, factory)
