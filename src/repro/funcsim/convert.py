"""Model conversion: swap dense/conv layers for their crossbar versions.

``convert_to_mvm`` deep-copies a trained model and replaces every
:class:`~repro.nn.Linear` with :class:`LinearMVM` and every
:class:`~repro.nn.Conv2d` with :class:`Conv2dMVM`, leaving activations,
normalisation and pooling untouched — exactly the ``Model.py ->
Model-mvm.py`` step in the paper's Fig. 6. The converted model is
inference-only.
"""

from __future__ import annotations

import copy

from repro.nn.modules import Conv2d, Linear, Module
from repro.funcsim.layers import Conv2dMVM, LinearMVM


def _replace_layers(module: Module, engine, chunk_rows: int | None) -> None:
    for name, child in list(module._modules.items()):
        if isinstance(child, Linear):
            setattr(module, name, LinearMVM.from_linear(child, engine))
        elif isinstance(child, Conv2d):
            kwargs = {} if chunk_rows is None else \
                {"chunk_rows": chunk_rows}
            setattr(module, name, Conv2dMVM.from_conv(child, engine,
                                                      **kwargs))
        else:
            _replace_layers(child, engine, chunk_rows)


def convert_to_mvm(model: Module, engine,
                   chunk_rows: int | None = None) -> Module:
    """Return an MVM copy of ``model`` running on ``engine``.

    The original model is untouched. The copy is put in eval mode; running
    statistics of normalisation layers are preserved by the deep copy.
    """
    converted = copy.deepcopy(model)
    _replace_layers(converted, engine, chunk_rows)
    converted.eval()
    return converted
