"""Model conversion: swap dense/conv layers for their crossbar versions.

``convert_to_mvm`` deep-copies a trained model and replaces every
:class:`~repro.nn.Linear` with :class:`LinearMVM` and every
:class:`~repro.nn.Conv2d` with :class:`Conv2dMVM`, leaving activations,
normalisation and pooling untouched — exactly the ``Model.py ->
Model-mvm.py`` step in the paper's Fig. 6. The converted model is
inference-only.

Conversion is also the network-level *compile* step of the runtime: every
replaced layer's weights are prepared (programmed into tile models and
lowered to a :class:`~repro.funcsim.planner.LayerProgram`) exactly once,
and with ``executor=...`` the per-layer programs are aggregated into one
:class:`~repro.funcsim.planner.NetworkProgram`, loaded into the executor
in a single call (one process-pool initialisation for the whole network)
and every MVM layer dispatches through the sharded backend. The executor
is exposed as ``converted.mvm_executor``; call ``close()`` on it (or on
the model via :func:`close_mvm_executor`) to release worker pools.

Fault injection composes transparently: an engine built with a
``nonideality`` spec (see :mod:`repro.nonideal`) perturbs every layer's
tiles during this compile step, so the resulting network programs carry
the faulty crossbar state to every backend — whole-DNN inference under
device faults is just ``convert_to_mvm(model, faulty_engine)``.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.errors import ConfigError
from repro.funcsim.layers import Conv2dMVM, LinearMVM
from repro.funcsim.planner import NetworkProgram
from repro.nn.modules import Conv2d, Linear, Module


def _replace_layers(module: Module, engine, chunk_rows: int | None) -> None:
    for name, child in list(module._modules.items()):
        if isinstance(child, Linear):
            setattr(module, name, LinearMVM.from_linear(child, engine))
        elif isinstance(child, Conv2d):
            kwargs = {} if chunk_rows is None else \
                {"chunk_rows": chunk_rows}
            setattr(module, name, Conv2dMVM.from_conv(child, engine,
                                                      **kwargs))
        else:
            _replace_layers(child, engine, chunk_rows)


def mvm_layers(model: Module) -> list:
    """Every :class:`LinearMVM` / :class:`Conv2dMVM` in forward order."""
    return [m for m in model.modules()
            if isinstance(m, (LinearMVM, Conv2dMVM))]


def compile_network(model: Module) -> NetworkProgram:
    """Aggregate the compiled programs of a converted model's MVM layers.

    Layers programmed from identical weights on the same engine share a
    program entry (content-digest layer ids), which is value-exact.
    """
    network = NetworkProgram()
    for layer in mvm_layers(model):
        if layer.prepared.program is not None:
            network.add(layer.prepared.uid, layer.prepared.program)
    return network


def close_mvm_executor(model: Module) -> None:
    """Release the worker pool of a model converted with ``executor=...``."""
    executor = getattr(model, "mvm_executor", None)
    if executor is not None:
        executor.close()


def _sync_module(converted: Module, source: Module, path: str) -> None:
    for name, src_child in source._modules.items():
        child_path = f"{path}.{name}" if path else name
        mvm_child = converted._modules.get(name)
        if mvm_child is None:
            raise ConfigError(
                f"converted model has no module at {child_path!r}")
        if isinstance(src_child, Linear):
            if not isinstance(mvm_child, LinearMVM):
                raise ConfigError(
                    f"{child_path!r} is Linear in the source but "
                    f"{type(mvm_child).__name__} in the converted model")
            if mvm_child.executor is not None:
                raise ConfigError(
                    f"{child_path!r} is attached to an executor; its loaded "
                    f"program would go stale — sync only inline models")
            weight = np.asarray(src_child.weight.data, dtype=np.float64)
            mvm_child.prepared = mvm_child.engine.prepare(weight.T)
            mvm_child.bias = None if src_child.bias is None else np.asarray(
                src_child.bias.data, dtype=np.float64)
        elif isinstance(src_child, Conv2d):
            if not isinstance(mvm_child, Conv2dMVM):
                raise ConfigError(
                    f"{child_path!r} is Conv2d in the source but "
                    f"{type(mvm_child).__name__} in the converted model")
            if mvm_child.executor is not None:
                raise ConfigError(
                    f"{child_path!r} is attached to an executor; its loaded "
                    f"program would go stale — sync only inline models")
            weight = np.asarray(src_child.weight.data, dtype=np.float64)
            mvm_child.prepared = mvm_child.engine.prepare(
                weight.reshape(mvm_child.out_channels, -1).T)
            mvm_child.bias = None if src_child.bias is None else np.asarray(
                src_child.bias.data, dtype=np.float64)
        else:
            for pname, param in src_child._parameters.items():
                target = mvm_child._parameters.get(pname)
                if target is None or target.data.shape != param.data.shape:
                    raise ConfigError(
                        f"converted model has no matching parameter "
                        f"{child_path}.{pname}")
                target.data[...] = param.data
            for bname, buf in src_child._buffers.items():
                target = mvm_child._buffers.get(bname)
                if target is None or target.shape != buf.shape:
                    raise ConfigError(
                        f"converted model has no matching buffer "
                        f"{child_path}.{bname}")
                target[...] = buf
            _sync_module(mvm_child, src_child, child_path)


def sync_mvm_model(converted: Module, source: Module) -> None:
    """Re-program a converted model from ``source``'s live weights.

    ``converted`` must come from ``convert_to_mvm(source_like, engine)``
    with the same module structure as ``source``. Every MVM layer is
    re-prepared on its engine from the source layer's current weights
    (biases re-taken digitally); parameters and buffers of all other
    modules are copied in place. This is the hardware-in-the-loop
    training primitive: mutate the float model, sync, and the next
    forward pass through ``converted`` sees the new weights through the
    full (possibly faulty) crossbar physics.

    Engines prepare deterministically (fault injection included — the
    non-ideality pipeline keys its draws by matrix content, not call
    order), so syncing is safe to repeat and value-stable. Layers
    attached to a runtime executor are rejected: their compiled programs
    are already loaded into the backend and would silently go stale.
    """
    _sync_module(converted, source, "")


def convert_to_mvm(model: Module, engine, chunk_rows: int | None = None,
                   executor=None, workers: int | None = None) -> Module:
    """Return an MVM copy of ``model`` running on ``engine``.

    The original model is untouched. The copy is put in eval mode; running
    statistics of normalisation layers are preserved by the deep copy.

    ``executor`` routes every converted layer through a runtime backend:
    a spec string (``"serial"`` / ``"threads"`` / ``"process"``), an
    :class:`repro.funcsim.runtime.ExecutorBase` instance, or ``None`` for
    the engine's inline path. ``workers`` sets the backend parallelism;
    given alone (``workers > 1``) it selects the process backend. The whole
    network is compiled and loaded into the executor before the first
    forward pass.
    """
    converted = copy.deepcopy(model)
    _replace_layers(converted, engine, chunk_rows)
    converted.eval()
    if executor is None and workers is not None and workers > 1:
        executor = "process"
    if executor is not None:
        from repro.funcsim.runtime import make_executor

        executor = make_executor(executor, workers=workers)
        executor.load_program(compile_network(converted))
        for layer in mvm_layers(converted):
            if layer.prepared.program is not None:
                layer.attach_executor(executor)
        object.__setattr__(converted, "mvm_executor", executor)
    return converted
