"""Model conversion: swap dense/conv layers for their crossbar versions.

``convert_to_mvm`` deep-copies a trained model and replaces every
:class:`~repro.nn.Linear` with :class:`LinearMVM` and every
:class:`~repro.nn.Conv2d` with :class:`Conv2dMVM`, leaving activations,
normalisation and pooling untouched — exactly the ``Model.py ->
Model-mvm.py`` step in the paper's Fig. 6. The converted model is
inference-only.

Conversion is also the network-level *compile* step of the runtime: every
replaced layer's weights are prepared (programmed into tile models and
lowered to a :class:`~repro.funcsim.planner.LayerProgram`) exactly once,
and with ``executor=...`` the per-layer programs are aggregated into one
:class:`~repro.funcsim.planner.NetworkProgram`, loaded into the executor
in a single call (one process-pool initialisation for the whole network)
and every MVM layer dispatches through the sharded backend. The executor
is exposed as ``converted.mvm_executor``; call ``close()`` on it (or on
the model via :func:`close_mvm_executor`) to release worker pools.

Fault injection composes transparently: an engine built with a
``nonideality`` spec (see :mod:`repro.nonideal`) perturbs every layer's
tiles during this compile step, so the resulting network programs carry
the faulty crossbar state to every backend — whole-DNN inference under
device faults is just ``convert_to_mvm(model, faulty_engine)``.
"""

from __future__ import annotations

import copy

from repro.funcsim.layers import Conv2dMVM, LinearMVM
from repro.funcsim.planner import NetworkProgram
from repro.nn.modules import Conv2d, Linear, Module


def _replace_layers(module: Module, engine, chunk_rows: int | None) -> None:
    for name, child in list(module._modules.items()):
        if isinstance(child, Linear):
            setattr(module, name, LinearMVM.from_linear(child, engine))
        elif isinstance(child, Conv2d):
            kwargs = {} if chunk_rows is None else \
                {"chunk_rows": chunk_rows}
            setattr(module, name, Conv2dMVM.from_conv(child, engine,
                                                      **kwargs))
        else:
            _replace_layers(child, engine, chunk_rows)


def mvm_layers(model: Module) -> list:
    """Every :class:`LinearMVM` / :class:`Conv2dMVM` in forward order."""
    return [m for m in model.modules()
            if isinstance(m, (LinearMVM, Conv2dMVM))]


def compile_network(model: Module) -> NetworkProgram:
    """Aggregate the compiled programs of a converted model's MVM layers.

    Layers programmed from identical weights on the same engine share a
    program entry (content-digest layer ids), which is value-exact.
    """
    network = NetworkProgram()
    for layer in mvm_layers(model):
        if layer.prepared.program is not None:
            network.add(layer.prepared.uid, layer.prepared.program)
    return network


def close_mvm_executor(model: Module) -> None:
    """Release the worker pool of a model converted with ``executor=...``."""
    executor = getattr(model, "mvm_executor", None)
    if executor is not None:
        executor.close()


def convert_to_mvm(model: Module, engine, chunk_rows: int | None = None,
                   executor=None, workers: int | None = None) -> Module:
    """Return an MVM copy of ``model`` running on ``engine``.

    The original model is untouched. The copy is put in eval mode; running
    statistics of normalisation layers are preserved by the deep copy.

    ``executor`` routes every converted layer through a runtime backend:
    a spec string (``"serial"`` / ``"threads"`` / ``"process"``), an
    :class:`repro.funcsim.runtime.ExecutorBase` instance, or ``None`` for
    the engine's inline path. ``workers`` sets the backend parallelism;
    given alone (``workers > 1``) it selects the process backend. The whole
    network is compiled and loaded into the executor before the first
    forward pass.
    """
    converted = copy.deepcopy(model)
    _replace_layers(converted, engine, chunk_rows)
    converted.eval()
    if executor is None and workers is not None and workers > 1:
        executor = "process"
    if executor is not None:
        from repro.funcsim.runtime import make_executor

        executor = make_executor(executor, workers=workers)
        executor.load_program(compile_network(converted))
        for layer in mvm_layers(converted):
            if layer.prepared.program is not None:
                layer.attach_executor(executor)
        object.__setattr__(converted, "mvm_executor", executor)
    return converted
