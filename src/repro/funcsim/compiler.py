"""Compile pass: lower a layer program into a fused tile-row kernel.

The interpreted kernel (:func:`repro.funcsim.runtime.kernel.
execute_tile_row`) walks a Python-level (weight-sign x slice x stream x
tile-column) quadruple loop per shard, issuing one tile-model call and one
ADC conversion per model. For the closed-form tile kinds — ``geniex``,
``exact`` and ``analytical``, whose models of one tile-row all share
geometry — :func:`compile_program` precomputes everything that loop
re-derives per call and lowers the shard into three fused stages:

1. **Stacked read-out** — the per-model operands of a tile-row are
   concatenated along columns at compile time (``(rows, M * cols)``; for
   geniex, the hidden-bias rows are stacked to ``(M, hidden)``), so all
   ``M = signs x slices x t_c`` tile models of a stream stack are read
   out by *one* BLAS call and digitised by *one* ADC pass, instead of
   ``M`` of each (the geniex NN forwards stay per-model: sgemm row
   blocks are not bitwise stable under row-count changes, see
   :meth:`CompiledLayer._model_frs`). Stacking must not change a
   single bit, so :func:`compile_program` *probes* it: the stacked
   read-out is checked bitwise against the per-model calls on a
   deterministic voltage batch at several row counts, and a layer whose
   BLAS build breaks the equality simply stays interpreted.
2. **Vectorized decode** — the sign factors, ``2**(m * stream_bits)``
   stream scales and ``2**(k * slice_bits)`` slice scales are precomputed
   as dense prefactor arrays (products of signed powers of two: exact in
   float64) and applied to the whole measured tensor at once.
3. **Ordered accumulation** — the decode terms collapse through the
   pluggable backend ops, which preserve the interpreted kernel's
   (stream, sign, slice) addition order per output element; a pairwise
   ``np.sum`` reduction would regroup the floating-point adds and drift
   in the last ulp.

Two execution forms implement those stages. The *fast* form
(:meth:`CompiledLayer._execute_fast`) keeps the measurement in the
read-out's natural ``(streams * batch, M * cols)`` memory layout end to
end: the ADC transfer runs as five in-place element-wise passes, the
decode bias is subtracted in place, and the shift-and-add collapse is a
single :meth:`~repro.funcsim.runtime.backends.NumpyBackend.
decode_contract` contraction — no transposes, no temporaries beyond the
measurement itself. It covers deterministic ADCs when the tile-result
cache is off or the engine is batch-invariant (where a re-computed
read-out is bitwise equal to a cached one, so cache hits only need to be
*counted* and the cache traffic is replayed key-for-key). The *general*
form (:meth:`CompiledLayer._measure` / :meth:`CompiledLayer._decode`)
additionally handles ADC noise draws and partial cache hits on
non-invariant engines, at the cost of model-major staging copies.

Bit-identity contract: the compiled path produces *bit-identical* outputs
to the interpreted kernel — same zero-stream skips, same tile-result
cache keys and hits, same ADC noise draw order (model-major, matching the
interpreted per-model sequence), same statistics. This holds for every
engine kind, executor backend, worker count and faulty
(:class:`~repro.nonideal.NonidealitySpec`) preparation; the equivalence
suite (``tests/funcsim/test_compiled.py``) asserts it. The interpreted
kernel therefore remains the reference implementation and the transparent
fallback for unfusible tile kinds (``decoupled``/``circuit``) and for
shards whose stacked working set would exceed :data:`the memory guard
<DEFAULT_MAX_FUSED_BYTES>`.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.funcsim.planner import LayerProgram
from repro.funcsim.runtime.kernel import gather_streams
from repro.obs import span

#: Tile-factory kinds whose models share closed-form geometry and can be
#: stacked into fused read-outs. The iterative ``decoupled``/``circuit``
#: models fall back to the interpreted kernel.
FUSIBLE_KINDS = ("geniex", "exact", "analytical")

#: Stacked-measurement budget per shard, in bytes (the ``(M, S * batch,
#: cols)`` measured tensor; the fused working set is a small multiple of
#: it). Shards above the budget run through the interpreted kernel
#: instead — counted as ``fallback_calls`` — so compiling can never blow
#: up peak memory. Override with ``$REPRO_MAX_FUSED_BYTES``.
DEFAULT_MAX_FUSED_BYTES = 1 << 28


def _max_fused_bytes() -> int:
    value = os.environ.get("REPRO_MAX_FUSED_BYTES")
    return int(value) if value else DEFAULT_MAX_FUSED_BYTES


def _cat_columns(stack: np.ndarray) -> np.ndarray:
    """``(M, rows, cols)`` model stack -> ``(rows, M * cols)`` operand."""
    m, rows, cols = stack.shape
    return np.ascontiguousarray(stack.transpose(1, 0, 2)).reshape(
        rows, m * cols)


class CompiledLayer:
    """Fused execution form of one layer program (picklable).

    Holds the per-tile-row stacked operands and the precomputed decode
    prefactors; the array backend is resolved lazily by name (and dropped
    on pickling), so compiled programs ship to process-pool workers like
    any other program state.
    """

    def __init__(self, kind: str, backend_name: str, batch_invariant: bool,
                 model_coords: list, n_sw: int, n_k: int, t_c: int,
                 row_stacks: dict, stream_scales: np.ndarray,
                 sw_slice: np.ndarray, max_fused_bytes: int):
        self.kind = kind
        self.backend_name = backend_name
        self.batch_invariant = batch_invariant
        #: ``(sign, slice, tc)`` per stacked model, in the interpreted
        #: kernel's model-major iteration order — the decode reshape and
        #: the ADC noise draw order both rely on it.
        self.model_coords = model_coords
        self.n_sw = n_sw
        self.n_k = n_k
        self.t_c = t_c
        self.row_stacks = row_stacks
        self.stream_scales = stream_scales
        #: ``(n_sw, n_k)`` outer product of weight-sign factors and
        #: ``2**(k * slice_bits)`` slice scales (exact in float64).
        self.sw_slice = sw_slice
        self.max_fused_bytes = max_fused_bytes
        #: Smallest stacked-voltage row count the fused read-out is
        #: validated for (set by the compile-time probe; shards below it
        #: fall back to the interpreted kernel).
        self.min_fused_rows = 1
        #: Verdicts of the runtime stacked-NN-forward check, keyed by
        #: ``(n_rows, n_models)`` shape class (see :meth:`_friction`).
        self._nn_stack_ok: dict = {}
        self._backend = None
        #: Per-thread scratch buffers (:meth:`_workspace`). The layer is
        #: shared across thread-pool workers, so the pool is
        #: thread-local; buffers never escape a shard call.
        self._ws_local = threading.local()

    @property
    def backend(self):
        if self._backend is None:
            from repro.funcsim.runtime.backends import get_backend
            self._backend = get_backend(self.backend_name)
        return self._backend

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_backend"] = None  # re-resolved by name in the worker
        del state["_ws_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._ws_local = threading.local()

    def _workspace(self, name: str, shape: tuple,
                   dtype=np.float64) -> np.ndarray:
        """Reusable per-thread scratch array of the given shape class.

        The fast path's large temporaries (stacked voltages, the flat
        measurement, the NN hidden batch) are multi-megabyte and freed
        at every shard, which keeps the allocator releasing and
        re-faulting pages; recycling them costs nothing in values —
        every user fills its buffer completely before reading it.
        """
        pool = getattr(self._ws_local, "buffers", None)
        if pool is None:
            pool = self._ws_local.buffers = {}
        key = (name, shape, np.dtype(dtype).char)
        buf = pool.get(key)
        if buf is None:
            buf = pool[key] = np.empty(shape, dtype)
        return buf

    # ------------------------------------------------------------------
    # Fused read-out
    # ------------------------------------------------------------------
    def _currents(self, program: LayerProgram, tr: int, model_idx,
                  voltages: np.ndarray, shared) -> np.ndarray:
        """Stacked currents ``(M, n, cols)`` of (a subset of) the models.

        ``model_idx=None`` reads out every model of the tile-row;
        otherwise a list of stacked-model indices (cache-miss groups).
        Column-concatenated BLAS products are bitwise equal per column
        block to the per-model products, so the fused read-out matches
        the interpreted kernel's per-model calls exactly.
        """
        plan = program.plan
        cols = plan.cols
        stacks = self.row_stacks[tr]
        g_cat = stacks["g_cat"]
        if model_idx is not None:
            sel = (np.asarray(model_idx)[:, None] * cols
                   + np.arange(cols)).ravel()
            g_cat = g_cat[:, sel]
        n_models = g_cat.shape[1] // cols
        n_rows = voltages.shape[0]
        backend = self.backend
        product = backend.invariant_matmul if self.batch_invariant \
            else backend.matmul
        i_ideal = product(voltages, g_cat) \
            .reshape(n_rows, n_models, cols).transpose(1, 0, 2)
        if self.kind != "geniex":
            return i_ideal
        bias = stacks["bias"]
        if model_idx is not None:
            bias = bias[model_idx]
        fr = self._friction(program, bias, shared)
        return i_ideal / fr

    def _friction(self, program: LayerProgram, bias: np.ndarray,
                  shared: np.ndarray) -> np.ndarray:
        """Geniex non-ideality factors ``(M, n, cols)``.

        The hidden-layer bias add and the ``denormalize_fr`` rescale are
        element-wise, so batching them over the model axis is trivially
        bitwise equal to the interpreted kernel's per-model ops. The NN
        *forward* is not: BLAS sgemm results for a row block are not
        bitwise stable under changes of the total row count (observed at
        odd counts on this host), so a ``(M * n, hidden)`` stacked
        forward can diverge from the per-model forwards in the last
        float32 ulp. The first call of each ``(n, M)`` shape class
        therefore runs *both* and compares bitwise — kernel dispatch is
        value-independent, so the verdict transfers to every later call
        of the class — and only validated classes keep the one-call
        stacked forward; others run the per-model forwards, matching the
        interpreted kernel call for call.
        """
        emu = program.tile_factory.emulator
        nn_matmul = self.backend.invariant_matmul \
            if self.batch_invariant else None
        n_models = bias.shape[0]
        n_rows = shared.shape[0]
        hidden = np.add(shared[None, :, :], bias[:, None, :],
                        out=self._workspace(
                            "hidden", (n_models, n_rows, bias.shape[1]),
                            shared.dtype))
        key = (n_rows, n_models)
        stack_ok = self._nn_stack_ok.get(key)
        if stack_ok is not False:
            fr_norm = emu.model.forward_hidden(
                hidden.reshape(n_models * n_rows, bias.shape[1]),
                matmul=nn_matmul)
            # In-place denormalize: same clip -> scale -> shift chain as
            # Normalizer.denormalize_fr, element for element, without
            # its three temporaries (the float32 -> float64 widening of
            # the convert-assign is exact).
            norm = emu.normalizer
            fr_stacked = self._workspace("fr", fr_norm.shape)
            fr_stacked[...] = fr_norm
            np.clip(fr_stacked, 0.0, 1.0, out=fr_stacked)
            np.multiply(fr_stacked, norm.fr_max - norm.fr_min,
                        out=fr_stacked)
            np.add(fr_stacked, norm.fr_min, out=fr_stacked)
            fr_stacked = fr_stacked.reshape(n_models, n_rows, -1)
            if stack_ok:
                return fr_stacked
        fr_models = [emu.normalizer.denormalize_fr(
            emu.model.forward_hidden(hidden[mi], matmul=nn_matmul))
            for mi in range(n_models)]
        if stack_ok is None:
            stack_ok = all(np.array_equal(fr_stacked[mi], fr_models[mi])
                           for mi in range(n_models))
            self._nn_stack_ok[key] = stack_ok
            if stack_ok:
                return fr_stacked
        return np.stack(fr_models)

    def _currents_flat(self, program: LayerProgram, tr: int,
                       voltages: np.ndarray, shared) -> np.ndarray:
        """Stacked currents in the natural ``(n, M * cols)`` layout.

        Same read-out as :meth:`_currents` — identical products, and for
        geniex an element-for-element identical division (applied in
        place through a strided view) — but without the model-major
        ``reshape``/``transpose`` staging copy. The flat layout is what
        the ADC and decode stages of :meth:`_execute_fast` consume
        directly.
        """
        plan = program.plan
        stacks = self.row_stacks[tr]
        backend = self.backend
        product = backend.invariant_matmul if self.batch_invariant \
            else backend.matmul
        g_cat = stacks["g_cat"]
        i_flat = product(voltages, g_cat, out=self._workspace(
            "i_flat", (voltages.shape[0], g_cat.shape[1])))
        if self.kind != "geniex":
            return i_flat
        bias = stacks["bias"]
        fr = self._friction(program, bias, shared)
        i3 = i_flat.reshape(voltages.shape[0], bias.shape[0], plan.cols)
        np.divide(i3, fr.transpose(1, 0, 2), out=i3)
        return i_flat

    def _execute_fast(self, program: LayerProgram, tr: int,
                      stream_levels: list, stream_info: list, batch: int,
                      adc, cache, stats) -> np.ndarray:
        """Fused shard execution in the natural measurement layout.

        Valid for deterministic ADCs with the cache off or the engine
        batch-invariant (see the dispatch in
        :func:`execute_tile_row_fused`). Every floating-point operation
        matches the interpreted kernel's element for element: the ADC
        transfer is the same ``+offset / lsb -> rint -> clip -> *lsb``
        chain (integer codes kept in float64, exact below ``2**53``),
        the decode bias subtraction broadcasts the same two operands,
        and :meth:`~repro.funcsim.runtime.backends.NumpyBackend.
        decode_contract` accumulates the (stream, sign, slice) terms in
        the reference addition order.
        """
        plan = program.plan
        cols = plan.cols
        s_count = len(stream_levels)
        # Per-stream scaled fill of the stacked voltage batch — bitwise
        # the concatenate-then-scale of the interpreted kernel, without
        # materialising the intermediate integer concatenation.
        voltages = self._workspace("voltages",
                                   (s_count * batch, plan.rows))
        for s, levels in enumerate(stream_levels):
            np.multiply(levels, plan.v_lsb,
                        out=voltages[s * batch:(s + 1) * batch])
        shared = program.tile_factory.prepare_voltages(voltages)
        i_flat = self._currents_flat(program, tr, voltages, shared)
        # In-place ADC transfer: i_flat becomes the measured currents.
        if adc.offset_a:
            np.add(i_flat, adc.offset_a, out=i_flat)
        np.divide(i_flat, adc.lsb_a, out=i_flat)
        np.rint(i_flat, out=i_flat)
        np.clip(i_flat, 0, adc.n_codes - 1, out=i_flat)
        np.multiply(i_flat, adc.lsb_a, out=i_flat)
        # Zero-copy six-axis view: (stream, batch, sign, slice, tc, cols).
        meas6 = i_flat.reshape(s_count, batch, self.n_sw, self.n_k,
                               self.t_c, cols)
        if cache is not None:
            self._replay_cache(plan, tr, meas6, stream_levels, batch,
                               cache, stats)
        np.multiply(i_flat, plan.decode, out=i_flat)
        sums = np.stack([levels.sum(axis=1) for levels in stream_levels])
        np.subtract(meas6, (plan.bias_factor * sums)
                    [:, :, None, None, None, None], out=meas6)
        s_scale = np.array([(1.0 if sx == 0 else -1.0)
                            * self.stream_scales[m] for sx, m in stream_info])
        prefac = s_scale[:, None, None] * self.sw_slice[None, :, :]
        out = self.backend.decode_contract(meas6, prefac)
        return np.ascontiguousarray(out).reshape(batch, self.t_c * cols)

    def _replay_cache(self, plan, tr: int, meas6: np.ndarray,
                      stream_levels: list, batch: int, cache,
                      stats) -> None:
        """Replay the interpreted kernel's cache traffic key-for-key.

        Batch-invariant mode only: a re-computed read-out is bitwise
        equal to its cached copy, so hits are counted without reading
        the cached value back, and misses store the freshly measured
        block. Gets run before puts per model, models in the interpreted
        kernel's (sign, slice, tile-column) order, streams ascending —
        the exact op sequence the interpreted kernel issues — so the
        cache's LRU state stays identical across the two kernels.
        """
        s_count = len(stream_levels)
        level_bytes = [levels.tobytes() for levels in stream_levels]
        for wi, sw in enumerate(plan.sign_present):
            for k in range(self.n_k):
                for tc in range(self.t_c):
                    keys = [(plan.uid, sw, k, tr, tc, batch,
                             level_bytes[s]) for s in range(s_count)]
                    missing = []
                    for s in range(s_count):
                        if cache.get(keys[s]) is None:
                            missing.append(s)
                        else:
                            stats["cache_hits"] += 1
                    for s in missing:
                        # Unconditional copy: the measurement buffer is
                        # mutated by the decode stage (and recycled), so
                        # a cached view would corrupt later interpreted
                        # reads of the entry.
                        cache.put(keys[s], meas6[s, :, wi, k, tc, :].copy())

    def _measure(self, program: LayerProgram, tr: int, stream_levels: list,
                 batch: int, adc, cache, stats) -> np.ndarray:
        """Measured tensor ``(M, S, batch, cols)``, cache-aware.

        Without a cache, one stacked read-out and one ADC pass cover the
        whole tile-row; the model-major layout reproduces the interpreted
        kernel's per-model ADC noise draw order. With a cache, lookups
        use the interpreted kernel's exact keys, and the models missing
        the same stream subset are grouped into one stacked read-out per
        miss pattern.
        """
        plan = program.plan
        cols = plan.cols
        coords = self.model_coords
        n_models = len(coords)
        s_count = len(stream_levels)
        if cache is None:
            voltages = np.concatenate(stream_levels, axis=0) * plan.v_lsb
            shared = program.tile_factory.prepare_voltages(voltages)
            raw = self._currents(program, tr, None, voltages, shared)
            return adc.measure(raw).reshape(n_models, s_count, batch, cols)
        level_bytes = [levels.tobytes() for levels in stream_levels]
        keys = [[(plan.uid, sw, k, tr, tc, batch, level_bytes[s])
                 for s in range(s_count)] for sw, k, tc in coords]
        measured = np.empty((n_models, s_count, batch, cols))
        miss_groups: dict = {}
        for mi in range(n_models):
            missing = []
            for s in range(s_count):
                hit = cache.get(keys[mi][s])
                if hit is None:
                    missing.append(s)
                else:
                    measured[mi, s] = hit
                    stats["cache_hits"] += 1
            if missing:
                miss_groups.setdefault(tuple(missing), []).append(mi)
        if miss_groups:
            voltages = np.concatenate(stream_levels, axis=0) * plan.v_lsb
            shared = program.tile_factory.prepare_voltages(voltages)
            base_rows = np.arange(batch)
            for missing, model_idx in miss_groups.items():
                if len(missing) == s_count:
                    v_sub, c_sub = voltages, shared
                else:
                    sel = (np.asarray(missing)[:, None] * batch
                           + base_rows).ravel()
                    v_sub = voltages[sel]
                    c_sub = shared[sel] \
                        if isinstance(shared, np.ndarray) else shared
                raw = self._currents(program, tr, model_idx, v_sub, c_sub)
                i_meas = adc.measure(raw).reshape(
                    len(model_idx), len(missing), batch, cols)
                for gi, mi in enumerate(model_idx):
                    for si, s in enumerate(missing):
                        block = i_meas[gi, si]
                        measured[mi, s] = block
                        # Copy out of the stacked measurement so a cache
                        # entry never pins the whole block.
                        cache.put(keys[mi][s], block.copy())
        return measured

    # ------------------------------------------------------------------
    # Fused decode
    # ------------------------------------------------------------------
    def _decode(self, plan, measured: np.ndarray, stream_levels: list,
                stream_info: list, batch: int) -> np.ndarray:
        cols = plan.cols
        s_count = len(stream_info)
        stacked = measured.reshape(self.n_sw, self.n_k, self.t_c, s_count,
                                   batch, cols).transpose(3, 0, 1, 2, 4, 5)
        # Per-stream sign x shift factors; products of signed powers of
        # two are exact, so the folded prefactor multiply is bitwise
        # equal to the interpreted kernel's chain of scalar multiplies.
        s_scale = np.array([(1.0 if sx == 0 else -1.0)
                            * self.stream_scales[m] for sx, m in stream_info])
        prefac = s_scale[:, None, None] * self.sw_slice[None, :, :]
        sums = np.stack([levels.sum(axis=1) for levels in stream_levels])
        terms = stacked * plan.decode
        terms -= (plan.bias_factor * sums)[:, None, None, None, :, None]
        terms *= prefac[:, :, :, None, None, None]
        flat = terms.reshape(s_count * self.n_sw * self.n_k, self.t_c,
                             batch, cols)
        out = np.zeros((batch, self.t_c, cols))
        self.backend.decode_accumulate(flat, out)
        return out.reshape(batch, self.t_c * cols)


#: Stacked-voltage row counts checked by the compile-time probe. The
#: small counts straddle BLAS's gemv/small-kernel dispatch region, where
#: column concatenation is most likely to change kernel choice; the
#: larger ones cover the blocked-gemm regime real shards run in.
_PROBE_FUSED_ROWS = (1, 2, 7, 33, 256)


def _probe_stacked_readout(compiled: CompiledLayer,
                           program: LayerProgram) -> int | None:
    """Bitwise check of the stacked read-out against per-model calls.

    Runs the compiled tile-row read-out of ``tr = 0`` on a deterministic
    quantised voltage batch at each :data:`_PROBE_FUSED_ROWS` count and
    compares every model's column block against that model's own
    interpreted call — end to end, including the geniex NN forward.
    Reduction order inside the kernels is value-independent, so a
    passing probe transfers to real operands of the same geometry (and
    all tile-rows share it).

    Returns the smallest validated stacked-row count: ``1`` when every
    count matches, ``2`` when only single-row stacking diverges (shards
    that small fall back to the interpreted kernel), or ``None`` when
    multi-row stacking breaks bit-identity — the program then stays
    interpreted entirely.
    """
    plan = program.plan
    cfg = plan.sim_config
    rng = np.random.default_rng(
        [29, plan.rows, plan.cols, len(compiled.model_coords)])
    min_rows = 1
    for n in _PROBE_FUSED_ROWS:
        levels = rng.integers(0, 2 ** cfg.stream_bits,
                              size=(n, plan.rows)).astype(np.float64)
        voltages = levels * plan.v_lsb
        shared = program.tile_factory.prepare_voltages(voltages)
        stacked = compiled._currents(program, 0, None, voltages, shared)
        ok = all(np.array_equal(
            stacked[mi], np.asarray(
                program.models[(sw, k, 0, tc)].currents(voltages, shared)))
            for mi, (sw, k, tc) in enumerate(compiled.model_coords))
        if not ok:
            if n == 1:
                min_rows = 2
            else:
                return None
    return min_rows


def compile_program(program: LayerProgram, backend) -> CompiledLayer | None:
    """Lower a layer program into its fused form (``None`` if unfusible).

    Stacks every tile-row's model operands into dense arrays,
    precomputes the decode prefactors and probes the stacked read-out
    for bit-identity (:func:`_probe_stacked_readout`); emits a
    ``kernel-compile`` obs span. Unfusible tile kinds (anything outside
    :data:`FUSIBLE_KINDS`) and programs failing the probe return
    ``None`` and keep executing through the interpreted kernel.
    """
    kind = getattr(program.tile_factory, "name", None)
    if kind not in FUSIBLE_KINDS:
        return None
    plan = program.plan
    cfg = plan.sim_config
    with span("kernel-compile", layer=plan.uid, kind=kind,
              backend=backend.name):
        coords = [(sw, k, tc) for sw in plan.sign_present
                  for k in range(cfg.n_slices) for tc in range(plan.t_c)]
        row_stacks = {}
        for tr in range(plan.t_r):
            models = [program.models[(sw, k, tr, tc)]
                      for sw, k, tc in coords]
            if kind == "analytical":
                stack = np.stack([m._transfer for m in models])
            else:
                stack = np.stack([np.asarray(m.conductance_s, dtype=float)
                                  for m in models])
            stacks = {"g_cat": _cat_columns(stack)}
            if kind == "geniex":
                stacks["bias"] = np.stack([m._hidden_bias for m in models])
            row_stacks[tr] = stacks
        sw_factors = np.array([1.0 if sw == 0 else -1.0
                               for sw in plan.sign_present])
        slice_scales = np.array([float(2 ** (k * cfg.slice_bits))
                                 for k in range(cfg.n_slices)])
        stream_scales = np.array([float(2 ** (m * cfg.stream_bits))
                                  for m in range(cfg.n_streams)])
        compiled = CompiledLayer(
            kind=kind, backend_name=backend.name,
            batch_invariant=bool(getattr(program.tile_factory,
                                         "batch_invariant", False)),
            model_coords=coords, n_sw=len(plan.sign_present),
            n_k=cfg.n_slices, t_c=plan.t_c, row_stacks=row_stacks,
            stream_scales=stream_scales,
            sw_slice=np.outer(sw_factors, slice_scales),
            max_fused_bytes=_max_fused_bytes())
        compiled._backend = backend
        min_rows = _probe_stacked_readout(compiled, program)
        if min_rows is None:
            return None
        compiled.min_fused_rows = min_rows
        return compiled


def execute_tile_row_fused(program: LayerProgram, qx: np.ndarray,
                           x_signs: list, tr: int, adc, cache=None,
                           stats=None) -> np.ndarray | None:
    """Fused counterpart of :func:`~repro.funcsim.runtime.kernel.
    execute_tile_row`: bit-identical outputs, counters and cache traffic.

    Returns ``None`` (caller falls back to the interpreted kernel) when
    the shard's stacked working set would exceed the compiled layer's
    memory guard, or when its stacked voltage batch is below the row
    count the compile-time probe validated.
    """
    compiled = program.compiled
    plan = program.plan
    batch = qx.shape[0]
    stream_levels, stream_info = gather_streams(plan, qx, x_signs, tr, stats)
    if not stream_levels:
        return np.zeros((batch, plan.out_width))
    n_models = len(compiled.model_coords)
    s_count = len(stream_levels)
    if n_models * s_count * batch * plan.cols * 8 > compiled.max_fused_bytes:
        return None
    if s_count * batch < compiled.min_fused_rows:
        return None
    stats["readouts"] += n_models * s_count
    stats["adc_conversions"] += n_models * s_count * batch * plan.cols
    if plan.adc_noise_rms_a == 0.0 and (cache is None
                                        or compiled.batch_invariant):
        return compiled._execute_fast(program, tr, stream_levels,
                                      stream_info, batch, adc, cache, stats)
    measured = compiled._measure(program, tr, stream_levels, batch, adc,
                                 cache, stats)
    return compiled._decode(plan, measured, stream_levels, stream_info,
                            batch)
