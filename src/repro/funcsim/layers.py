"""Crossbar-mapped layers: ``linear-mvm`` and ``conv2d-mvm``.

These are inference-only drop-in replacements for :class:`repro.nn.Linear`
and :class:`repro.nn.Conv2d` whose matrix products run through an MVM engine
(paper Fig. 6: ``Model.py -> Model-mvm.py``). Weights are prepared (quantised
/ sliced / tiled / programmed) once at construction; biases are added
digitally in float, as the peripheral digital logic would.

Both layers can additionally be *attached* to a runtime executor
(:meth:`MvmLayerMixin.attach_executor` — :func:`repro.funcsim.convert_to_mvm`
does this for a whole network): the layer's compiled program is registered
under its layer id and every forward pass dispatches through the executor's
sharded backend instead of the engine's inline path. Detached layers behave
exactly as before.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.functional import _pair
from repro.nn.imops import conv2d_output_shape, im2col
from repro.nn.modules import Conv2d, Linear, Module
from repro.nn.tensor import Tensor

DEFAULT_CHUNK_ROWS = 8192


class MvmLayerMixin:
    """Executor dispatch shared by the MVM layers."""

    executor = None
    layer_id: str | None = None

    def attach_executor(self, executor, layer_id: str | None = None) -> None:
        """Route this layer's matmuls through a runtime executor.

        Registers the layer's compiled program under ``layer_id`` (default:
        the prepared matrix uid — layers programmed from identical weights
        on the same engine share one program, which is value-exact).
        Passing ``None`` detaches the layer.
        """
        if executor is None:
            object.__setattr__(self, "executor", None)
            object.__setattr__(self, "layer_id", None)
            return
        if self.prepared.program is None:
            raise ConfigError(
                f"{type(self).__name__} has no layer program (ideal "
                f"engines run digitally and need no executor)")
        layer_id = layer_id or self.prepared.uid
        executor.add_layer(layer_id, self.prepared.program)
        object.__setattr__(self, "executor", executor)
        object.__setattr__(self, "layer_id", layer_id)

    def _engine_matmul(self, data: np.ndarray) -> np.ndarray:
        if self.executor is not None:
            return self.executor.matmul(self.layer_id, data,
                                        stats=self.engine.stats)
        return self.engine.matmul(data, self.prepared)


class LinearMVM(MvmLayerMixin, Module):
    """Dense layer executed as tiled, bit-sliced crossbar MVMs."""

    def __init__(self, engine, weight: np.ndarray, bias: np.ndarray | None):
        super().__init__()
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ShapeError(f"weight must be (out, in), got {weight.shape}")
        self.engine = engine
        self.out_features, self.in_features = weight.shape
        # Engine consumes (K, M) = (in, out).
        self.prepared = engine.prepare(weight.T)
        self.bias = None if bias is None else np.asarray(bias,
                                                         dtype=np.float64)

    @classmethod
    def from_linear(cls, layer: Linear, engine) -> "LinearMVM":
        bias = None if layer.bias is None else layer.bias.data
        return cls(engine, layer.weight.data, bias)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        out = self._engine_matmul(data)
        if self.bias is not None:
            out = out + self.bias
        return Tensor(out.astype(np.float32))

    def __repr__(self):
        return (f"LinearMVM(in={self.in_features}, out={self.out_features}, "
                f"engine={self.engine.name})")


class Conv2dMVM(MvmLayerMixin, Module):
    """Convolution executed as iterative MVMs over im2col patches."""

    def __init__(self, engine, weight: np.ndarray,
                 bias: np.ndarray | None, stride=1, padding=0,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS):
        super().__init__()
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4:
            raise ShapeError(
                f"weight must be (c_out, c_in, kh, kw), got {weight.shape}")
        self.engine = engine
        self.out_channels, self.in_channels, kh, kw = weight.shape
        self.kernel_size = (kh, kw)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.chunk_rows = int(chunk_rows)
        # (K, M) = (c_in * kh * kw, c_out): every output pixel is one MVM.
        self.prepared = engine.prepare(weight.reshape(self.out_channels, -1).T)
        self.bias = None if bias is None else np.asarray(bias,
                                                         dtype=np.float64)

    @classmethod
    def from_conv(cls, layer: Conv2d, engine,
                  chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "Conv2dMVM":
        bias = None if layer.bias is None else layer.bias.data
        return cls(engine, layer.weight.data, bias, stride=layer.stride,
                   padding=layer.padding, chunk_rows=chunk_rows)

    def forward(self, x: Tensor) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        if data.ndim != 4:
            raise ShapeError(f"expected (B, C, H, W), got shape {data.shape}")
        batch, _, h, w = data.shape
        out_h, out_w = conv2d_output_shape(h, w, self.kernel_size,
                                           self.stride, self.padding)
        cols = im2col(data.astype(np.float64), self.kernel_size, self.stride,
                      self.padding)
        out = np.empty((cols.shape[0], self.out_channels))
        for start in range(0, cols.shape[0], self.chunk_rows):
            block = cols[start:start + self.chunk_rows]
            out[start:start + block.shape[0]] = self._engine_matmul(block)
        if self.bias is not None:
            out = out + self.bias
        out = out.reshape(batch, out_h, out_w,
                          self.out_channels).transpose(0, 3, 1, 2)
        return Tensor(np.ascontiguousarray(out, dtype=np.float32))

    def __repr__(self):
        return (f"Conv2dMVM({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}, engine={self.engine.name})")
