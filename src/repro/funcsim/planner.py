"""Planner: lower a prepared layer into a static, picklable tile program.

The functional simulator is split into a *compile* phase and an *execute*
phase. Compilation happens once per weight matrix — quantise, sign-split,
slice, tile, program every (sign, slice, tile) crossbar model — and is
summarised by a :class:`LayerProgram`:

* :class:`LayerPlan` — the static schedule and decode constants of the
  layer: tile grid, present weight signs, DAC/conductance LSBs, the
  ``g_off`` bias-removal factor, shift-and-add scales, accumulator format
  and the ADC transfer parameters, plus worst-case cost metadata from
  :mod:`repro.funcsim.cost`. Plans are plain frozen dataclasses: hashable
  state only, fully picklable.
* the **tile models** programmed from the weight slices, and the shared
  :class:`tile factory <repro.funcsim.engine.GeniexTileFactory>` whose
  ``prepare_voltages`` hook computes terms shared by a whole tile-row.

Execution consumes programs through :mod:`repro.funcsim.runtime`: the
kernel (:mod:`repro.funcsim.runtime.kernel`) evaluates one (tile-row,
batch-chunk) shard at a time, and the executors schedule shards serially,
across threads, or across worker processes. Because a program is picklable
it can be shipped to worker processes once and executed there repeatedly —
the RxNN-style "compile the crossbar model into the network" step that
makes whole-DNN non-ideal inference scale.

``NetworkProgram`` aggregates the per-layer programs of a converted model
so an executor can load the entire network in one call (one process-pool
initialisation, shared across every layer's matmuls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.funcsim.config import FuncSimConfig
from repro.funcsim.cost import CostReport, matmul_cost

#: Mask applied to seed components fed to ``np.random.default_rng``.
_SEED_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class LayerPlan:
    """Static execution schedule of one prepared weight matrix.

    Everything the execution kernel needs apart from the tile models
    themselves: geometry, decode constants and the ADC transfer function.
    ``uid`` is the content digest of the prepared matrix (stable across
    processes — see :class:`repro.funcsim.engine.PreparedMatrix`).
    """

    uid: str
    n_in: int
    n_out: int
    rows: int
    cols: int
    t_r: int
    t_c: int
    sign_present: tuple
    sim_config: FuncSimConfig
    # Digital <-> analog mapping constants.
    v_lsb: float
    g_lsb: float
    bias_factor: float
    decode: float
    value_lsb: float
    # ADC transfer parameters (mirrors the engine's AdcModel).
    adc_bits: int
    adc_lsb_a: float
    adc_offset_a: float
    adc_noise_rms_a: float
    adc_seed: int
    # Worst-case architectural cost of one MVM through this layer.
    cost: CostReport = field(compare=False, default=None)

    @property
    def uid_seed(self) -> int:
        """Integer form of ``uid`` used to key per-shard noise streams."""
        return int(self.uid[:15], 16) & _SEED_MASK

    @property
    def out_width(self) -> int:
        """Padded output width (``t_c * cols``) of the decode stage."""
        return self.t_c * self.cols

    def noise_seed(self, seq: int, tr: int, chunk: int) -> list:
        """Deterministic ADC-noise seed for one (matmul, tile-row, chunk).

        Keyed by tile coordinates and the per-layer matmul sequence number,
        never by shard *assignment*, so noisy runs reproduce bit-exactly at
        any worker count and with any backend.
        """
        return [int(self.adc_seed) & _SEED_MASK, self.uid_seed,
                int(seq) & _SEED_MASK, int(tr), int(chunk)]


@dataclass
class LayerProgram:
    """A compiled layer: static plan + programmed tile models.

    ``models`` maps ``(sign, slice, tile_row, tile_col)`` to the tile model
    programmed from that weight slice; ``tile_factory`` provides the
    per-tile-row shared voltage term. ``tile_cache_size`` carries the
    engine's tile-result LRU budget so every execution context (engine,
    executor, worker process) sizes its cache identically.

    ``compiled`` holds the program's fused execution form (a
    :class:`~repro.funcsim.compiler.CompiledLayer`, built by the engine's
    compile pass) when the tile kind is fusible; ``compile_requested``
    records that compilation was asked for, so the kernel dispatcher can
    count interpreter fallbacks separately from interpreter-only runs.
    """

    plan: LayerPlan
    models: dict
    tile_factory: object
    tile_cache_size: int = 0
    compiled: object = None
    compile_requested: bool = False

    @property
    def cacheable(self) -> bool:
        """Tile read-outs may be memoised (deterministic ADC only)."""
        return self.tile_cache_size > 0 and self.plan.adc_noise_rms_a == 0.0


class NetworkProgram:
    """Ordered collection of layer programs for one converted network."""

    def __init__(self):
        self._layers: dict = {}

    def add(self, layer_id: str, program: LayerProgram) -> None:
        self._layers[layer_id] = program

    def get(self, layer_id: str) -> LayerProgram | None:
        return self._layers.get(layer_id)

    def items(self):
        return self._layers.items()

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, layer_id) -> bool:
        return layer_id in self._layers

    def total_cost(self) -> CostReport:
        """Aggregate worst-case cost of one MVM through every layer."""
        total = CostReport(0, 0, 0, 0, 0)
        for program in self._layers.values():
            if program.plan.cost is not None:
                total = total + program.plan.cost
        return total


def plan_layer(engine, prepared) -> LayerProgram:
    """Lower ``(engine, prepared)`` into a self-contained layer program.

    The plan snapshots every decode constant the engine derived from its
    crossbar and simulator configs, so executing the program needs neither
    the engine nor (for worker processes) the parent's memory.
    """
    cfg = engine.sim_config
    xcfg = engine.xbar_config
    adc = engine.adc
    cache = engine.tile_cache
    plan = LayerPlan(
        uid=prepared.uid,
        n_in=prepared.n_in,
        n_out=prepared.n_out,
        rows=xcfg.rows,
        cols=xcfg.cols,
        t_r=prepared.t_r,
        t_c=prepared.t_c,
        sign_present=tuple(prepared.sign_present),
        sim_config=cfg,
        v_lsb=engine._v_lsb,
        g_lsb=engine._g_lsb,
        bias_factor=xcfg.g_off_s / engine._g_lsb,
        decode=1.0 / (engine._v_lsb * engine._g_lsb),
        value_lsb=(cfg.activation_format.resolution
                   * cfg.weight_format.resolution),
        adc_bits=adc.bits,
        adc_lsb_a=adc.lsb_a,
        adc_offset_a=adc.offset_a,
        adc_noise_rms_a=adc.noise_rms_a,
        adc_seed=cfg.adc_seed,
        cost=matmul_cost(prepared.n_in, prepared.n_out, xcfg, cfg,
                         signed_inputs=True,
                         signed_weights=len(prepared.sign_present) > 1),
    )
    return LayerProgram(plan=plan, models=prepared.models,
                        tile_factory=engine.tile_factory,
                        tile_cache_size=cache.max_entries
                        if cache is not None else 0)
