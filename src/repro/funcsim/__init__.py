"""Functional simulator: DNN inference on (non-ideal) crossbar hardware.

Reproduces the paper's Section 5 architecture model. A convolution or dense
layer executes in three phases:

1. **Iterative MVM** — convolutions become repeated matrix-vector products
   over im2col patch matrices.
2. **Tiling** — the quantised weight matrix is split into crossbar-sized
   tiles; tiles in a row share input slices, tiles in a column produce
   partial sums.
3. **Bit-slicing** — activations are streamed ``stream_bits`` at a time
   through the DACs and weights are split into ``slice_bits`` conductance
   slices; ADC outputs are merged with shift-and-add and accumulated in
   fixed point.

The analog tile computation is pluggable: exact ideal, GENIEx emulation,
the linear analytical model, a cheap decoupled IR-drop model, or the full
circuit simulator.

**Plan/execute split.** The simulator separates *compilation* from
*execution*:

* :meth:`CrossbarMvmEngine.prepare` (compile) quantises, slices and tiles
  a weight matrix, programs every (sign, slice, tile) crossbar model and
  lowers the layer into a static, picklable
  :class:`~repro.funcsim.planner.LayerProgram` — the tile stream-block
  schedule, ADC/shift-add merge plan and cost metadata
  (:mod:`repro.funcsim.planner`);
* the :mod:`~repro.funcsim.runtime` package (execute) runs programs as
  independent (tile-row, batch-chunk) shards on one of three pluggable
  backends — ``serial`` (single core, the reference), ``threads`` and
  ``process`` (worker processes with shared-memory activation/output
  arrays) — merging partial sums digitally in tile-row order as the
  hardware's peripheral logic would. :func:`convert_to_mvm` compiles a
  whole network into one :class:`~repro.funcsim.planner.NetworkProgram`
  and attaches the executor to every converted layer.

In batch-invariant mode all backends produce bit-identical outputs at any
worker count; with ADC noise, per-shard noise streams are keyed by tile
coordinates so noisy runs reproduce exactly regardless of scheduling.

**Compiled fused execution.** For the closed-form tile kinds (``geniex``,
``exact``, ``analytical``) a compile pass (:mod:`repro.funcsim.compiler`)
lowers each layer program into fused tile-row kernels: per-tile-row
stacked operand tensors, one batched read-out and one ADC pass per stream
stack, and a vectorized decode with precomputed sign/shift prefactors.
The fused path is bit-identical to the interpreted kernel (which remains
the reference and the fallback for ``decoupled``/``circuit``), executes
on a pluggable array backend (:mod:`repro.funcsim.runtime.backends`:
``numpy`` default, ``numba``/``torch`` when installed), and is on by
default — disable it with ``backend="interp"`` or ``REPRO_BACKEND=interp``.

**Batched tile API.** Every tile model maps a voltage batch ``(M, rows)``
to currents ``(M, cols)`` in one call, and the kernel stacks all active
stream blocks of a tile-row into a single such batch per tile model — the
tile models therefore see one large batched inference/solve instead of one
call per stream, which is what makes non-ideal inference tractable (cf. the
GENIEx premise of replacing per-vector SPICE solves with batched NN
inference). With a noiseless ADC (the default), batched and per-stream
execution produce identical outputs; with ADC noise enabled the two are
statistically equivalent but not bit-identical, because batching draws the
seeded noise samples in a different order.

**Tile-result caching.** :class:`CrossbarMvmEngine` memoises measured
(post-ADC) tile read-outs in an LRU keyed by the exact integer stream-level
pattern (``tile_cache_size`` entries, default 256; ``0`` disables).
Repeated activation patterns — ubiquitous in convolution im2col batches —
skip the analog model entirely. Caching is value-exact, never changes
results, and is automatically disabled when ADC noise is configured, since
noisy conversions must be re-sampled. Engine statistics count logical
read-outs as the modelled hardware would execute them; ``cache_hits``
tracks the software-side savings separately.
"""

from repro.funcsim.config import FuncSimConfig
from repro.funcsim.quant import FixedPointFormat
from repro.funcsim.adc import AdcModel
from repro.funcsim.engine import (
    AnalyticalTileFactory,
    CircuitTileFactory,
    CrossbarMvmEngine,
    DecoupledTileFactory,
    EngineStats,
    ExactTileFactory,
    GeniexTileFactory,
    IdealMvmEngine,
    TileResultCache,
    make_engine,
)
from repro.funcsim.compiler import CompiledLayer, compile_program
from repro.funcsim.planner import (
    LayerPlan,
    LayerProgram,
    NetworkProgram,
    plan_layer,
)
from repro.funcsim.runtime import (
    ExecutorBase,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_backends,
    get_backend,
    make_executor,
    resolve_backend,
)
from repro.funcsim.layers import Conv2dMVM, LinearMVM
from repro.funcsim.convert import (
    close_mvm_executor,
    compile_network,
    convert_to_mvm,
)

__all__ = [
    "FuncSimConfig",
    "FixedPointFormat",
    "AdcModel",
    "CrossbarMvmEngine",
    "IdealMvmEngine",
    "EngineStats",
    "ExactTileFactory",
    "GeniexTileFactory",
    "AnalyticalTileFactory",
    "DecoupledTileFactory",
    "CircuitTileFactory",
    "TileResultCache",
    "make_engine",
    "LayerPlan",
    "LayerProgram",
    "NetworkProgram",
    "plan_layer",
    "CompiledLayer",
    "compile_program",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "get_backend",
    "make_executor",
    "resolve_backend",
    "LinearMVM",
    "Conv2dMVM",
    "convert_to_mvm",
    "compile_network",
    "close_mvm_executor",
]
