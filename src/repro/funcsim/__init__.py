"""Functional simulator: DNN inference on (non-ideal) crossbar hardware.

Reproduces the paper's Section 5 architecture model. A convolution or dense
layer executes in three phases:

1. **Iterative MVM** — convolutions become repeated matrix-vector products
   over im2col patch matrices.
2. **Tiling** — the quantised weight matrix is split into crossbar-sized
   tiles; tiles in a row share input slices, tiles in a column produce
   partial sums.
3. **Bit-slicing** — activations are streamed ``stream_bits`` at a time
   through the DACs and weights are split into ``slice_bits`` conductance
   slices; ADC outputs are merged with shift-and-add and accumulated in
   fixed point.

The analog tile computation is pluggable: exact ideal, GENIEx emulation,
the linear analytical model, a cheap decoupled IR-drop model, or the full
circuit simulator.
"""

from repro.funcsim.config import FuncSimConfig
from repro.funcsim.quant import FixedPointFormat
from repro.funcsim.adc import AdcModel
from repro.funcsim.engine import (
    AnalyticalTileFactory,
    CircuitTileFactory,
    CrossbarMvmEngine,
    DecoupledTileFactory,
    ExactTileFactory,
    GeniexTileFactory,
    IdealMvmEngine,
    make_engine,
)
from repro.funcsim.layers import Conv2dMVM, LinearMVM
from repro.funcsim.convert import convert_to_mvm

__all__ = [
    "FuncSimConfig",
    "FixedPointFormat",
    "AdcModel",
    "CrossbarMvmEngine",
    "IdealMvmEngine",
    "ExactTileFactory",
    "GeniexTileFactory",
    "AnalyticalTileFactory",
    "DecoupledTileFactory",
    "CircuitTileFactory",
    "make_engine",
    "LinearMVM",
    "Conv2dMVM",
    "convert_to_mvm",
]
