"""GENIEx reproduction: emulating non-ideality in memristive crossbars.

Public API surface of the reproduction of *GENIEx: A Generalized Approach to
Emulating Non-Ideality in Memristive Xbars using Neural Networks*
(Chakraborty et al., DAC 2020). See README.md for a tour and DESIGN.md for
the system inventory.
"""

from repro.xbar.config import CrossbarConfig
from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.analytical.linear_model import AnalyticalLinearModel
from repro.api import EmulationSpec, Session, open_session
from repro.nonideal import NonidealitySpec

__version__ = "1.2.0"

__all__ = [
    "CrossbarConfig",
    "CrossbarCircuitSimulator",
    "AnalyticalLinearModel",
    "EmulationSpec",
    "NonidealitySpec",
    "Session",
    "open_session",
    "__version__",
]
