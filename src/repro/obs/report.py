"""Per-stage latency reports over trace dumps (``repro obs``).

Takes the trace dicts served by ``/v1/debug/traces`` (or dumped to a
file) and aggregates span durations by stage name across every trace,
walking nested children. Percentiles here are exact — computed from the
raw per-span durations, not bucketed — because a trace dump is small and
offline analysis can afford it.
"""

from __future__ import annotations


def _walk(span_dicts, visit) -> None:
    for s in span_dicts:
        visit(s)
        children = s.get("children")
        if children:
            _walk(children, visit)


def _exact_percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def stage_report(traces) -> dict:
    """Aggregate span durations by stage name across trace dicts.

    Returns ``{stage: {count, total_ms, mean_ms, p50_ms, p95_ms,
    p99_ms, max_ms}}``.
    """
    durations: dict = {}

    def visit(span_dict):
        name = span_dict.get("name", "?")
        durations.setdefault(name, []).append(
            float(span_dict.get("duration_ms", 0.0)))

    for trace in traces:
        _walk(trace.get("spans", []), visit)

    report = {}
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        report[name] = {
            "count": len(values),
            "total_ms": round(total, 3),
            "mean_ms": round(total / len(values), 3),
            "p50_ms": round(_exact_percentile(values, 0.50), 3),
            "p95_ms": round(_exact_percentile(values, 0.95), 3),
            "p99_ms": round(_exact_percentile(values, 0.99), 3),
            "max_ms": round(values[-1], 3),
        }
    return report


def _render_table(rows) -> str:
    """Fixed-width table; first row is the header."""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(cells).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_stage_report(report: dict) -> str:
    """Fixed-width table, stages sorted by total time descending."""
    rows = [("stage", "count", "total_ms", "mean_ms", "p50_ms",
             "p95_ms", "p99_ms", "max_ms")]
    ordered = sorted(report.items(), key=lambda kv: -kv[1]["total_ms"])
    for name, stats in ordered:
        rows.append((name, str(stats["count"]),
                     f"{stats['total_ms']:.3f}", f"{stats['mean_ms']:.3f}",
                     f"{stats['p50_ms']:.3f}", f"{stats['p95_ms']:.3f}",
                     f"{stats['p99_ms']:.3f}", f"{stats['max_ms']:.3f}"))
    return _render_table(rows)


def fleet_report(metrics: dict) -> dict:
    """Per-worker rows from a fleet front-end's JSON ``/metrics`` shape.

    The front-end federates each worker's ``/v1/debug/obs`` summary into
    the ``workers`` section; this distils it to the operator's
    at-a-glance figures: health, queue pressure, warm-object counts
    (summed over the registry's LRU tiers), zoo training runs and the
    worker-local HTTP p95. A worker the front-end could not scrape
    (dead, or mid-restart) still gets a row — with its health flag and
    dashes in the table — rather than vanishing from the report.
    """
    report: dict = {}
    for wid in sorted(metrics.get("workers", {})):
        entry = metrics["workers"][wid]
        row = {"healthy": bool(entry.get("healthy")),
               "address": f"{entry.get('host', '?')}:"
                          f"{entry.get('port', '?')}"}
        scraped = "queue_rows" in entry
        row["scraped"] = scraped
        if scraped:
            registry = entry.get("registry", {})
            zoo = entry.get("zoo", {})
            latency = entry.get("latency", {}).get("http", {})
            row.update({
                "inflight": int(entry.get("inflight", 0)),
                "queue_rows": int(entry.get("queue_rows", 0)),
                "warm_keys": sum(int(tier.get("size", 0))
                                 for tier in registry.values()),
                "trains": int(zoo.get("trains", 0)),
                "p95_ms": float(latency.get("p95_ms", 0.0)),
            })
        report[wid] = row
    return report


def format_fleet_report(report: dict) -> str:
    """Fixed-width per-worker table for ``repro obs --fleet``."""
    rows = [("worker", "healthy", "address", "inflight", "queue_rows",
             "warm_keys", "trains", "p95_ms")]
    for wid, row in report.items():
        if row.get("scraped"):
            tail = (str(row["inflight"]), str(row["queue_rows"]),
                    str(row["warm_keys"]), str(row["trains"]),
                    f"{row['p95_ms']:.3f}")
        else:
            tail = ("-",) * 5
        rows.append((wid, "yes" if row["healthy"] else "NO",
                     row["address"], *tail))
    return _render_table(rows)
