"""Per-stage latency reports over trace dumps (``repro obs``).

Takes the trace dicts served by ``/v1/debug/traces`` (or dumped to a
file) and aggregates span durations by stage name across every trace,
walking nested children. Percentiles here are exact — computed from the
raw per-span durations, not bucketed — because a trace dump is small and
offline analysis can afford it.
"""

from __future__ import annotations


def _walk(span_dicts, visit) -> None:
    for s in span_dicts:
        visit(s)
        children = s.get("children")
        if children:
            _walk(children, visit)


def _exact_percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def stage_report(traces) -> dict:
    """Aggregate span durations by stage name across trace dicts.

    Returns ``{stage: {count, total_ms, mean_ms, p50_ms, p95_ms,
    p99_ms, max_ms}}``.
    """
    durations: dict = {}

    def visit(span_dict):
        name = span_dict.get("name", "?")
        durations.setdefault(name, []).append(
            float(span_dict.get("duration_ms", 0.0)))

    for trace in traces:
        _walk(trace.get("spans", []), visit)

    report = {}
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        report[name] = {
            "count": len(values),
            "total_ms": round(total, 3),
            "mean_ms": round(total / len(values), 3),
            "p50_ms": round(_exact_percentile(values, 0.50), 3),
            "p95_ms": round(_exact_percentile(values, 0.95), 3),
            "p99_ms": round(_exact_percentile(values, 0.99), 3),
            "max_ms": round(values[-1], 3),
        }
    return report


def format_stage_report(report: dict) -> str:
    """Fixed-width table, stages sorted by total time descending."""
    headers = ("stage", "count", "total_ms", "mean_ms", "p50_ms",
               "p95_ms", "p99_ms", "max_ms")
    rows = [headers]
    ordered = sorted(report.items(), key=lambda kv: -kv[1]["total_ms"])
    for name, stats in ordered:
        rows.append((name, str(stats["count"]),
                     f"{stats['total_ms']:.3f}", f"{stats['mean_ms']:.3f}",
                     f"{stats['p50_ms']:.3f}", f"{stats['p95_ms']:.3f}",
                     f"{stats['p99_ms']:.3f}", f"{stats['max_ms']:.3f}"))
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(headers))]
        lines.append("  ".join(cells).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
