"""Context-local tracing: nested timed spans with a bounded ring buffer.

A :class:`Trace` is activated on a ``contextvars.ContextVar``; code
anywhere below (same task / thread context) opens spans with::

    with span("engine-compute"):
        ...

When no trace is active, :func:`span` returns a shared no-op handle
after a single ContextVar read — the instrumentation cost of an
untraced call is one function call, and spans only ever *observe* wall
time (``perf_counter``), never consume RNG, so traced and untraced runs
produce bit-identical numerics.

Two propagation caveats the serving layer works around explicitly:

* ``loop.run_in_executor`` does **not** propagate contextvars (unlike
  ``asyncio.to_thread``), so the scheduler activates a fresh collector
  trace inside the executor-thread callable and grafts the captured
  spans back into each awaiting request's trace;
* a span completed elsewhere (queue wait measured by the scheduler,
  shard timings folded up by an executor) is attached with
  :meth:`Trace.add_span`, which is thread-safe.

Span counts are capped per trace (``max_spans``) so a request that fans
out into thousands of engine calls (a converted DNN) cannot balloon the
ring buffer; overflow is counted in ``dropped``.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections import deque
from time import perf_counter

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace", default=None)


class Span:
    """One timed stage. ``start`` is a ``perf_counter`` timestamp."""

    __slots__ = ("name", "start", "duration", "children", "meta")

    def __init__(self, name: str, start: float, meta: dict | None = None):
        self.name = name
        self.start = start
        self.duration = 0.0
        self.children: list = []
        self.meta = meta or {}

    def to_dict(self, t0: float) -> dict:
        out = {"name": self.name,
               "start_ms": round((self.start - t0) * 1e3, 3),
               "duration_ms": round(self.duration * 1e3, 3)}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict(t0) for c in self.children]
        return out


class Trace:
    """A per-request span tree, safe to record into from any thread."""

    def __init__(self, name: str, trace_id: str | None = None,
                 max_spans: int = 256):
        self.name = name
        self.trace_id = trace_id
        self.meta: dict = {}
        self.max_spans = int(max_spans)
        self.dropped = 0
        self.t0 = perf_counter()
        self._lock = threading.Lock()
        self._spans: list = []   # completed top-level spans
        self._stack: list = []   # open spans, innermost last
        self._n_spans = 0

    # ------------------------------------------------------------------
    def begin(self, name: str, **meta) -> Span:
        """Open a nested span; pair with :meth:`end`."""
        span_ = Span(name, perf_counter(), dict(meta) if meta else None)
        with self._lock:
            self._stack.append(span_)
        return span_

    def end(self, span_: Span) -> None:
        """Close an open span and attach it to its parent."""
        now = perf_counter()
        with self._lock:
            # Defensive unwinding: a span leaked by an exception between
            # begin/end is discarded rather than corrupting the stack.
            while self._stack and self._stack[-1] is not span_:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
            span_.duration = now - span_.start
            self._attach(span_)

    def add_span(self, name: str, start: float, duration: float,
                 children=None, meta: dict | None = None) -> None:
        """Graft a span measured elsewhere under the current open span."""
        span_ = Span(name, start, dict(meta) if meta else None)
        span_.duration = duration
        if children:
            span_.children = list(children)
        with self._lock:
            self._attach(span_)

    def _attach(self, span_: Span) -> None:
        target = self._stack[-1].children if self._stack else self._spans
        if self._n_spans < self.max_spans:
            target.append(span_)
            self._n_spans += 1
        else:
            self.dropped += 1

    # ------------------------------------------------------------------
    def spans(self) -> list:
        """Completed top-level spans (shared objects, treat read-only)."""
        with self._lock:
            return list(self._spans)

    def to_dict(self) -> dict:
        with self._lock:
            spans = list(self._spans)
            dropped = self.dropped
        out = {"trace_id": self.trace_id, "name": self.name,
               "spans": [s.to_dict(self.t0) for s in spans]}
        if self.meta:
            out["meta"] = dict(self.meta)
        if dropped:
            out["dropped_spans"] = dropped
        return out


# ----------------------------------------------------------------------
# Context plumbing
# ----------------------------------------------------------------------
def current_trace() -> Trace | None:
    """The active trace of this context, or ``None``."""
    return _CURRENT.get()


def activate(trace: Trace):
    """Set the context's active trace; returns a token for deactivate."""
    return _CURRENT.set(trace)


def deactivate(token) -> None:
    _CURRENT.reset(token)


class _SpanHandle:
    __slots__ = ("_trace", "_span")

    def __init__(self, trace: Trace, span_: Span):
        self._trace = trace
        self._span = span_

    @property
    def span(self) -> Span:
        return self._span

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._trace.end(self._span)


class _NoopSpan:
    __slots__ = ()
    span = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **meta):
    """Open a timed span on the active trace (no-op when none is active)."""
    trace = _CURRENT.get()
    if trace is None:
        return _NOOP
    return _SpanHandle(trace, trace.begin(name, **meta))


@contextlib.contextmanager
def start_trace(name: str, trace_id: str | None = None, buffer=None,
                max_spans: int = 256, **meta):
    """Activate a fresh :class:`Trace` for the duration of the block.

    On exit the trace is deactivated and, when ``buffer`` (a
    :class:`TraceBuffer`) is given, its rendered dict is appended.
    Yields the live :class:`Trace`.
    """
    trace = Trace(name, trace_id=trace_id, max_spans=max_spans)
    if meta:
        trace.meta.update(meta)
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
        if buffer is not None:
            buffer.append(trace.to_dict())


class TraceBuffer:
    """Bounded, thread-safe ring buffer of rendered trace dicts."""

    def __init__(self, maxlen: int = 256):
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=int(maxlen))

    def append(self, trace_dict: dict) -> None:
        with self._lock:
            self._traces.append(trace_dict)

    def snapshot(self) -> list:
        """Oldest-first copy of the retained traces."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class SpanTimings:
    """Mergeable ``{stage: (count, total_seconds)}`` accumulator.

    The runtime executors record shard-local timings into one of these
    per call and fold them upward exactly like ``EngineStats.merge`` —
    shard workers accumulate without contention, the per-call object
    merges into the executor's cumulative timings under a lock, and the
    process backend's workers ship plain dict snapshots over IPC.
    """

    __slots__ = ("_lock", "_data")

    def __init__(self):
        self._lock = threading.Lock()
        self._data: dict = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        with self._lock:
            entry = self._data.get(name)
            if entry is None:
                self._data[name] = [count, seconds]
            else:
                entry[0] += count
                entry[1] += seconds

    def merge(self, other) -> "SpanTimings":
        """Fold another accumulator (or its snapshot dict) into this one."""
        items = other.snapshot().items() if isinstance(other, SpanTimings) \
            else dict(other).items()
        with self._lock:
            for name, value in items:
                count = value["count"] if isinstance(value, dict) \
                    else value[0]
                total = value["total_s"] if isinstance(value, dict) \
                    else value[1]
                entry = self._data.get(name)
                if entry is None:
                    self._data[name] = [count, total]
                else:
                    entry[0] += count
                    entry[1] += total
        return self

    def snapshot(self) -> dict:
        with self._lock:
            return {name: {"count": entry[0], "total_s": entry[1]}
                    for name, entry in self._data.items()}

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._data)
