"""Prometheus text exposition (version 0.0.4) for registry snapshots.

Renders the JSON-ready dict produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` into the plain-text
format Prometheus scrapes: ``# HELP`` / ``# TYPE`` headers per family,
one sample line per child, and for histograms the cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    items = list(labels.items())
    if extra:
        items.extend(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in items)
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition."""
    lines = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("type", "counter")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in family.get("values", []):
            labels = entry.get("labels", {})
            if kind == "histogram":
                for bound, cumulative in entry["buckets"]:
                    le = "+Inf" if bound == "+Inf" \
                        else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, {'le': le})}"
                        f" {_format_value(cumulative)}")
                lines.append(f"{name}_sum{_labels_text(labels)}"
                             f" {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)}"
                             f" {_format_value(entry['count'])}")
            else:
                lines.append(f"{name}{_labels_text(labels)}"
                             f" {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"
