"""Unified observability: metrics registry, tracing spans, exporters.

Stdlib-only instrumentation layer shared by the serving stack, the
session facade and the funcsim runtime:

* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms in a thread-safe :class:`MetricsRegistry`; snapshots carry
  p50/p95/p99 estimates and merge across shard workers.
* :mod:`repro.obs.trace` — context-local :class:`Trace` objects with
  nested timed spans, a no-op fast path when no trace is active, and a
  bounded in-process ring buffer of recent traces.
* :mod:`repro.obs.prometheus` — text exposition rendering for the
  ``/metrics`` endpoint.
* :mod:`repro.obs.logs` — ``repro.*`` logger setup honouring
  ``--log-level`` / ``REPRO_LOG_LEVEL``.
* :mod:`repro.obs.report` — per-stage latency aggregation over trace
  dumps (the ``repro obs`` CLI subcommand).

The design contract for hot paths: instruments are created once and
held by reference (no per-call name lookups), spans observe wall time
only (they never consume RNG, so traced and untraced runs are
bit-identical), and an inactive trace context costs one ContextVar read.
"""

from repro.obs.logs import setup_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    counter_family,
    gauge_family,
    get_registry,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.report import (
    fleet_report,
    format_fleet_report,
    format_stage_report,
    stage_report,
)
from repro.obs.trace import (
    Span,
    SpanTimings,
    Trace,
    TraceBuffer,
    activate,
    current_trace,
    deactivate,
    span,
    start_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Span",
    "SpanTimings",
    "Trace",
    "TraceBuffer",
    "activate",
    "counter_family",
    "current_trace",
    "deactivate",
    "fleet_report",
    "format_fleet_report",
    "format_stage_report",
    "gauge_family",
    "get_registry",
    "render_prometheus",
    "setup_logging",
    "span",
    "stage_report",
    "start_trace",
]
