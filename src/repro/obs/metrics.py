"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds named instrument *families*; a family
with label names hands out one child instrument per label combination
(memoised, so hot paths resolve a child once and call ``inc``/``observe``
on the held reference — no per-call dict churn). Everything is
thread-safe: instruments take a small per-instrument lock, and snapshots
are consistent per instrument.

Histograms use fixed bucket bounds (latency buckets by default) and
report p50/p95/p99 estimates by linear interpolation inside the bucket —
the standard Prometheus ``histogram_quantile`` estimate, computed at
snapshot time so the observe path stays two integer adds.

Snapshots are plain dicts (JSON-ready) and *mergeable*: folding a shard
worker's snapshot into another registry sums counters and bucket counts,
mirroring ``EngineStats.merge``. Collectors registered with
:meth:`MetricsRegistry.register_collector` contribute derived families
(cache sizes, warm-engine counters) at snapshot time only, keeping the
sources of truth where they live.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram bounds for latency-in-seconds observations; spans
#: 500 us .. 5 s, which covers a microbatched NumPy serving stack from
#: cache-hit matmuls to cold mitigation runs.
DEFAULT_LATENCY_BUCKETS_S = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02,
                             0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
                             float("inf"))


def _normalize_buckets(buckets) -> tuple:
    bounds = tuple(sorted(float(b) for b in buckets))
    if not bounds:
        raise ValueError("histogram needs at least one bucket bound")
    if bounds[-1] != float("inf"):
        bounds = bounds + (float("inf"),)
    return bounds


def bucket_percentile(bounds, cumulative, q: float) -> float:
    """Quantile estimate from cumulative bucket counts.

    Linear interpolation within the containing bucket (the Prometheus
    ``histogram_quantile`` estimate); the open-ended ``+Inf`` bucket
    reports its lower bound, the best point estimate available.
    """
    total = cumulative[-1] if cumulative else 0
    if total <= 0:
        return 0.0
    rank = q * total
    prev_bound, prev_cum = 0.0, 0
    for bound, cum in zip(bounds, cumulative):
        if cum >= rank:
            if bound == float("inf"):
                return prev_bound
            width = bound - prev_bound
            frac = (rank - prev_cum) / max(cum - prev_cum, 1)
            return prev_bound + frac * width
        prev_bound, prev_cum = bound, cum
    return prev_bound


class Counter:
    """Monotonic counter child. ``inc`` only; rendered as a float."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Set-or-adjust gauge child (queue depths, cache sizes)."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram child; two adds per observation."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple):
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def _merge_raw(self, counts, total_sum, total_count) -> None:
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.sum += total_sum
            self.count += total_count

    def state(self) -> tuple:
        """Consistent ``(counts, sum, count)`` copy."""
        with self._lock:
            return list(self.counts), self.sum, self.count


def _summary(bounds, counts, total_sum, total_count) -> dict:
    cumulative = []
    running = 0
    for c in counts:
        running += c
        cumulative.append(running)
    return {
        "count": total_count,
        "sum": total_sum,
        "buckets": [["+Inf" if b == float("inf") else b, cum]
                    for b, cum in zip(bounds, cumulative)],
        "p50": bucket_percentile(bounds, cumulative, 0.50),
        "p95": bucket_percentile(bounds, cumulative, 0.95),
        "p99": bucket_percentile(bounds, cumulative, 0.99),
    }


class Family:
    """One named instrument family; children are memoised per label set."""

    def __init__(self, name: str, kind: str, help: str,
                 labelnames: tuple = (), buckets=None):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.bounds = _normalize_buckets(buckets) \
            if kind == "histogram" else None
        self._lock = threading.Lock()
        self._children: dict = {}
        if not self.labelnames:
            self._default = self._make()
            self._children[()] = self._default
        else:
            self._default = None

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.bounds)

    def labels(self, **labels):
        """The child instrument for one label combination (memoised)."""
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make()
        return child

    # Unlabelled convenience: family-level inc/set/observe hit the
    # default child directly.
    def inc(self, amount=1) -> None:
        self._default.inc(amount)

    def set(self, value) -> None:
        self._default.set(value)

    def observe(self, value) -> None:
        self._default.observe(value)

    def aggregate(self) -> dict:
        """Histogram summary merged across every child (p50/p95/p99)."""
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        counts = [0] * len(self.bounds)
        total_sum, total_count = 0.0, 0
        with self._lock:
            children = list(self._children.values())
        for child in children:
            c, s, n = child.state()
            for i, v in enumerate(c):
                counts[i] += v
            total_sum += s
            total_count += n
        return _summary(self.bounds, counts, total_sum, total_count)

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._children.items())
        values = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                counts, s, n = child.state()
                entry = {"labels": labels}
                entry.update(_summary(self.bounds, counts, s, n))
            else:
                entry = {"labels": labels, "value": child.value}
            values.append(entry)
        return {"type": self.kind, "help": self.help, "values": values}


def counter_family(help: str, values) -> dict:
    """Snapshot-format counter family for collectors.

    ``values`` is an iterable of ``(labels_dict, value)`` pairs.
    """
    return {"type": "counter", "help": help,
            "values": [{"labels": dict(labels), "value": value}
                       for labels, value in values]}


def gauge_family(help: str, values) -> dict:
    """Snapshot-format gauge family for collectors."""
    return {"type": "gauge", "help": help,
            "values": [{"labels": dict(labels), "value": value}
                       for labels, value in values]}


class MetricsRegistry:
    """Named instrument families plus snapshot-time collectors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict = {}
        self._collectors: list = []

    def _get_or_create(self, name: str, kind: str, help: str,
                       labelnames: tuple, buckets=None) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = Family(
                    name, kind, help, labelnames, buckets=buckets)
            elif family.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{family.kind}, requested {kind}")
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple = ()) -> Family:
        return self._get_or_create(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple = ()) -> Family:
        return self._get_or_create(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: tuple = (),
                  buckets=DEFAULT_LATENCY_BUCKETS_S) -> Family:
        return self._get_or_create(name, "histogram", help, labelnames,
                                   buckets=buckets)

    def register_collector(self, collect) -> None:
        """Register ``collect() -> {name: family_snapshot}``.

        Collectors federate externally-owned counters (registry LRU
        tiers, warm-engine ``EngineStats``, zoo training counts) into
        this registry's namespace at snapshot time; they never add
        per-event overhead to the collected subsystem.
        """
        with self._lock:
            self._collectors.append(collect)

    def snapshot(self) -> dict:
        """All families (instruments + collectors) as one JSON-ready dict."""
        with self._lock:
            families = list(self._families.items())
            collectors = list(self._collectors)
        out = {name: family.snapshot() for name, family in families}
        for collect in collectors:
            for name, family in collect().items():
                out[name] = family
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. from a shard worker) into this registry.

        Counters and histograms sum, like ``EngineStats.merge``; gauges
        overwrite (last writer wins — a merged gauge is a point sample,
        not an accumulation).
        """
        for name, family_snap in snapshot.items():
            kind = family_snap.get("type", "counter")
            help = family_snap.get("help", "")
            for entry in family_snap.get("values", []):
                labels = entry.get("labels", {})
                labelnames = tuple(labels)
                if kind == "histogram":
                    bounds = tuple(
                        float("inf") if b == "+Inf" else float(b)
                        for b, _ in entry["buckets"])
                    family = self._get_or_create(name, kind, help,
                                                 labelnames, buckets=bounds)
                    child = family.labels(**labels)
                    if child.bounds != bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket bounds mismatch")
                    cumulative = [c for _, c in entry["buckets"]]
                    counts = [cumulative[0]] + [
                        cumulative[i] - cumulative[i - 1]
                        for i in range(1, len(cumulative))]
                    child._merge_raw(counts, entry["sum"], entry["count"])
                else:
                    family = self._get_or_create(name, kind, help,
                                                 labelnames)
                    child = family.labels(**labels)
                    if kind == "counter":
                        child.inc(entry["value"])
                    else:
                        child.set(entry["value"])


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry.

    Library code that wants ambient instrumentation without plumbing a
    registry through every constructor records here; servers own their
    own registry per instance (so tests booting several servers in one
    process never cross-pollute) and federate the rest via collectors.
    """
    return _DEFAULT
