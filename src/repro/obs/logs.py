"""Logging setup for the ``repro.*`` logger hierarchy.

All repro modules log through ``logging.getLogger("repro.<area>")``;
nothing is emitted until an application configures a handler. The CLI
(and any embedding application that wants console output) calls
:func:`setup_logging` once — it attaches a stream handler to the
``repro`` root logger, honouring ``--log-level`` / ``REPRO_LOG_LEVEL``.
"""

from __future__ import annotations

import logging
import os

DEFAULT_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
ENV_VAR = "REPRO_LOG_LEVEL"


def resolve_level(level=None) -> int:
    """Numeric level from an explicit arg, ``REPRO_LOG_LEVEL``, or INFO."""
    if level is None:
        level = os.environ.get(ENV_VAR) or "INFO"
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level: {level!r}")
    return resolved


def setup_logging(level=None, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree (idempotent).

    Returns the ``repro`` root logger. A second call only adjusts the
    level, so library users and tests can call it freely without
    duplicating handlers.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_level(level))
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(DEFAULT_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
    return logger
