"""Warm-model registry: async-safe LRU caches layered on the GENIEx zoo.

Three tiers, all keyed by deterministic content digests so identical
requests — from any client, in any order — land on the same warm object
(and therefore the same microbatching queue):

* **models** — trained :class:`GeniexEmulator` instances, keyed by the zoo
  artifact key of the model spec. Misses train (or load) through
  :class:`GeniexZoo` on an executor thread; an asyncio per-key lock
  collapses concurrent misses into one training run while the event loop
  keeps serving other traffic.
* **crossbars** — :class:`MatrixEmulator` instances for a programmed
  conductance matrix, keyed by (model key, G digest). Always built with
  ``batch_invariant=True`` so coalesced predictions are byte-identical to
  direct per-request calls.
* **engines** — prepared :class:`CrossbarMvmEngine` pipelines (engine +
  :class:`PreparedMatrix`), keyed by ``spec.weights_key(weights)`` — the
  :class:`~repro.api.spec.EmulationSpec` digest scheme every other
  surface uses. Preparing programs every (sign, slice, tile) model, so
  it also runs on the executor under a per-key lock. Engines are built
  through :func:`repro.api.session.build_engine` from the spec, under a
  server-owned runtime policy (batch-invariant whenever possible,
  thread sharding, bounded tile cache).
* **mitigated** — whole mitigated classifiers (noise-trained weights on
  a live engine, output calibration applied), keyed by
  :func:`repro.mitigation.runner.mitigated_key` — full spec digest
  (which folds the mitigation node) × dataset handle × architecture, so
  a mitigated model can never alias the raw model serving the same
  physics. Builds run :func:`~repro.mitigation.runner.run_mitigation`
  on the executor; the zoo persists the artifact, so a registry restart
  rebuilds from disk instead of retraining.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.api.session import Session, build_engine
from repro.api.spec import (
    EmulationSpec,
    engine_identity,
    supports_batch_invariance,
    weights_identity,
)
from repro.core.emulator import GeniexEmulator, MatrixEmulator
from repro.core.zoo import GeniexZoo
from repro.errors import ConfigError, ShapeError
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.convert import compile_network, convert_to_mvm, mvm_layers
from repro.funcsim.engine import EngineStats
from repro.mitigation.runner import mitigated_key, run_mitigation
from repro.nn.serialization import net_digest, net_from_wire
from repro.nonideal import as_pipeline
from repro.obs import counter_family, gauge_family, span
from repro.serve.protocol import ModelSpec
from repro.utils.cache import LruDict
from repro.utils.digest import content_key


@dataclass
class PreparedEngine:
    """One servable engine pipeline: the engine plus its prepared weights."""

    key: str
    kind: str
    engine: object
    prepared: object
    n_in: int
    n_out: int

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return self.engine.matmul(x, self.prepared)

    def close(self, wait: bool = True) -> None:
        """Release the engine's runtime workers (if sharded).

        The engine stays usable (inline, single-core) afterwards, so
        microbatches queued against an evicted engine still complete.
        """
        self.engine.close(wait=wait)


@dataclass
class MitigatedModel:
    """One warm mitigated classifier bound to its own session engine."""

    key: str
    spec_key: str
    sizes: tuple
    metrics: dict
    from_cache: bool
    _session: Session
    _serving: object

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mitigated logits for a batch (through the session engine)."""
        from repro.nn.tensor import Tensor, no_grad
        with no_grad():
            return np.asarray(self._serving(Tensor(np.atleast_2d(x))).data,
                              dtype=np.float64)

    def close(self, wait: bool = True) -> None:
        """Release the session's runtime workers (engine degrades inline)."""
        self._session.close(wait=wait)


@dataclass
class CompiledNet:
    """One warm compiled network: converted MVM model + fused programs.

    The whole network shares one engine (every layer's weights prepared
    on it during :func:`convert_to_mvm`); ``predict`` is row-independent
    under batch-invariant modes, so microbatched calls are byte-identical
    to sequential per-request runs.
    """

    key: str
    net_digest: str
    model_key: str
    spec_key: str
    engine_kind: str
    batch_invariant: bool
    n_layers: int
    n_mvm_layers: int
    n_in: int
    input_shape: tuple | None
    compile_seconds: float
    _model: object
    _engine: object

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Logits for a stacked batch of flat rows (float64 out).

        Runs layer by layer so each MVM layer's fused kernel call gets a
        ``layer-execute`` span — the scheduler grafts these into every
        coalesced request's trace (the call genuinely served them all).
        """
        from repro.funcsim.layers import Conv2dMVM, LinearMVM
        from repro.nn.tensor import Tensor, no_grad
        data = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self.input_shape is not None:
            data = data.reshape(data.shape[0], *self.input_shape)
        rows = data.shape[0]
        with no_grad():
            out = Tensor(data)
            for name, layer in self._model._modules.items():
                if isinstance(layer, (LinearMVM, Conv2dMVM)):
                    with span(f"layer-execute:{name}", rows=rows):
                        out = layer(out)
                else:
                    out = layer(out)
            out = np.asarray(out.data, dtype=np.float64)
        return out.reshape(out.shape[0], -1)

    def close(self, wait: bool = True) -> None:
        """Release the engine's runtime workers (degrades inline)."""
        self._engine.close(wait=wait)


def _net_input_features(wire: dict) -> tuple:
    """``(n_in, input_shape)`` a net expects per request row.

    ``input_shape`` (per-sample, e.g. ``[1, 8, 8]``) is authoritative
    when present — request rows are folded back into it before the
    forward pass. Without it the first layer must pin the feature count
    (a linear's ``in_features``); spatial layers ahead of any linear
    need the shape and are rejected at upload time.
    """
    input_shape = wire.get("input_shape")
    if input_shape is not None:
        shape = tuple(int(s) for s in input_shape)
        if not shape or any(s < 1 for s in shape):
            raise ConfigError("input_shape must be positive dimensions")
        return int(np.prod(shape)), shape
    spatial = ("conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
               "batch_norm2d")
    for entry in wire["layers"]:
        kind = entry["kind"]
        if kind == "linear":
            return int(entry["config"]["in_features"]), None
        if kind == "batch_norm1d":
            return int(entry["config"]["num_features"]), None
        if kind in spatial:
            raise ConfigError(
                f"net starts with spatial layer {kind!r}; the wire needs "
                f"an \"input_shape\" (per-sample, e.g. [1, 28, 28]) so "
                f"flat request rows can be folded back into it")
    raise ConfigError(
        "cannot infer the net's input width; add an \"input_shape\" to "
        "the wire")


class _CacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0


def _close_off_loop(warm) -> None:
    """Close a warm object off the event loop thread.

    Eviction hooks fire inside ``LruDict.put``; when the put happens on
    the event loop (the mitigated tier's does), running the session
    close inline would stall every in-flight request behind runtime-pool
    teardown. With a running loop the close is handed to the default
    executor; on a plain thread (tests, shutdown paths) it runs inline.
    """
    try:
        loop = asyncio.get_running_loop()
    except RuntimeError:
        warm.close(wait=False)
        return
    loop.run_in_executor(None, lambda: warm.close(wait=False))


class ModelRegistry:
    """LRU registry of warm emulators, crossbars and prepared engines."""

    def __init__(self, zoo: GeniexZoo | None = None, *,
                 max_models: int = 8, max_crossbars: int = 128,
                 max_engines: int = 16, max_mitigated: int = 8,
                 max_nets: int = 8, tile_cache_size: int = 256,
                 engine_workers: int = 1, backend: str | None = None):
        self.zoo = zoo or GeniexZoo()
        self.tile_cache_size = int(tile_cache_size)
        # > 1 shards every prepared engine's matmuls over the funcsim
        # thread backend (thread workers compose with the asyncio
        # executor threads running the batched calls; process pools per
        # cached engine would be far too heavy for a serving tier).
        self.engine_workers = max(1, int(engine_workers))
        # Array backend of the compiled fused kernel for every warm
        # engine (None resolves through $REPRO_BACKEND to numpy);
        # bit-identity across backends keeps responses byte-stable, so
        # this is server policy, not part of any cache key.
        self.backend = backend
        self._models = LruDict(max_models)      # model key -> emulator
        self._crossbars = LruDict(max_crossbars)
        # Evicted engines release their sharded-runtime worker pools
        # without blocking the event loop (wait=False); the closed engine
        # still answers queued microbatches inline.
        self._engines = LruDict(
            max_engines, on_evict=lambda _key, warm: warm.close(wait=False))
        # Mitigated models own a whole session; eviction releases its
        # runtime workers the same way (the zoo artifact survives, so a
        # re-request rebuilds from disk, not from scratch). Unlike the
        # engines tier — whose puts happen on executor threads — the
        # mitigated tier is populated from the event loop, so the close
        # is pushed to the executor instead of stalling the loop.
        self._mitigated = LruDict(
            max_mitigated,
            on_evict=lambda _key, warm: _close_off_loop(warm))
        # Warm compiled networks (model-level serving). Populated from
        # the event loop like the mitigated tier, so eviction pushes the
        # engine close to the executor; the zoo artifact survives and a
        # re-request disk-loads + recompiles instead of re-uploading.
        self._nets = LruDict(
            max_nets, on_evict=lambda _key, warm: _close_off_loop(warm))
        self._stats = {"models": _CacheStats(), "crossbars": _CacheStats(),
                       "engines": _CacheStats(),
                       "mitigated": _CacheStats(), "nets": _CacheStats()}
        # Per-key locks are only touched from the event loop, so a plain
        # dict is safe; the slow work they guard runs on executor threads.
        self._locks: dict = {}

    # ------------------------------------------------------------------
    # Keys — all delegate to the spec digest scheme (repro.api.spec),
    # so an in-process Session, a CLI run and an HTTP request that
    # describe the same setup agree on every cache key.
    # ------------------------------------------------------------------
    @staticmethod
    def model_key(spec: ModelSpec) -> str:
        return spec.to_spec().model_key()

    @staticmethod
    def crossbar_key(model_key: str, conductance_s: np.ndarray) -> str:
        return content_key(
            "xb", model_key,
            np.ascontiguousarray(conductance_s, dtype=np.float64))

    @staticmethod
    def engine_key(model_key: str, kind: str, sim_config: FuncSimConfig,
                   weights: np.ndarray) -> str:
        """Deprecated shim: prefer ``EmulationSpec.weights_key``.

        Composes the same spec digests the registry uses internally, so
        a key computed here matches the one a full spec produces for the
        same setup: ``model_key`` (crossbar design + emulator node)
        always participates, exactly as it did in the legacy scheme.
        """
        invariant = supports_batch_invariance(kind, sim_config)
        engine_id = engine_identity(model_key, kind, sim_config, invariant)
        return weights_identity(engine_id, weights)

    def _lock_for(self, key: str) -> asyncio.Lock:
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    def _drop_lock(self, key: str) -> None:
        """Forget a per-key lock once it is idle.

        Keeps the lock table bounded by in-flight work instead of growing
        with every distinct key ever served. If a waiter raced the drop it
        still holds a reference to the old lock; the worst case is one
        redundant (idempotent, cache-guarded) build, not corruption.
        """
        lock = self._locks.get(key)
        if lock is not None and not lock.locked():
            del self._locks[key]

    def _lookup(self, cache_name: str, key: str):
        value = getattr(self, f"_{cache_name}").get(key)
        stats = self._stats[cache_name]
        if value is None:
            stats.misses += 1
        else:
            stats.hits += 1
        return value

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------
    async def emulator(self, spec: ModelSpec) -> tuple:
        """Warm (or train) the emulator for a model spec.

        Returns ``(model_key, emulator)``. Training runs on an executor
        thread; concurrent requests for the same key await one shared run.
        """
        key = self.model_key(spec)
        emulator = self._lookup("models", key)
        if emulator is not None:
            return key, emulator
        try:
            async with self._lock_for("model:" + key):
                emulator = self._models.get(key)
                if emulator is None:
                    loop = asyncio.get_running_loop()
                    emulator = await loop.run_in_executor(
                        None, lambda: self.zoo.get_or_train(
                            spec.config, spec.sampling, spec.training,
                            mode=spec.mode,
                            nonideality=spec.nonideality))
                    self._models.put(key, emulator)
                return key, emulator
        finally:
            self._drop_lock("model:" + key)

    async def matrix_emulator(self, spec: ModelSpec,
                              conductance_s: np.ndarray) -> tuple:
        """Warm the batch-invariant :class:`MatrixEmulator` for (spec, G).

        ``conductance_s`` is the *intended* programmed matrix; an active
        fault composition on the spec perturbs it (deterministically,
        stream key ``(0,)`` — one registered crossbar is one physical
        array) before the emulator is bound, so a faulty spec is served
        faulty physics rather than silently answering clean. The cache
        key folds the fault composition through ``model_key``, so clean
        and faulty registrations of the same matrix never alias.
        """
        model_key = self.model_key(spec)
        key = self.crossbar_key(model_key, conductance_s)
        warm = self._lookup("crossbars", key)
        if warm is not None:
            return key, warm
        # Validate the shape before (possibly) paying for training.
        if conductance_s.shape != spec.config.shape:
            raise ShapeError(
                f"conductances must have shape {spec.config.shape}, "
                f"got {conductance_s.shape}")
        pipeline = as_pipeline(spec.nonideality)
        if pipeline is not None:
            conductance_s = pipeline.perturb(
                conductance_s, (0,), spec.config.g_off_s,
                spec.config.g_on_s)
        _, emulator = await self.emulator(spec)
        warm = emulator.for_matrix(conductance_s, batch_invariant=True)
        self._crossbars.put(key, warm)
        return key, warm

    def crossbar(self, key: str) -> MatrixEmulator | None:
        """Fetch a previously registered crossbar by key (or ``None``)."""
        return self._lookup("crossbars", key)

    async def engine(self, spec: ModelSpec, kind: str,
                     sim_config: FuncSimConfig,
                     weights: np.ndarray) -> PreparedEngine:
        """Warm a prepared MVM engine for (spec, kind, sim, weights).

        Thin adapter over :meth:`engine_from_spec` for the flat wire
        format; both paths share one key scheme and one build path.
        """
        return await self.engine_from_spec(
            spec.to_spec(engine=kind, sim=sim_config), weights)

    def serving_spec(self, spec: EmulationSpec) -> EmulationSpec:
        """Normalise a client spec to this registry's execution policy.

        Public: ``registry.serving_spec(spec).weights_key(w)`` is the
        wire-visible warm-engine key, so clients that want to predict
        server cache keys call this (see the README's Public API notes).

        The runtime node is server-owned: warm engines run
        batch-invariantly whenever the kind/ADC combination allows it —
        so coalesced microbatch responses are byte-identical to direct
        per-request calls — with the registry's tile-cache size and
        thread sharding. (Thread workers compose with the asyncio
        executor threads running the batched calls; per-engine process
        pools would be far too heavy for a serving tier.) Clients cannot
        steer the server onto a process pool or an unbounded cache by
        submitting a creative runtime node.
        """
        invariant = supports_batch_invariance(spec.engine,
                                              spec.sim.to_config())
        return spec.evolve(runtime={
            "batch_invariant": invariant,
            "tile_cache_size": self.tile_cache_size,
            "executor": "threads" if self.engine_workers > 1 else None,
            "workers": self.engine_workers,
            "backend": self.backend,
        })

    async def engine_from_spec(self, spec: EmulationSpec,
                               weights: np.ndarray) -> PreparedEngine:
        """Warm a prepared MVM engine for a declarative spec + weights.

        The cache key is ``spec.weights_key(weights)`` under the
        server-side runtime policy, so identical setups submitted as
        flat wire payloads, spec JSON or in-process specs all land on
        the same warm engine (and the same microbatching queue).
        """
        spec = self.serving_spec(spec)
        key = spec.weights_key(weights)
        warm = self._lookup("engines", key)
        if warm is not None:
            return warm
        try:
            async with self._lock_for("engine:" + key):
                warm = self._engines.get(key)
                if warm is not None:
                    return warm
                emulator = None
                if spec.engine == "geniex":
                    _, emulator = await self.emulator(
                        ModelSpec.from_spec(spec))
                loop = asyncio.get_running_loop()

                def build() -> PreparedEngine:
                    engine = build_engine(spec, emulator=emulator)
                    prepared = engine.prepare(weights)
                    return PreparedEngine(key=key, kind=spec.engine,
                                          engine=engine, prepared=prepared,
                                          n_in=prepared.n_in,
                                          n_out=prepared.n_out)

                warm = await loop.run_in_executor(None, build)
                self._engines.put(key, warm)
                return warm
        finally:
            self._drop_lock("engine:" + key)

    def prepared_engine(self, key: str) -> PreparedEngine | None:
        """Fetch a previously prepared engine by key (or ``None``)."""
        return self._lookup("engines", key)

    async def mitigate(self, spec: EmulationSpec, dataset,
                       hidden=(32,), model_seed: int = 0) -> MitigatedModel:
        """Warm (or run) the mitigation a spec + dataset handle describe.

        The cache key is :func:`~repro.mitigation.runner.mitigated_key`
        under the server-side runtime policy — the full spec digest
        already folds the mitigation node, so mitigated models never
        collide with the raw engines/crossbars serving the same physics.
        The run itself (training, conversion, calibration, persistence)
        happens on an executor thread under a per-key lock; the zoo makes
        repeat requests a disk load and same-process repeats a pure
        cache hit.
        """
        spec = self.serving_spec(spec)
        key = mitigated_key(spec, dataset, hidden=hidden,
                            model_seed=model_seed)
        warm = self._lookup("mitigated", key)
        if warm is not None:
            return warm
        try:
            async with self._lock_for("mitigated:" + key):
                warm = self._mitigated.get(key)
                if warm is not None:
                    return warm
                emulator = None
                if spec.engine == "geniex":
                    # Warm the characterisation emulator through the
                    # model tier first (mitigation-independent key), so
                    # it shares the cache with every other endpoint.
                    _, emulator = await self.emulator(
                        ModelSpec.from_spec(spec))
                loop = asyncio.get_running_loop()

                def build() -> MitigatedModel:
                    session = Session(spec, zoo=self.zoo,
                                      emulator=emulator)
                    try:
                        result = run_mitigation(
                            spec, dataset, hidden=hidden,
                            model_seed=model_seed, zoo=self.zoo,
                            session=session)
                    except BaseException:
                        session.close(wait=False)
                        raise
                    return MitigatedModel(
                        key=key, spec_key=spec.key(),
                        sizes=tuple(result.sizes),
                        metrics=dict(result.metrics),
                        from_cache=result.from_cache,
                        _session=session, _serving=result.serving)

                warm = await loop.run_in_executor(None, build)
                self._mitigated.put(key, warm)
                return warm
        finally:
            self._drop_lock("mitigated:" + key)

    def mitigated_model(self, key: str) -> MitigatedModel | None:
        """Fetch a previously built mitigated model by key (or ``None``)."""
        return self._lookup("mitigated", key)

    # ------------------------------------------------------------------
    # Compiled networks (model-level serving)
    # ------------------------------------------------------------------
    def net_key(self, digest: str, spec: EmulationSpec) -> str:
        """The warm-program key for (net digest, spec).

        The issue-level identity is ``(net_digest, model_key)``; the
        cache key additionally folds the engine kind, sim precision and
        batch-invariance through ``serving_spec(spec).key()`` so two
        specs sharing a trained model but differing in execution can
        never alias one compiled program.
        """
        return content_key("netprog", digest,
                           self.serving_spec(spec).key())

    async def net(self, wire: dict, spec: EmulationSpec,
                  persist: bool = True) -> tuple:
        """Warm (or compile) the network a wire + spec describe.

        Returns ``(warm, outcome)`` where ``outcome`` is one of
        ``"memory_hit"``, ``"disk_hit"`` or ``"compiled"``. Compilation
        (rebuild + per-layer weight preparation + program aggregation)
        runs on an executor thread under a per-key lock; the zoo
        persists the wire so every other fleet worker — and a restarted
        server — rebuilds from disk instead of needing the upload again.
        """
        digest = net_digest(wire)
        key = self.net_key(digest, spec)
        warm = self._lookup("nets", key)
        if warm is not None:
            return warm, "memory_hit"
        try:
            async with self._lock_for("net:" + key):
                warm = self._nets.get(key)
                if warm is not None:
                    return warm, "memory_hit"
                on_disk = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: self.zoo.load_net_program(key) is not None)
                warm = await self._build_net(key, digest, wire, spec)
                if persist and not on_disk:
                    meta = {"spec": spec.to_dict(), "net_digest": digest,
                            "model_key": spec.model_key()}
                    await asyncio.get_running_loop().run_in_executor(
                        None, lambda: self.zoo.save_net_program(
                            key, wire, meta))
                self._nets.put(key, warm)
                return warm, ("disk_hit" if on_disk else "compiled")
        finally:
            self._drop_lock("net:" + key)

    async def compiled_net(self, key: str) -> CompiledNet | None:
        """Warm compiled network by key; falls back to the zoo artifact.

        This is how a fleet worker that never saw the original upload
        serves ``net_predict`` for a learned route: the shared artifact
        store holds the wire + spec, so the worker disk-loads and
        compiles once, then stays warm. ``None`` means the key is
        unknown fleet-wide (the caller answers 404).
        """
        warm = self._lookup("nets", key)
        if warm is not None:
            return warm
        try:
            async with self._lock_for("net:" + key):
                warm = self._nets.get(key)
                if warm is not None:
                    return warm
                loaded = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: self.zoo.load_net_program(key))
                if loaded is None:
                    return None
                wire, meta = loaded
                spec = EmulationSpec.from_dict(meta["spec"])
                warm = await self._build_net(key, meta["net_digest"],
                                             wire, spec)
                self._nets.put(key, warm)
                return warm
        finally:
            self._drop_lock("net:" + key)

    async def _build_net(self, key: str, digest: str, wire: dict,
                         spec: EmulationSpec) -> CompiledNet:
        """Compile a wire into a :class:`CompiledNet` (executor thread).

        Caller holds the per-key lock. The GENIEx emulator is warmed
        through the model tier first so uploads share it with every
        other endpoint; the engine itself is dedicated to this network
        (each layer's weights are prepared on it during conversion).
        """
        sspec = self.serving_spec(spec)
        n_in, input_shape = _net_input_features(wire)
        emulator = None
        if sspec.engine == "geniex":
            _, emulator = await self.emulator(ModelSpec.from_spec(sspec))
        loop = asyncio.get_running_loop()

        def build() -> CompiledNet:
            started = time.perf_counter()
            model = net_from_wire(wire)
            engine = build_engine(sspec, emulator=emulator)
            try:
                converted = convert_to_mvm(
                    model, engine, chunk_rows=sspec.runtime.chunk_rows)
                compile_network(converted)
            except BaseException:
                engine.close(wait=False)
                raise
            return CompiledNet(
                key=key, net_digest=digest, model_key=sspec.model_key(),
                spec_key=sspec.key(), engine_kind=sspec.engine,
                batch_invariant=sspec.runtime.batch_invariant,
                n_layers=len(wire["layers"]),
                n_mvm_layers=len(mvm_layers(converted)),
                n_in=n_in, input_shape=input_shape,
                compile_seconds=time.perf_counter() - started,
                _model=converted, _engine=engine)

        return await loop.run_in_executor(None, build)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def list_models(self) -> list:
        out = []
        for key in self._models.keys():
            emulator: GeniexEmulator = self._models.get(key)
            out.append({"model_key": key, "rows": emulator.rows,
                        "cols": emulator.cols})
        return out

    def stats(self) -> dict:
        caches = {}
        for name, stats in self._stats.items():
            cache: LruDict = getattr(self, f"_{name}")
            total = stats.hits + stats.misses
            caches[name] = {
                "size": len(cache),
                "capacity": cache.max_entries,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hits / total if total else 0.0,
            }
        return caches

    def obs_families(self) -> dict:
        """Registry-owned figures as obs metric families.

        Registered as a snapshot-time collector on the server's metrics
        registry: LRU tier hit/miss/size/capacity, aggregate
        ``EngineStats`` and tile-cache events over the *warm* engines
        (gauges, since eviction shrinks the population), and the zoo's
        get-or-train outcome counters. Reading never touches recency
        (``LruDict.values`` is a pure snapshot), so scraping cannot
        perturb eviction order.
        """
        tiers = self.stats()
        engine_events = dict.fromkeys(EngineStats.FIELDS, 0)
        tile_events = {"hits": 0, "misses": 0}
        warm_engines = [warm.engine for warm in self._engines.values()]
        warm_engines += [warm._engine for warm in self._nets.values()]
        for engine in warm_engines:
            for field, value in engine.stats.snapshot().items():
                engine_events[field] = engine_events.get(field, 0) + value
            cache = getattr(engine, "tile_cache", None)
            if cache is not None:
                hits, misses = cache.counters()
                tile_events["hits"] += hits
                tile_events["misses"] += misses
        return {
            "repro_registry_cache_hits_total": counter_family(
                "Warm-tier cache hits, by registry tier.",
                [({"tier": name}, s["hits"]) for name, s in tiers.items()]),
            "repro_registry_cache_misses_total": counter_family(
                "Warm-tier cache misses, by registry tier.",
                [({"tier": name}, s["misses"])
                 for name, s in tiers.items()]),
            "repro_registry_cache_size": gauge_family(
                "Entries currently warm, by registry tier.",
                [({"tier": name}, s["size"]) for name, s in tiers.items()]),
            "repro_registry_cache_capacity": gauge_family(
                "Configured capacity, by registry tier.",
                [({"tier": name}, s["capacity"])
                 for name, s in tiers.items()]),
            "repro_engine_events": gauge_family(
                "EngineStats events summed over warm prepared engines.",
                [({"event": field}, value)
                 for field, value in engine_events.items()]),
            "repro_tile_cache_events": gauge_family(
                "Tile-result cache events summed over warm engines.",
                [({"event": name}, value)
                 for name, value in tile_events.items()]),
            "repro_zoo_requests_total": counter_family(
                "GENIEx zoo get-or-train calls, by outcome.",
                [({"outcome": name}, value)
                 for name, value in self.zoo.counters().items()]),
        }
