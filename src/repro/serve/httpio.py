"""Minimal HTTP/1.1 plumbing shared by the server and the fleet front-end.

One place owns the request parser (request line, headers, ``Content-Length``
body, keep-alive) and the matching asyncio client side, so the emulation
server (:mod:`repro.serve.server`) and the fleet front-end
(:mod:`repro.fleet.frontend`) — which must speak byte-identical HTTP to
proxy requests verbatim — can never drift apart.
"""

from __future__ import annotations

import asyncio

from repro.errors import ReproError

REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 413: "Payload Too Large",
           429: "Too Many Requests", 500: "Internal Server Error",
           502: "Bad Gateway", 503: "Service Unavailable"}


class PayloadTooLarge(ReproError, ValueError):
    """The declared request body exceeds the configured limit (HTTP 413)."""


async def read_request(reader: asyncio.StreamReader,
                       max_body_bytes: int):
    """Parse one HTTP/1.1 request off ``reader``.

    Returns ``(method, path, body, keep_alive, headers)`` with the header
    names lower-cased, or ``None`` on a clean EOF / malformed request line
    (the caller drops the connection). Raises :class:`PayloadTooLarge`
    *before* reading an oversized body so the caller can answer 413 and
    close without buffering it.
    """
    request_line = await reader.readline()
    if not request_line or request_line.strip() == b"":
        return None
    try:
        method, target, _version = \
            request_line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 128:
            return None
    length = int(headers.get("content-length", "0") or "0")
    if length < 0:
        return None
    if length > max_body_bytes:
        raise PayloadTooLarge(
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit")
    body = await reader.readexactly(length) if length else b""
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    path = target.split("?", 1)[0]
    return method.upper(), path, body, keep_alive, headers


def encode_response(status: int, body: bytes, content_type: str,
                    *, keep_alive: bool = True,
                    extra_headers: dict | None = None) -> bytes:
    """One full HTTP/1.1 response (head + body) as bytes."""
    head = (f"HTTP/1.1 {status} {REASONS.get(status, 'Error')}"
            f"\r\nContent-Type: {content_type}"
            f"\r\nContent-Length: {len(body)}"
            f"\r\nConnection: {'keep-alive' if keep_alive else 'close'}")
    if status == 429:
        head += "\r\nRetry-After: 1"
    for name, value in (extra_headers or {}).items():
        head += f"\r\n{name}: {value}"
    return head.encode() + b"\r\n\r\n" + body


def encode_request(method: str, path: str, body: bytes = b"",
                   headers: dict | None = None) -> bytes:
    """One full HTTP/1.1 request as bytes (keep-alive by default)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: fleet"
    merged = {"Connection": "keep-alive"}
    merged.update(headers or {})
    if body:
        merged.setdefault("Content-Type", "application/json")
    merged["Content-Length"] = str(len(body))
    for name, value in merged.items():
        head += f"\r\n{name}: {value}"
    return head.encode() + b"\r\n\r\n" + body


async def read_response(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 response off ``reader``.

    Returns ``(status, headers, body, keep_alive)``; raises
    ``ConnectionError`` on EOF before a full response (the caller decides
    whether a retry is safe). Chunked transfer encoding (the streaming
    ``net_predict`` answer) is de-chunked into one body — the front-end
    forwards it with a plain ``Content-Length`` — so the pooled
    connection is left clean either way.
    """
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionResetError("peer closed before the status line")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionResetError(
            f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if line == b"":
            raise ConnectionResetError("peer closed mid-headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = await _read_chunked(reader)
    else:
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return status, headers, body, keep_alive


async def _read_chunked(reader: asyncio.StreamReader) -> bytes:
    """Read a chunked body to its terminal frame; returns it de-chunked."""
    parts = []
    while True:
        size_line = await reader.readline()
        if not size_line:
            raise ConnectionResetError("peer closed mid-chunked-body")
        try:
            size = int(size_line.split(b";", 1)[0].strip(), 16)
        except ValueError:
            raise ConnectionResetError(
                f"malformed chunk size {size_line!r}") from None
        if size == 0:
            # Trailer section (we send none, but eat it to spec).
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            return b"".join(parts)
        parts.append(await reader.readexactly(size))
        await reader.readexactly(2)   # CRLF after each chunk's data
