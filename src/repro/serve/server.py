"""The asyncio HTTP front-end of the emulation service.

Stdlib-only: connections are handled with :func:`asyncio.start_server` and
a minimal HTTP/1.1 parser (request line, headers, ``Content-Length`` body,
keep-alive). Every response is JSON.

Endpoints
---------

===========================  ========================================
``GET  /healthz``            liveness probe
``GET  /metrics``            serving metrics — JSON by default, Prometheus
                             text exposition when the ``Accept`` header
                             asks for ``text/plain`` / openmetrics
``GET  /v1/debug/traces``    ring buffer of recent request traces
                             (nested per-stage spans)
``GET  /v1/models``          warm models in the registry
``POST /v1/models``          train/load a model spec into the registry
``POST /v1/crossbars``       program a conductance matrix, returns
                             ``crossbar_key`` for cheap later requests
``POST /v1/predict_fr``      distortion ratios fR for voltage vector(s)
``POST /v1/predict_currents``  non-ideal currents for voltage vector(s)
``POST /v1/weights``         prepare an MVM engine for a weight matrix,
                             returns ``weights_key``
``POST /v1/matmul``          full bit-sliced crossbar matmul
``POST /v1/mitigate``        run a spec's mitigation recipe on a dataset
                             handle, returns ``mitigated_key`` + metrics
``POST /v1/mitigated_predict``  logits from a warm mitigated model
``POST /v1/nets``            upload a serialized ``repro.nn`` model +
                             spec; compiles it into a cached
                             ``NetworkProgram``, returns ``net_key``
``POST /v1/net_predict``     whole-network logits from a warm compiled
                             net; concurrent requests share one fused
                             kernel call per layer (``stream: true``
                             chunks the response as NDJSON)
===========================  ========================================

Every ``POST /v1/*`` body that names a model may either carry the flat
``"model"``/``"engine"``/``"sim"`` wire objects or a single ``"spec"``
object — a full declarative :class:`repro.api.spec.EmulationSpec` in its
``to_dict()`` shape (what ``python -m repro spec`` prints). Both paths
resolve and cache through the same spec digests, and both accept a
``nonideality`` fault composition (inside the spec, or as a
``"nonideality"`` key of the flat model object) — faulty setups are
keyed apart from clean ones at every warm tier, so a clean request can
never be answered from a perturbed engine or vice versa.

Prediction and matmul requests are coalesced per warm object by the
:class:`MicrobatchScheduler`; a full queue surfaces as HTTP 429 with a
``Retry-After`` hint. Error mapping: protocol/shape/config problems are
400, unknown registry keys 404, backpressure 429, everything else 500.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import threading
from time import perf_counter

import numpy as np

from repro.errors import ConfigError, ReproError, ShapeError
from repro.obs import Trace, TraceBuffer, activate, deactivate, span
from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.serve.httpio import REASONS as _REASONS
from repro.serve.httpio import PayloadTooLarge as _PayloadTooLarge
from repro.serve.httpio import read_request
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (ProtocolError, decode_array, encode_array,
                                  parse_emulation_spec, parse_engine_kind,
                                  parse_mitigate_request, parse_model_spec,
                                  parse_net_predict, parse_net_upload,
                                  parse_sim_config, reject_mixed_identity)
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicrobatchScheduler, QueueFullError

_log = logging.getLogger("repro.serve")
_access_log = logging.getLogger("repro.serve.access")


class RawResponse:
    """A non-JSON handler result: pre-encoded body + its content type."""

    __slots__ = ("content_type", "body")

    def __init__(self, content_type: str, body: bytes):
        self.content_type = content_type
        self.body = body


class StreamingResponse:
    """A handler result streamed as chunked NDJSON.

    ``gen`` is an async generator of JSON-encodable payloads; the HTTP
    layer writes each as one line inside a ``Transfer-Encoding:
    chunked`` body. An exception mid-stream becomes a final
    ``{"error": ...}`` line and closes the connection (the 200 status
    line is already on the wire by then).
    """

    __slots__ = ("gen",)

    def __init__(self, gen):
        self.gen = gen


class _NotFound(ReproError, KeyError):
    """A referenced registry key is unknown (HTTP 404)."""


class EmulationServer:
    """Asyncio HTTP server wiring registry + scheduler + metrics."""

    # Bodies above this size have their JSON parse/encode offloaded to the
    # executor: a multi-MB matrix decoded on the event loop would stall
    # every flush-deadline timer and connection for its duration.
    OFFLOAD_BYTES = 256 * 1024

    def __init__(self, registry: ModelRegistry | None = None, *,
                 max_batch_rows: int = 64, flush_deadline_s: float = 0.002,
                 max_queue_rows: int = 4096, max_workers: int = 1,
                 max_body_bytes: int = 32 * 1024 * 1024,
                 idle_timeout_s: float = 120.0,
                 tracing: bool = True, trace_buffer_size: int = 256,
                 slow_request_s: float = 1.0):
        self.registry = registry or ModelRegistry()
        self.metrics = ServeMetrics()
        self.metrics.registry.register_collector(self.registry.obs_families)
        self.scheduler = MicrobatchScheduler(
            max_batch_rows=max_batch_rows,
            flush_deadline_s=flush_deadline_s,
            max_queue_rows=max_queue_rows,
            max_workers=max_workers,
            metrics=self.metrics)
        self.max_body_bytes = int(max_body_bytes)
        self.idle_timeout_s = float(idle_timeout_s)
        self.tracing = bool(tracing)
        self.slow_request_s = float(slow_request_s)
        self.traces = TraceBuffer(trace_buffer_size)
        self._request_ids = itertools.count(1)
        self.host = None
        self.port = None
        self._server = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._routes = {
            ("GET", "/healthz"): self._get_healthz,
            ("GET", "/metrics"): self._get_metrics,
            ("GET", "/v1/debug/traces"): self._get_traces,
            ("GET", "/v1/debug/obs"): self._get_obs,
            ("GET", "/v1/models"): self._get_models,
            ("POST", "/v1/models"): self._post_models,
            ("POST", "/v1/crossbars"): self._post_crossbars,
            ("POST", "/v1/predict_fr"): self._post_predict_fr,
            ("POST", "/v1/predict_currents"): self._post_predict_currents,
            ("POST", "/v1/weights"): self._post_weights,
            ("POST", "/v1/matmul"): self._post_matmul,
            ("POST", "/v1/mitigate"): self._post_mitigate,
            ("POST", "/v1/mitigated_predict"): self._post_mitigated_predict,
            ("POST", "/v1/nets"): self._post_nets,
            ("POST", "/v1/net_predict"): self._post_net_predict,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        _log.info("listening on http://%s:%s", self.host, self.port)

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()

    async def drain(self, grace_s: float = 30.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        New connections are refused immediately (the listener closes);
        requests already being processed get up to ``grace_s`` seconds to
        complete and are answered normally. Idle keep-alive connections
        are not waited for — only requests that have been read count.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self._idle.wait(), grace_s)
        except TimeoutError:
            _log.warning("drain grace of %.1fs expired with %d "
                         "request(s) still in flight", grace_s,
                         self._inflight)
        await self.scheduler.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        pending = False
        try:
            while True:
                try:
                    # The idle timeout bounds how long a silent or stalled
                    # client may pin this handler and its socket; a client
                    # whose keep-alive connection is reaped mid-send sees
                    # a clean close and reconnects.
                    request = await asyncio.wait_for(
                        self._read_request(reader), self.idle_timeout_s)
                except TimeoutError:
                    break
                except _PayloadTooLarge as exc:
                    # The body was never read, so the connection cannot be
                    # reused — but the client deserves to learn the limit.
                    self.metrics.record_response(413)
                    data = json.dumps({"error": str(exc)}).encode()
                    writer.write(
                        (f"HTTP/1.1 413 {_REASONS[413]}"
                         f"\r\nContent-Type: application/json"
                         f"\r\nContent-Length: {len(data)}"
                         f"\r\nConnection: close\r\n\r\n").encode() + data)
                    await writer.drain()
                    break
                except ValueError:
                    # Oversized request line/headers (StreamReader converts
                    # LimitOverrunError to ValueError) or a malformed
                    # Content-Length: drop the connection.
                    break
                if request is None:
                    break
                method, path, body, keep_alive, headers = request
                if self._draining:
                    # Requests already on a keep-alive connection are still
                    # answered during the grace window, but the connection
                    # closes after so the client moves elsewhere.
                    keep_alive = False
                self._inflight += 1
                self._idle.clear()
                pending = True
                endpoint = f"{method} {path}"
                rid = next(self._request_ids)
                t0 = perf_counter()
                trace = token = http_span = None
                if self.tracing:
                    trace = Trace(endpoint, trace_id=f"req-{rid}")
                    token = activate(trace)
                    http_span = trace.begin("http")
                try:
                    status, payload = await self._dispatch(
                        method, path, body, headers)
                finally:
                    if trace is not None:
                        trace.end(http_span)
                        deactivate(token)
                duration_s = perf_counter() - t0
                self.metrics.record_response(status)
                # Unknown paths share one latency label so a URL scanner
                # cannot blow up the endpoint cardinality.
                known = (method, path) in self._routes
                self.metrics.observe_http(
                    endpoint if known else "other", duration_s)
                rows = 0
                if trace is not None:
                    rows = trace.meta.get("rows", 0)
                    trace.meta["endpoint"] = endpoint
                    trace.meta["status"] = status
                    trace.meta["duration_ms"] = round(duration_s * 1e3, 3)
                    self.traces.append(trace.to_dict())
                _access_log.info(
                    'id=%d endpoint="%s" status=%d rows=%d '
                    'duration_ms=%.3f', rid, endpoint, status, rows,
                    duration_s * 1e3)
                if duration_s >= self.slow_request_s:
                    stages = ""
                    if trace is not None and http_span.children:
                        stages = " stages: " + ", ".join(
                            f"{child.name}={child.duration * 1e3:.1f}ms"
                            for child in http_span.children)
                    _log.warning(
                        "slow request id=%d endpoint=%s status=%d "
                        "duration_ms=%.1f%s", rid, endpoint, status,
                        duration_s * 1e3, stages)
                if isinstance(payload, StreamingResponse):
                    ok = await self._write_stream(writer, status, payload,
                                                  keep_alive)
                    pending = False
                    self._request_done()
                    if not keep_alive or not ok:
                        break
                    continue
                if isinstance(payload, RawResponse):
                    content_type = payload.content_type
                    data = payload.body
                elif len(body) > self.OFFLOAD_BYTES:
                    # Big request -> likely big response: encode off-loop
                    # so deadline timers and other connections keep moving.
                    content_type = "application/json"
                    data = await asyncio.get_running_loop().run_in_executor(
                        None, lambda: json.dumps(payload).encode())
                else:
                    content_type = "application/json"
                    data = json.dumps(payload).encode()
                connection = "keep-alive" if keep_alive else "close"
                head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}"
                        f"\r\nContent-Type: {content_type}"
                        f"\r\nContent-Length: {len(data)}"
                        f"\r\nConnection: {connection}")
                if status == 429:
                    head += "\r\nRetry-After: 1"
                writer.write(head.encode() + b"\r\n\r\n" + data)
                await writer.drain()
                pending = False
                self._request_done()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection handlers; treat
            # it as a normal close instead of surfacing a stack trace.
            pass
        finally:
            if pending:
                self._request_done()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _request_done(self) -> None:
        self._inflight -= 1
        if self._inflight <= 0:
            self._idle.set()

    async def _write_stream(self, writer: asyncio.StreamWriter, status: int,
                            payload: StreamingResponse,
                            keep_alive: bool) -> bool:
        """Write a chunked NDJSON body; returns False if the connection
        must close (an error surfaced after the status line went out)."""
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}"
             f"\r\nContent-Type: application/x-ndjson"
             f"\r\nTransfer-Encoding: chunked"
             f"\r\nConnection: {connection}\r\n\r\n").encode())
        ok = True
        try:
            async for item in payload.gen:
                line = json.dumps(item).encode() + b"\n"
                writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:
            # Too late for an error status: emit a terminal error line so
            # the client fails loudly, then close the connection.
            ok = False
            line = json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}).encode() + b"\n"
            writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return ok

    async def _read_request(self, reader: asyncio.StreamReader):
        return await read_request(reader, self.max_body_bytes)

    async def _dispatch(self, method: str, path: str, body: bytes,
                        headers: dict):
        handler = self._routes.get((method, path))
        if handler is None:
            if any(p == path for (_, p) in self._routes):
                return 405, {"error": f"method {method} not allowed "
                                      f"for {path}"}
            return 404, {"error": f"unknown endpoint {path}"}
        self.metrics.record_request(f"{method} {path}")
        try:
            if method == "POST":
                try:
                    if len(body) > self.OFFLOAD_BYTES:
                        loop = asyncio.get_running_loop()
                        parsed = await loop.run_in_executor(
                            None, json.loads, body)
                    else:
                        parsed = json.loads(body.decode() or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ProtocolError(f"invalid JSON body: {exc}") from exc
                if not isinstance(parsed, dict):
                    raise ProtocolError("request body must be a JSON object")
                return 200, await handler(parsed)
            return 200, await handler(headers)
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except _NotFound as exc:
            return 404, {"error": str(exc.args[0])}
        except (ProtocolError, ShapeError, ConfigError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500 path
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _get_healthz(self, headers: dict) -> dict:
        return {"status": "ok"}

    @staticmethod
    def _wants_prometheus(headers: dict) -> bool:
        accept = headers.get("accept", "").lower()
        return ("text/plain" in accept or "openmetrics" in accept
                or "prometheus" in accept)

    async def _get_metrics(self, headers: dict):
        if self._wants_prometheus(headers):
            # Prometheus text exposition straight off the obs registry
            # (instrument families + registry/zoo/engine collectors).
            text = render_prometheus(self.metrics.registry.snapshot())
            return RawResponse(_PROM_CONTENT_TYPE, text.encode())
        snapshot = self.metrics.snapshot()
        snapshot["queue"]["per_key"] = self.scheduler.queue_depths()
        snapshot["registry"] = self.registry.stats()
        return snapshot

    async def _get_traces(self, headers: dict) -> dict:
        return {"traces": self.traces.snapshot()}

    async def _get_obs(self, headers: dict) -> dict:
        """Raw obs-registry snapshot (families + collectors).

        The fleet front-end scrapes this to federate per-worker metric
        families into its own ``/metrics`` under a ``worker=`` label.
        """
        return {"families": self.metrics.registry.snapshot(),
                "summary": {
                    "inflight": self._inflight,
                    "queue_rows": self.scheduler.queue_rows,
                    "queue_depths": self.scheduler.queue_depths(),
                    "registry": self.registry.stats(),
                    "zoo": self.registry.zoo.counters(),
                    "latency": {
                        "http": self.metrics._latency_summary(
                            self.metrics._http_seconds),
                    },
                }}

    async def _get_models(self, headers: dict) -> dict:
        return {"models": self.registry.list_models()}

    async def _post_models(self, body: dict) -> dict:
        spec = parse_model_spec(body)
        key, emulator = await self.registry.emulator(spec)
        return {"model_key": key, "rows": emulator.rows,
                "cols": emulator.cols}

    async def _post_crossbars(self, body: dict) -> dict:
        key, warm = await self._resolve_crossbar(body)
        rows, cols = warm.conductance_s.shape
        return {"crossbar_key": key, "rows": rows, "cols": cols}

    async def _resolve_crossbar(self, body: dict):
        """A warm crossbar from ``crossbar_key`` or (model, conductances)."""
        with span("registry-resolve"):
            if "crossbar_key" in body:
                reject_mixed_identity(body, key_field="crossbar_key")
                key = str(body["crossbar_key"])
                warm = self.registry.crossbar(key)
                if warm is None:
                    raise _NotFound(f"unknown crossbar_key {key!r}; "
                                    f"register it via POST /v1/crossbars")
                return key, warm
            spec = parse_model_spec(body)
            conductances = decode_array(body, "conductances", ndim=(2,))
            return await self.registry.matrix_emulator(spec, conductances)

    async def _predict(self, body: dict, endpoint: str, field: str) -> dict:
        key, warm = await self._resolve_crossbar(body)
        voltages = decode_array(body, "voltages")
        single = voltages.ndim == 1
        rows = warm.conductance_s.shape[0]
        if voltages.shape[-1] != rows:
            raise ProtocolError(
                f"voltages must have {rows} entries per vector, "
                f"got shape {voltages.shape}")
        batch_fn = warm.predict_fr if field == "fr" \
            else warm.predict_currents
        result = await self.scheduler.submit(
            (endpoint, key), np.atleast_2d(voltages), batch_fn)
        if single:
            result = result[0]
        return {field: encode_array(result), "crossbar_key": key}

    async def _post_predict_fr(self, body: dict) -> dict:
        return await self._predict(body, "fr", "fr")

    async def _post_predict_currents(self, body: dict) -> dict:
        return await self._predict(body, "currents", "currents")

    async def _post_weights(self, body: dict) -> dict:
        warm = await self._resolve_engine(body)
        return {"weights_key": warm.key, "n_in": warm.n_in,
                "n_out": warm.n_out, "engine": warm.kind}

    async def _resolve_engine(self, body: dict):
        with span("registry-resolve"):
            if "weights_key" in body:
                reject_mixed_identity(body, key_field="weights_key")
                key = str(body["weights_key"])
                warm = self.registry.prepared_engine(key)
                if warm is None:
                    raise _NotFound(f"unknown weights_key {key!r}; "
                                    f"register it via POST /v1/weights")
                return warm
            weights = decode_array(body, "weights", ndim=(2,))
            if "spec" in body:
                # Declarative path: one EmulationSpec object carries engine
                # kind, crossbar, sim and emulator — exactly the to_dict()
                # shape `python -m repro spec` emits — and keys the warm
                # tier by spec.weights_key(weights). Mixing it with the
                # flat identity fields is rejected, not silently resolved.
                reject_mixed_identity(body)
                return await self.registry.engine_from_spec(
                    parse_emulation_spec(body), weights)
            spec = parse_model_spec(body)
            kind = parse_engine_kind(body)
            sim_config = parse_sim_config(body)
            return await self.registry.engine(spec, kind, sim_config,
                                              weights)

    async def _post_matmul(self, body: dict) -> dict:
        warm = await self._resolve_engine(body)
        x = decode_array(body, "x")
        single = x.ndim == 1
        if x.shape[-1] != warm.n_in:
            raise ProtocolError(
                f"x must have {warm.n_in} entries per vector, "
                f"got shape {x.shape}")
        result = await self.scheduler.submit(
            ("matmul", warm.key), np.atleast_2d(x), warm.matmul)
        if single:
            result = result[0]
        return {"y": encode_array(result), "weights_key": warm.key}

    async def _post_mitigate(self, body: dict) -> dict:
        spec, dataset, hidden, model_seed = parse_mitigate_request(body)
        with span("registry-resolve"):
            warm = await self.registry.mitigate(spec, dataset, hidden=hidden,
                                                model_seed=model_seed)
        return {"mitigated_key": warm.key, "spec_key": warm.spec_key,
                "sizes": list(warm.sizes), "metrics": warm.metrics,
                "from_cache": warm.from_cache}

    async def _post_mitigated_predict(self, body: dict) -> dict:
        if "mitigated_key" not in body:
            raise ProtocolError(
                "request requires a \"mitigated_key\" (from POST "
                "/v1/mitigate)")
        reject_mixed_identity(body, key_field="mitigated_key")
        key = str(body["mitigated_key"])
        with span("registry-resolve"):
            warm = self.registry.mitigated_model(key)
        if warm is None:
            raise _NotFound(f"unknown mitigated_key {key!r}; build it "
                            f"via POST /v1/mitigate")
        x = decode_array(body, "x")
        single = x.ndim == 1
        if x.shape[-1] != warm.sizes[0]:
            raise ProtocolError(
                f"x must have {warm.sizes[0]} entries per vector, "
                f"got shape {x.shape}")
        result = await self.scheduler.submit(
            ("mitigated", key), np.atleast_2d(x), warm.predict)
        if single:
            result = result[0]
        return {"logits": encode_array(result), "mitigated_key": key}


    async def _post_nets(self, body: dict) -> dict:
        wire, spec = parse_net_upload(body)
        with span("net-compile"):
            warm, outcome = await self.registry.net(wire, spec)
        self.metrics.record_net_upload(outcome)
        if outcome != "memory_hit":
            self.metrics.record_net_compile(warm.compile_seconds)
        return {"net_key": warm.key, "net_digest": warm.net_digest,
                "model_key": warm.model_key, "spec_key": warm.spec_key,
                "engine": warm.engine_kind,
                "batch_invariant": warm.batch_invariant,
                "n_layers": warm.n_layers,
                "n_mvm_layers": warm.n_mvm_layers, "n_in": warm.n_in,
                "from_cache": outcome != "compiled",
                "compile_seconds": round(warm.compile_seconds, 6)}

    async def _post_net_predict(self, body: dict):
        net_key, x, stream, chunk_rows = parse_net_predict(body)
        with span("registry-resolve"):
            warm = await self.registry.compiled_net(net_key)
        if warm is None:
            raise _NotFound(f"unknown net_key {net_key!r}; upload the "
                            f"net via POST /v1/nets")
        single = x.ndim == 1
        if x.shape[-1] != warm.n_in:
            raise ProtocolError(
                f"x must have {warm.n_in} entries per row, "
                f"got shape {x.shape}")
        x = np.atleast_2d(x)
        self.metrics.record_net_predict(x.shape[0])
        batch_fn = self._net_batch_fn(warm)
        if stream:
            return StreamingResponse(
                self._net_stream(warm, x, chunk_rows, batch_fn))
        result = await self.scheduler.submit(("net", warm.key), x, batch_fn)
        if single:
            result = result[0]
        return {"logits": encode_array(result), "net_key": warm.key}

    def _net_batch_fn(self, warm):
        """The scheduler batch function for one warm compiled net.

        Wraps ``predict`` with per-flush layer accounting: each flushed
        batch is one fused kernel call per MVM layer over all coalesced
        rows, which is exactly what ``repro_net_layer_rows`` records.
        """
        metrics = self.metrics

        def run(stacked: np.ndarray) -> np.ndarray:
            out = warm.predict(stacked)
            metrics.record_net_layers(warm.n_mvm_layers, stacked.shape[0])
            return out

        return run

    async def _net_stream(self, warm, x: np.ndarray,
                          chunk_rows: int | None, batch_fn):
        """Yield NDJSON payloads for a streamed net_predict.

        Chunks are submitted sequentially, so a huge request holds at
        most one chunk's logits in flight (bounded memory) while each
        chunk still coalesces with other requests' rows in the
        scheduler. The final line carries ``done`` + row count.
        """
        step = chunk_rows or self.scheduler.max_batch_rows
        total = x.shape[0]
        for index, start in enumerate(range(0, total, step)):
            chunk = x[start:start + step]
            result = await self.scheduler.submit(
                ("net", warm.key), chunk, batch_fn)
            yield {"chunk": index, "offset": start,
                   "logits": encode_array(result)}
        yield {"done": True, "rows": total, "net_key": warm.key}


class ServerThread:
    """Run an :class:`EmulationServer` on a background thread.

    Synchronous harness used by tests, the load benchmark and the CI smoke
    job:

    >>> with ServerThread(EmulationServer()) as handle:
    ...     client = ServeClient("127.0.0.1", handle.port)
    """

    def __init__(self, server: EmulationServer,
                 host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._startup_error = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._requested_port = port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start(self.host, self._requested_port)
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30 s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
