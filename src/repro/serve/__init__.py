"""Async crossbar-emulation service with dynamic microbatching.

The serving subsystem exposes the GENIEx stack over a stdlib-only JSON/HTTP
API. Concurrent single-vector requests for the same programmed crossbar are
coalesced by :class:`~repro.serve.scheduler.MicrobatchScheduler` into exactly
the large batches :class:`~repro.core.emulator.MatrixEmulator` and
:class:`~repro.funcsim.engine.CrossbarMvmEngine` are fast at, with bounded
queues, backpressure and a ``/metrics`` endpoint.

Layers:

* :mod:`repro.serve.protocol` — wire format (specs, arrays, errors);
* :mod:`repro.serve.metrics` — thread-safe serving counters/histograms;
* :mod:`repro.serve.scheduler` — per-key dynamic microbatching;
* :mod:`repro.serve.registry` — warm-model LRU over :class:`GeniexZoo`;
* :mod:`repro.serve.httpio` — shared HTTP/1.1 parsing/encoding (also
  used by the :mod:`repro.fleet` front-end);
* :mod:`repro.serve.server` — the asyncio HTTP server;
* :mod:`repro.serve.client` — a small blocking HTTP client.
"""

from repro.serve.client import (
    ClientConnectionError,
    ClientTimeoutError,
    ServeClient,
    ServerBusyError,
    ServerError,
)
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicrobatchScheduler, QueueFullError
from repro.serve.server import EmulationServer, ServerThread

__all__ = [
    "ClientConnectionError",
    "ClientTimeoutError",
    "EmulationServer",
    "MicrobatchScheduler",
    "ModelRegistry",
    "QueueFullError",
    "ServeClient",
    "ServerBusyError",
    "ServerError",
    "ServerThread",
]
