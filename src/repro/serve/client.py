"""Small blocking HTTP client for the emulation service.

Wraps :class:`http.client.HTTPConnection` with keep-alive, reconnect
retries, per-request timeouts, JSON encoding and numpy conversion. Each
:class:`ServeClient` owns one connection and is not thread-safe; give
each load-generator worker its own instance.

Retry policy — a request is re-sent exactly once, and only when it
provably never executed: the keep-alive socket died before the bytes
went out, or the connection was refused outright (a worker restarting
behind the fleet front-end). Every endpoint is content-addressed and
idempotent (predict/matmul are pure; registrations re-register), so the
one-shot retry is safe. Timeouts are *never* retried — the server may be
executing the request — and surface as :class:`ClientTimeoutError`
naming the endpoint; unreachable services surface as
:class:`ClientConnectionError` the same way.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from repro.errors import ReproError


class ServerError(ReproError, RuntimeError):
    """The server answered with a non-2xx status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServerBusyError(ServerError):
    """HTTP 429 — the microbatching queue is full; retry later."""


class ClientConnectionError(ReproError, ConnectionError):
    """The service could not be reached (the request never executed)."""


class ClientTimeoutError(ReproError, TimeoutError):
    """No answer within the timeout (the request may still be executing,
    so it is deliberately not retried)."""


def _identity_payload(payload: dict, model: dict | None, spec, *,
                      engine: str | None = None, sim: dict | None = None,
                      default_engine: str | None = None) -> dict:
    """Attach the model identity: flat ``model`` object or full ``spec``.

    ``spec`` may be a ``repro.api`` :class:`EmulationSpec` (anything with
    ``to_dict()``) or an already-encoded dict; the client stays decoupled
    from the spec classes themselves. Passing both is rejected — the spec
    is self-contained, and silently preferring one over the other would
    hide a mismatch from a half-migrated caller. Endpoints that take
    ``engine``/``sim`` pass them through here (with ``default_engine``
    naming the flat-path fallback); combining them with a spec is
    rejected for the same reason.
    """
    if spec is not None and model is not None:
        raise ValueError("pass either model=... or spec=..., not both "
                         "(a spec already carries the model identity)")
    if spec is not None:
        if engine is not None or sim is not None:
            raise ValueError("engine=/sim= are part of the spec; "
                             "don't pass them alongside spec=")
        payload["spec"] = spec.to_dict() if hasattr(spec, "to_dict") \
            else dict(spec)
    elif model is not None:
        payload["model"] = model
        if default_engine is not None:
            payload["engine"] = engine or default_engine
        if sim is not None:
            payload["sim"] = sim
    else:
        raise ValueError("pass either a model object or a spec")
    return payload


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _endpoint(self, method: str, path: str) -> str:
        return f"{method} {path} on {self.host}:{self.port}"

    def _request(self, method: str, path: str, payload: dict | None = None,
                 *, timeout: float | None = None, accept: str | None = None,
                 raw: bool = False, ndjson: bool = False):
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        if accept is not None:
            headers["Accept"] = accept
        request_timeout = self.timeout if timeout is None else float(timeout)
        for attempt in (0, 1):
            conn = self._connection()
            conn.timeout = request_timeout
            if conn.sock is not None:
                conn.sock.settimeout(request_timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
            except ConnectionRefusedError as exc:
                # Nothing is listening (a worker restarting, a front-end
                # not yet bound): the request never executed, so one
                # short-fuse retry, then a clear error.
                self.close()
                if attempt:
                    raise ClientConnectionError(
                        f"{self._endpoint(method, path)}: connection "
                        f"refused (after one retry); is the service "
                        f"running?") from exc
                time.sleep(0.05)
                continue
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # The request never went out (dead keep-alive socket):
                # safe to reconnect and re-send, even for POSTs.
                self.close()
                if attempt:
                    raise ClientConnectionError(
                        f"{self._endpoint(method, path)}: send failed "
                        f"after reconnect: {exc}") from exc
                continue
            try:
                response = conn.getresponse()
                data = response.read()
                break
            except TimeoutError as exc:
                # NEVER retried: the server may be executing the request,
                # and repeating a POST would double the work.
                self.close()
                raise ClientTimeoutError(
                    f"{self._endpoint(method, path)}: no response within "
                    f"{request_timeout:g}s (not retried — the request "
                    f"may still be executing)") from exc
            except (http.client.RemoteDisconnected,
                    ConnectionResetError, BrokenPipeError) as exc:
                # Server closed the idle connection as our bytes arrived —
                # the one failure mode where re-sending is safe. Other
                # errors are NOT retried: the request may be executing.
                self.close()
                if attempt:
                    raise ClientConnectionError(
                        f"{self._endpoint(method, path)}: peer closed "
                        f"the connection mid-request (after one "
                        f"retry): {exc}") from exc
            except (http.client.HTTPException, OSError):
                self.close()
                raise
        if raw and 200 <= response.status < 300:
            return data.decode()
        try:
            if ndjson and 200 <= response.status < 300:
                # Streamed responses are NDJSON (http.client already
                # de-chunked the transfer encoding); one list entry per
                # line, in stream order.
                parsed = [json.loads(line)
                          for line in data.decode().splitlines()
                          if line.strip()]
            else:
                parsed = json.loads(data.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": data.decode(errors="replace")}
        if not 200 <= response.status < 300:
            message = parsed.get("error", "") if isinstance(parsed, dict) \
                else str(parsed)
            if response.status == 429:
                raise ServerBusyError(response.status, message)
            raise ServerError(response.status, message)
        return parsed

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self, *, timeout: float | None = None) -> dict:
        return self._request("GET", "/healthz", timeout=timeout)

    def metrics(self, *, timeout: float | None = None) -> dict:
        return self._request("GET", "/metrics", timeout=timeout)

    def prometheus_metrics(self, *, timeout: float | None = None) -> str:
        """The ``/metrics`` endpoint in Prometheus text exposition.

        Sends ``Accept: text/plain`` (the content-negotiation trigger)
        and returns the raw exposition text; :meth:`metrics` keeps the
        default JSON shape. Goes through the shared request path, so
        typed errors and the idempotent reconnect retry apply here too.
        """
        return self._request("GET", "/metrics", timeout=timeout,
                             accept="text/plain", raw=True)

    def traces(self, *, timeout: float | None = None) -> list:
        """Recent request traces from ``/v1/debug/traces``."""
        return self._request("GET", "/v1/debug/traces",
                             timeout=timeout)["traces"]

    def models(self, *, timeout: float | None = None) -> list:
        return self._request("GET", "/v1/models",
                             timeout=timeout)["models"]

    def load_model(self, model: dict | None = None, *,
                   spec=None, timeout: float | None = None) -> dict:
        """Train (or load) a model spec into the server's warm registry.

        Takes the flat ``model`` wire object or a declarative ``spec``
        (an :class:`repro.api.spec.EmulationSpec` or its ``to_dict()``
        shape).
        """
        return self._request("POST", "/v1/models",
                             _identity_payload({}, model, spec),
                             timeout=timeout)

    def register_crossbar(self, model: dict | None = None,
                          conductances=None, *, spec=None,
                          timeout: float | None = None) -> str:
        """Program a conductance matrix; returns its ``crossbar_key``."""
        if conductances is None:
            raise ValueError("conductances are required")
        payload = _identity_payload(
            {"conductances": np.asarray(conductances).tolist()},
            model, spec)
        return self._request("POST", "/v1/crossbars", payload,
                             timeout=timeout)["crossbar_key"]

    def _predict(self, path: str, field: str, voltages, *,
                 model: dict | None = None, conductances=None,
                 crossbar_key: str | None = None, spec=None,
                 timeout: float | None = None) -> np.ndarray:
        voltages = np.asarray(voltages)
        payload: dict = {"voltages": voltages.tolist()}
        if crossbar_key is not None:
            if model is not None or spec is not None \
                    or conductances is not None:
                raise ValueError(
                    "crossbar_key= already names the warm crossbar; "
                    "don't pass model=/spec=/conductances= alongside it")
            payload["crossbar_key"] = crossbar_key
        else:
            if (model is None and spec is None) or conductances is None:
                raise ValueError(
                    "pass either crossbar_key or model/spec + conductances")
            payload = _identity_payload(payload, model, spec)
            payload["conductances"] = np.asarray(conductances).tolist()
        return np.asarray(self._request("POST", path, payload,
                                        timeout=timeout)[field])

    def predict_fr(self, voltages, **kwargs) -> np.ndarray:
        """Distortion ratios fR; see :meth:`predict_currents` for kwargs."""
        return self._predict("/v1/predict_fr", "fr", voltages, **kwargs)

    def predict_currents(self, voltages, **kwargs) -> np.ndarray:
        """Non-ideal currents for ``voltages`` (``(rows,)`` or
        ``(B, rows)``), addressed by ``crossbar_key=...`` or
        ``model=... , conductances=...``."""
        return self._predict("/v1/predict_currents", "currents", voltages,
                             **kwargs)

    def register_weights(self, model: dict | None = None, weights=None, *,
                         engine: str | None = None,
                         sim: dict | None = None, spec=None,
                         timeout: float | None = None) -> str:
        """Prepare an MVM engine for a weight matrix; returns its key.

        A declarative ``spec`` replaces the ``model``/``engine``/``sim``
        trio (passing both is an error — the spec already carries them).
        Either way the server keys the warm engine by
        ``registry.serving_spec(spec).weights_key(weights)`` — the spec
        digest after the server normalises the runtime node to its own
        policy, *not* ``spec.weights_key`` verbatim. On the flat path
        ``engine`` defaults to ``geniex``.
        """
        if weights is None:
            raise ValueError("weights are required")
        payload = _identity_payload(
            {"weights": np.asarray(weights).tolist()}, model, spec,
            engine=engine, sim=sim, default_engine="geniex")
        return self._request("POST", "/v1/weights", payload,
                             timeout=timeout)["weights_key"]

    def matmul(self, x, *, weights_key: str | None = None,
               model: dict | None = None, weights=None,
               engine: str | None = None,
               sim: dict | None = None, spec=None,
               timeout: float | None = None) -> np.ndarray:
        """Bit-sliced crossbar product for ``x`` (``(K,)`` or ``(B, K)``).

        Address the engine by ``weights_key=`` (from
        :meth:`register_weights`), by ``spec= + weights=``, or by the
        flat ``model= + weights=`` wire format (where ``engine``
        defaults to ``geniex``).
        """
        x = np.asarray(x)
        payload: dict = {"x": x.tolist()}
        if weights_key is not None:
            if model is not None or spec is not None or weights is not None \
                    or engine is not None or sim is not None:
                raise ValueError(
                    "weights_key= already names the warm engine; don't "
                    "pass model=/spec=/weights=/engine=/sim= alongside it")
            payload["weights_key"] = weights_key
        else:
            if (model is None and spec is None) or weights is None:
                raise ValueError(
                    "pass either weights_key or model/spec + weights")
            payload["weights"] = np.asarray(weights).tolist()
            payload = _identity_payload(payload, model, spec,
                                        engine=engine, sim=sim,
                                        default_engine="geniex")
        return np.asarray(self._request("POST", "/v1/matmul", payload,
                                        timeout=timeout)["y"])

    def mitigate(self, *, spec, dataset, hidden=None,
                 seed: int | None = None,
                 timeout: float | None = None) -> dict:
        """Run the spec's mitigation recipe server-side on a dataset.

        ``spec`` must carry a non-identity ``mitigation`` node with
        ``noise.epochs >= 1`` (the server trains the classifier itself).
        ``dataset`` is a content-addressable handle — a name like
        ``"blobs"`` or a ``{"name": ..., "n_train": ..., ...}`` dict.
        ``hidden``/``seed`` pick the classifier architecture (defaults
        ``[32]`` / ``0``). Returns the response dict: ``mitigated_key``
        (address for :meth:`mitigated_predict`), ``sizes``, ``metrics``
        (float/mitigated/baseline accuracies) and ``from_cache``.
        """
        payload = _identity_payload({}, None, spec)
        payload["dataset"] = dataset
        net: dict = {}
        if hidden is not None:
            net["hidden"] = [int(h) for h in hidden]
        if seed is not None:
            net["seed"] = int(seed)
        if net:
            payload["net"] = net
        return self._request("POST", "/v1/mitigate", payload,
                             timeout=timeout)

    def mitigated_predict(self, x, *, mitigated_key: str,
                          timeout: float | None = None) -> np.ndarray:
        """Mitigated logits for ``x`` (``(F,)`` or ``(B, F)``) from a
        warm mitigated model (key from :meth:`mitigate`)."""
        payload = {"mitigated_key": mitigated_key,
                   "x": np.asarray(x).tolist()}
        return np.asarray(self._request(
            "POST", "/v1/mitigated_predict", payload,
            timeout=timeout)["logits"])

    def upload_net(self, net, *, spec, input_shape=None,
                   timeout: float | None = None) -> dict:
        """Upload a network for model-level serving; returns the response.

        ``net`` is a :class:`repro.nn.Module` (serialized client-side
        via :func:`repro.nn.serialization.net_to_wire`) or an
        already-encoded wire dict. ``spec`` picks the emulation the
        server compiles against. ``input_shape`` (per-sample, e.g.
        ``(1, 28, 28)``) is required for models whose first layers are
        spatial. The response's ``net_key`` addresses
        :meth:`net_predict`; uploads are content-addressed, so
        re-uploading the same net + spec is a cache hit.
        """
        if isinstance(net, dict):
            wire = net
        else:
            from repro.nn.serialization import net_to_wire
            wire = net_to_wire(net, input_shape=input_shape)
        payload = _identity_payload({}, None, spec)
        payload["net"] = wire
        return self._request("POST", "/v1/nets", payload, timeout=timeout)

    def net_predict(self, x, *, net_key: str, stream: bool = False,
                    chunk_rows: int | None = None,
                    timeout: float | None = None) -> np.ndarray:
        """Whole-network logits for ``x`` (``(F,)`` or ``(B, F)``).

        ``net_key`` comes from :meth:`upload_net`. With ``stream=True``
        the server answers chunked NDJSON (``chunk_rows`` rows per
        chunk); the chunks are reassembled here into one array, so the
        result is identical either way — streaming only bounds peak
        memory for large batches.
        """
        x = np.asarray(x)
        single = x.ndim == 1
        payload: dict = {"net_key": net_key, "x": x.tolist()}
        if chunk_rows is not None:
            payload["chunk_rows"] = int(chunk_rows)
        if not stream:
            return np.asarray(self._request(
                "POST", "/v1/net_predict", payload,
                timeout=timeout)["logits"])
        payload["stream"] = True
        lines = self._request("POST", "/v1/net_predict", payload,
                              timeout=timeout, ndjson=True)
        if not isinstance(lines, list):
            raise ServerError(200, f"malformed stream response: {lines!r}")
        chunks = []
        done = False
        for line in lines:
            if not isinstance(line, dict):
                raise ServerError(200, f"malformed stream line: {line!r}")
            if "error" in line:
                raise ServerError(200, line["error"])
            if line.get("done"):
                done = True
            elif "logits" in line:
                chunks.append(np.asarray(line["logits"]))
        if not done or not chunks:
            raise ClientConnectionError(
                f"{self._endpoint('POST', '/v1/net_predict')}: stream "
                f"ended without a terminal 'done' line (connection lost "
                f"mid-stream?)")
        result = np.concatenate(chunks, axis=0)
        return result[0] if single else result
