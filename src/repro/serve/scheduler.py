"""Dynamic microbatching: coalesce concurrent requests into large batches.

The batched solve pipeline (PR 1) made one ``(64, rows)`` call ~80x cheaper
than 64 ``(1, rows)`` calls, but a serving front-end receives those 64
vectors as *independent concurrent requests*. The scheduler closes that gap:
requests queue per *key* — one key per (endpoint, programmed crossbar) or
(endpoint, prepared engine) — and a queue is flushed into a single batched
model call when either

* the pending row count reaches ``max_batch_rows`` (*full* flush),
* ``flush_deadline_s`` elapses since the queue became non-empty while the
  key was idle (*deadline* flush), bounding the latency a lone request can
  pay, or
* a batch for the key finishes while requests are queued (*completion*
  flush — continuous batching): arrivals during an in-flight batch
  accumulate instead of being fragmented by a ticking deadline timer, and
  flush as one batch the moment the worker frees up, so the effective
  batch size adapts itself to the offered load.

Per-key isolation is structural: a key's batches only ever contain rows for
that key, so a slow model cannot delay another model's flushes and results
can never be served across keys.

Backpressure: each key bounds its pending rows at ``max_queue_rows``;
beyond it ``submit`` raises :class:`QueueFullError`, which the HTTP layer
maps to 429. The bound is per key so one hot model saturating its queue
does not reject traffic for cold models.

Batch functions run on a small thread-pool executor (default one worker),
keeping the event loop free to accept requests while NumPy works. At most
one batch per key is in flight at any time — tile models, engine stats and
solver factorisations are not thread-safe — so ``max_workers > 1``
parallelises across *different* keys only, and is always safe.

Tracing: ``submit`` captures the caller's active :class:`~repro.obs.Trace`
with each queued request. When a batch flushes, every traced request gets
a ``queue-wait`` span (enqueue → flush) and a ``batch-execute`` span
(flush → result). Because ``run_in_executor`` does not propagate
contextvars, the executor callable activates a private collector trace
around ``batch_fn``; whatever spans the model records (engine-compute,
tile shards) are grafted as ``batch-execute`` children into *every*
request of the batch — the compute genuinely served them all.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.obs import Trace, activate, current_trace, deactivate
from repro.serve.metrics import ServeMetrics


class QueueFullError(ReproError, RuntimeError):
    """A per-key request queue is at capacity (backpressure)."""


class _KeyQueue:
    """Pending requests of one scheduling key."""

    __slots__ = ("items", "n_rows", "timer", "inflight")

    def __init__(self):
        self.items = deque()     # (rows, batch_fn, future, trace, t_enq)
        self.n_rows = 0
        self.timer = None        # asyncio.TimerHandle for the deadline
        self.inflight = 0        # batches launched but not yet completed


class MicrobatchScheduler:
    """Per-key dynamic microbatching over batched NumPy model calls."""

    def __init__(self, *, max_batch_rows: int = 64,
                 flush_deadline_s: float = 0.002,
                 max_queue_rows: int = 4096,
                 max_workers: int = 1,
                 metrics: ServeMetrics | None = None):
        if max_batch_rows < 1:
            raise ConfigError("max_batch_rows must be >= 1")
        if flush_deadline_s < 0:
            raise ConfigError("flush_deadline_s must be >= 0")
        if max_queue_rows < max_batch_rows:
            raise ConfigError("max_queue_rows must be >= max_batch_rows")
        if max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_batch_rows = int(max_batch_rows)
        self.flush_deadline_s = float(flush_deadline_s)
        self.max_queue_rows = int(max_queue_rows)
        self.metrics = metrics or ServeMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve-batch")
        self._queues: dict = {}
        self._inflight: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def queue_rows(self) -> int:
        """Total rows currently queued across all keys."""
        return sum(q.n_rows for q in self._queues.values())

    def queue_depths(self) -> dict:
        """Pending rows per key (diagnostic view for ``/metrics``)."""
        return {str(key): q.n_rows for key, q in self._queues.items()
                if q.n_rows}

    # ------------------------------------------------------------------
    async def submit(self, key, rows: np.ndarray, batch_fn) -> np.ndarray:
        """Queue ``rows`` (``(b, n)``) under ``key`` and await the result.

        ``batch_fn`` maps a stacked ``(B, n)`` array to a ``(B, m)`` array;
        all submitters of one key must pass an equivalent function (the
        registry guarantees this by deriving the key from the model
        identity). Returns this request's ``(b, m)`` slice of the batched
        result. Raises :class:`QueueFullError` when the key's queue is full.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        rows = np.atleast_2d(np.asarray(rows))
        n_rows = rows.shape[0]
        if n_rows > self.max_queue_rows:
            # Permanently too large — no amount of retrying can ever fit
            # it, so this must not look like transient backpressure.
            raise ConfigError(
                f"request of {n_rows} rows exceeds the queue capacity "
                f"({self.max_queue_rows}); split it into smaller batches")
        queue = self._queues.get(key)
        pending = queue.n_rows if queue is not None else 0
        if pending + n_rows > self.max_queue_rows:
            # Reject before registering anything: a bounced request on a
            # fresh key must not leave an empty queue entry behind.
            raise QueueFullError(
                f"queue for key {key!r} is full "
                f"({pending} rows pending, limit "
                f"{self.max_queue_rows}); retry later")
        if queue is None:
            queue = self._queues[key] = _KeyQueue()
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        trace = current_trace()
        if trace is not None:
            trace.meta["rows"] = trace.meta.get("rows", 0) + n_rows
        entry = (rows, batch_fn, future, trace, perf_counter())
        queue.items.append(entry)
        queue.n_rows += n_rows
        self.metrics.record_queue_delta(n_rows)
        try:
            if queue.n_rows >= self.max_batch_rows:
                self._drain_key(key, queue, "full")
            elif queue.inflight == 0 and queue.timer is None:
                # Partial batch while the key is idle: start the deadline
                # clock. While a batch is in flight, partial arrivals simply
                # accumulate — they are flushed the moment it completes
                # (continuous batching), so a ticking timer would only
                # fragment them into needlessly small batches.
                queue.timer = loop.call_later(
                    self.flush_deadline_s, self._on_deadline, key)
        except BaseException:
            self._rollback_submit(key, queue, entry, n_rows)
            raise
        return await future

    def _rollback_submit(self, key, queue: _KeyQueue, entry,
                         n_rows: int) -> None:
        """Undo one enqueue after a failed flush trigger.

        Keeps the ``queue_rows`` gauge truthful: the +delta recorded on
        enqueue is reversed iff the entry is still queued (an entry
        already taken into a batch had its delta reversed by the take).
        """
        # Identity scan, not ``in``: entries hold numpy arrays, whose
        # ``==`` is elementwise and would poison tuple comparison.
        for i, item in enumerate(queue.items):
            if item is entry:
                del queue.items[i]
                queue.n_rows -= n_rows
                self.metrics.record_queue_delta(-n_rows)
                break
        future = entry[2]
        if future.done() and not future.cancelled():
            # The failed drain may have parked the error on the future;
            # submit re-raises it directly, so mark it retrieved.
            future.exception()
        if not queue.items and queue.inflight == 0:
            if queue.timer is not None:
                queue.timer.cancel()
                queue.timer = None
            self._queues.pop(key, None)

    # ------------------------------------------------------------------
    def _on_deadline(self, key) -> None:
        queue = self._queues.get(key)
        if queue is None:
            return
        queue.timer = None
        if queue.items:
            self._drain_key(key, queue, "deadline")
        elif queue.inflight == 0:
            del self._queues[key]

    def _drain_key(self, key, queue: _KeyQueue, reason: str) -> None:
        """Launch flush tasks for a key.

        ``full`` flushes while a whole batch is pending; ``deadline``,
        ``completion`` and ``drain`` flush everything, partial tail
        included. Leftover rows after a ``full`` drain (a request
        straddling the batch boundary keeps its rows together) wait for
        more traffic, the in-flight batch's completion, or the deadline.
        """
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        loop = asyncio.get_running_loop()
        # At most ONE batch of a key is ever in flight: tile models, engine
        # stats and solver factorisations are not thread-safe, so with
        # ``max_workers > 1`` concurrent flushes of the same key would race
        # on shared state. Surplus full batches launch from the completion
        # cascade instead; different keys still run in parallel.
        while queue.items and queue.inflight == 0:
            if reason == "full" and queue.n_rows < self.max_batch_rows:
                break
            batch, batch_rows = self._take_batch(queue)
            self.metrics.record_queue_delta(-batch_rows)
            try:
                self.metrics.record_batch(batch_rows, len(batch), reason)
                task = loop.create_task(
                    self._run_batch(key, queue, batch, batch_rows, reason))
            except BaseException as exc:
                # The rows already left the queue (and the gauge); the
                # batch can no longer run, so its futures must fail
                # rather than hang, and an emptied queue must not leak.
                for _, _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(
                            exc if isinstance(exc, Exception)
                            else RuntimeError(f"batch launch failed: {exc}"))
                if not queue.items and queue.inflight == 0:
                    self._queues.pop(key, None)
                raise
            queue.inflight += 1
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        if queue.items:
            if queue.inflight == 0 and queue.timer is None:
                queue.timer = loop.call_later(
                    self.flush_deadline_s, self._on_deadline, key)
        elif queue.inflight == 0:
            del self._queues[key]

    def _take_batch(self, queue: _KeyQueue):
        """Pop whole requests greedily up to ``max_batch_rows``.

        Requests are never split across flushes — a batched result must be
        computed from one contiguous stacked call for the response to be a
        pure slice of it — so a single oversized request (rows >
        ``max_batch_rows``) forms a batch of its own.
        """
        batch = []
        batch_rows = 0
        while queue.items:
            rows = queue.items[0][0].shape[0]
            if batch and batch_rows + rows > self.max_batch_rows:
                break
            batch.append(queue.items.popleft())
            batch_rows += rows
        queue.n_rows -= batch_rows
        return batch, batch_rows

    async def _run_batch(self, key, queue: _KeyQueue, batch,
                         batch_rows: int, reason: str) -> None:
        batch_fn = batch[0][1]
        loop = asyncio.get_running_loop()
        t_flush = perf_counter()
        traced = False
        for _, _, _, trace, t_enq in batch:
            wait_s = t_flush - t_enq
            self.metrics.record_queue_wait(wait_s)
            if trace is not None:
                traced = True
                trace.add_span("queue-wait", t_enq, wait_s)
        collected: list = []
        if traced:
            # contextvars do not cross run_in_executor: activate a fresh
            # collector trace on the worker thread, and graft whatever the
            # model records (engine-compute, shards) into every request.
            def fn(stacked, _fn=batch_fn):
                collector = Trace("batch-execute", max_spans=64)
                token = activate(collector)
                try:
                    return _fn(stacked)
                finally:
                    deactivate(token)
                    collected.extend(collector.spans())
        else:
            fn = batch_fn
        try:
            try:
                # Stacking stays inside the guard: if it fails (e.g.
                # MemoryError) the futures must still resolve and the
                # inflight count must still drop.
                arrays = [rows for rows, _, _, _, _ in batch]
                stacked = arrays[0] if len(arrays) == 1 \
                    else np.concatenate(arrays)
                result = await loop.run_in_executor(self._executor, fn,
                                                    stacked)
                result = np.asarray(result)
                if result.shape[0] != batch_rows:
                    raise RuntimeError(
                        f"batch function returned {result.shape[0]} rows "
                        f"for a {batch_rows}-row batch")
            except Exception as exc:
                for _, _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            offset = 0
            for rows, _, future, _, _ in batch:
                n = rows.shape[0]
                if not future.done():
                    future.set_result(result[offset:offset + n])
                offset += n
        finally:
            t_done = perf_counter()
            self.metrics.record_batch_execute(t_done - t_flush)
            for _, _, _, trace, _ in batch:
                if trace is not None:
                    trace.add_span(
                        "batch-execute", t_flush, t_done - t_flush,
                        children=collected,
                        meta={"rows": batch_rows, "requests": len(batch),
                              "reason": reason})
            queue.inflight -= 1
            if queue.items:
                # Requests that arrived (or were left over) while this
                # batch was computing have waited at least one batch's
                # latency — flush them now at whatever size accumulated.
                # During shutdown the cascade continues as "drain" so
                # close() empties the queue one batch at a time.
                self._drain_key(key, queue,
                                "drain" if self._closed else "completion")
            elif queue.inflight == 0 and queue.timer is None:
                self._queues.pop(key, None)

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Flush every pending queue, await in-flight batches, shut down."""
        if self._closed:
            return
        self._closed = True
        for key, queue in list(self._queues.items()):
            if queue.timer is not None:
                queue.timer.cancel()
                queue.timer = None
            if queue.items:
                self._drain_key(key, queue, "drain")
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
