"""Serving metrics on top of the :mod:`repro.obs` registry.

One :class:`ServeMetrics` instance is shared between the asyncio event
loop (request accounting) and the scheduler's executor threads (batch
accounting). Every figure lives in an :class:`~repro.obs.MetricsRegistry`
instrument — the Prometheus ``/metrics`` exposition renders straight
from ``self.registry`` — while :meth:`snapshot` keeps producing the
established JSON object (with a new ``latency`` section) for the JSON
``/metrics`` surface and existing dashboards.

Hot-path discipline: children are resolved once (memoised per endpoint /
status / reason) so the per-event cost is a lock-guarded add, never a
name lookup.
"""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry

#: Batch-size buckets: powers of two up to the row cap, in rows.
BATCH_ROWS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, float("inf"))


class ServeMetrics:
    """Cumulative serving metrics for one server instance.

    Each server owns its registry by default so several servers booted in
    one test process never cross-pollute; pass a shared registry to
    aggregate.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests accepted, by endpoint.", labelnames=("endpoint",))
        self._responses = reg.counter(
            "repro_http_responses_total",
            "HTTP responses sent, by status code.", labelnames=("status",))
        self._rejected = reg.counter(
            "repro_http_rejected_total",
            "Requests rejected with 429 by queue backpressure.")
        self._http_seconds = reg.histogram(
            "repro_http_request_duration_seconds",
            "End-to-end request latency, by endpoint.",
            labelnames=("endpoint",))
        self._queue_wait_seconds = reg.histogram(
            "repro_queue_wait_seconds",
            "Time a request's rows waited in the microbatch queue.")
        self._batch_execute_seconds = reg.histogram(
            "repro_batch_execute_seconds",
            "Executor time per flushed batch (stack + compute + split).")
        self._batches = reg.counter(
            "repro_microbatch_batches_total",
            "Flushed microbatches, by flush reason.", labelnames=("reason",))
        self._batched_rows = reg.counter(
            "repro_microbatch_rows_total",
            "Rows executed through flushed microbatches.")
        self._batched_requests = reg.counter(
            "repro_microbatch_requests_total",
            "Requests coalesced into flushed microbatches.")
        self._batch_rows_hist = reg.histogram(
            "repro_microbatch_batch_rows",
            "Rows per flushed microbatch.", buckets=BATCH_ROWS_BUCKETS)
        self._queue_rows = reg.gauge(
            "repro_queue_rows", "Rows currently queued for batching.")
        self._queue_rows_peak = reg.gauge(
            "repro_queue_rows_peak", "High-water mark of queued rows.")
        # Model-level serving (uploaded networks / compiled programs).
        self._net_uploads = reg.counter(
            "repro_net_uploads_total",
            "Network uploads, by outcome (compiled/memory_hit/disk_hit).",
            labelnames=("outcome",))
        self._net_requests = reg.counter(
            "repro_net_predict_requests_total",
            "net_predict requests accepted.")
        self._net_rows = reg.counter(
            "repro_net_predict_rows_total",
            "Input rows (images) served through net_predict.")
        self._net_compile_seconds = reg.histogram(
            "repro_net_compile_seconds",
            "Server-side network compile time (rebuild + convert_to_mvm "
            "+ compile_network).")
        self._net_layer_execs = reg.counter(
            "repro_net_layer_executions_total",
            "Fused kernel calls: one per MVM layer per flushed net batch.")
        self._net_layer_rows = reg.histogram(
            "repro_net_layer_rows",
            "Rows per MVM-layer execution (cross-request coalescing shows "
            "as rows > 1).", buckets=BATCH_ROWS_BUCKETS)
        # Memoised label children (hot path: one dict hit, no kwargs).
        self._by_endpoint: dict = {}
        self._by_status: dict = {}
        self._by_reason: dict = {}
        self._by_net_outcome: dict = {}
        self._lat_by_endpoint: dict = {}
        # The queue gauge needs read-modify-write for the peak; small
        # dedicated lock rather than abusing an instrument's.
        self._queue_lock = threading.Lock()
        # Exact rows -> batches counts for the legacy JSON histogram.
        self._rows_exact: dict = {}
        self._rows_exact_lock = threading.Lock()

    # ------------------------------------------------------------------
    def record_request(self, endpoint: str) -> None:
        child = self._by_endpoint.get(endpoint)
        if child is None:
            child = self._by_endpoint[endpoint] = \
                self._requests.labels(endpoint=endpoint)
        child.inc()

    def record_response(self, status: int) -> None:
        child = self._by_status.get(status)
        if child is None:
            child = self._by_status[status] = \
                self._responses.labels(status=status)
        child.inc()
        if status == 429:
            self._rejected.inc()

    def observe_http(self, endpoint: str, duration_s: float) -> None:
        child = self._lat_by_endpoint.get(endpoint)
        if child is None:
            child = self._lat_by_endpoint[endpoint] = \
                self._http_seconds.labels(endpoint=endpoint)
        child.observe(duration_s)

    def record_queue_wait(self, duration_s: float) -> None:
        self._queue_wait_seconds.observe(duration_s)

    def record_batch_execute(self, duration_s: float) -> None:
        self._batch_execute_seconds.observe(duration_s)

    def record_batch(self, rows: int, requests: int, reason: str) -> None:
        child = self._by_reason.get(reason)
        if child is None:
            child = self._by_reason[reason] = \
                self._batches.labels(reason=reason)
        child.inc()
        self._batched_rows.inc(rows)
        self._batched_requests.inc(requests)
        self._batch_rows_hist.observe(rows)
        with self._rows_exact_lock:
            self._rows_exact[rows] = self._rows_exact.get(rows, 0) + 1

    def record_net_upload(self, outcome: str) -> None:
        child = self._by_net_outcome.get(outcome)
        if child is None:
            child = self._by_net_outcome[outcome] = \
                self._net_uploads.labels(outcome=outcome)
        child.inc()

    def record_net_compile(self, duration_s: float) -> None:
        self._net_compile_seconds.observe(duration_s)

    def record_net_predict(self, rows: int) -> None:
        self._net_requests.inc()
        self._net_rows.inc(rows)

    def record_net_layers(self, n_layers: int, rows: int) -> None:
        """Account one flushed net batch: ``n_layers`` fused kernel calls,
        each over ``rows`` stacked rows."""
        if n_layers <= 0:
            return
        self._net_layer_execs.inc(n_layers)
        for _ in range(n_layers):
            self._net_layer_rows.observe(rows)

    def record_queue_delta(self, delta_rows: int) -> None:
        with self._queue_lock:
            rows = self._queue_rows._default.value + delta_rows
            self._queue_rows.set(rows)
            if rows > self._queue_rows_peak._default.value:
                self._queue_rows_peak.set(rows)

    # ------------------------------------------------------------------
    @property
    def queue_rows(self) -> int:
        return self._queue_rows._default.value

    @property
    def queue_rows_peak(self) -> int:
        return self._queue_rows_peak._default.value

    # ------------------------------------------------------------------
    @staticmethod
    def _sum_family(family) -> dict:
        return {entry["labels"][family.labelnames[0]]: entry["value"]
                for entry in family.snapshot()["values"]}

    @staticmethod
    def _latency_summary(family) -> dict:
        agg = family.aggregate()
        return {"count": agg["count"],
                "p50_ms": round(agg["p50"] * 1e3, 3),
                "p95_ms": round(agg["p95"] * 1e3, 3),
                "p99_ms": round(agg["p99"] * 1e3, 3),
                "mean_ms": round(
                    agg["sum"] / agg["count"] * 1e3, 3)
                if agg["count"] else 0.0}

    def snapshot(self) -> dict:
        """The JSON ``/metrics`` object (legacy shape + ``latency``)."""
        requests = self._sum_family(self._requests)
        responses = self._sum_family(self._responses)
        reasons = self._sum_family(self._batches)
        batches = sum(reasons.values())
        rows = self._batched_rows._default.value
        batched_requests = self._batched_requests._default.value
        with self._rows_exact_lock:
            rows_exact = dict(self._rows_exact)
        layer_execs = self._net_layer_execs._default.value
        layer_rows_agg = self._net_layer_rows.aggregate()
        return {
            "requests": requests,
            "responses": responses,
            "rejected": self._rejected._default.value,
            "microbatch": {
                "batches": batches,
                "rows": rows,
                "requests": batched_requests,
                "mean_rows_per_batch": (rows / batches if batches else 0.0),
                "mean_requests_per_batch": (
                    batched_requests / batches if batches else 0.0),
                "rows_histogram": {
                    str(k): v for k, v in sorted(rows_exact.items())},
                "flush_reasons": reasons,
            },
            "queue": {
                "rows": self.queue_rows,
                "rows_peak": self.queue_rows_peak,
            },
            "net": {
                "uploads": self._sum_family(self._net_uploads),
                "requests": self._net_requests._default.value,
                "rows": self._net_rows._default.value,
                "layer_executions": layer_execs,
                "mean_layer_rows": (
                    layer_rows_agg["sum"] / layer_execs
                    if layer_execs else 0.0),
            },
            "latency": {
                "http": self._latency_summary(self._http_seconds),
                "queue_wait": self._latency_summary(
                    self._queue_wait_seconds),
                "batch_execute": self._latency_summary(
                    self._batch_execute_seconds),
            },
        }
