"""Thread-safe serving metrics: counters, gauges and the batch histogram.

One :class:`ServeMetrics` instance is shared between the asyncio event loop
(request accounting) and the scheduler's executor threads (batch
accounting), hence the lock. ``snapshot`` renders everything into the plain
JSON object the ``/metrics`` endpoint returns.
"""

from __future__ import annotations

import threading
from collections import Counter


class ServeMetrics:
    """Cumulative serving counters for one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests: Counter = Counter()       # endpoint -> count
        self.responses: Counter = Counter()      # HTTP status -> count
        self.rejected = 0                        # 429s from backpressure
        # Microbatching: one observation per flushed batch.
        self.batches = 0
        self.batched_rows = 0
        self.batched_requests = 0
        self.batch_rows_histogram: Counter = Counter()  # rows -> batches
        # full | deadline | completion | drain
        self.flush_reasons: Counter = Counter()
        # Queue gauges (updated by the scheduler).
        self.queue_rows = 0
        self.queue_rows_peak = 0

    # ------------------------------------------------------------------
    def record_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self.responses[status] += 1
            if status == 429:
                self.rejected += 1

    def record_batch(self, rows: int, requests: int, reason: str) -> None:
        with self._lock:
            self.batches += 1
            self.batched_rows += rows
            self.batched_requests += requests
            self.batch_rows_histogram[rows] += 1
            self.flush_reasons[reason] += 1

    def record_queue_delta(self, delta_rows: int) -> None:
        with self._lock:
            self.queue_rows += delta_rows
            self.queue_rows_peak = max(self.queue_rows_peak, self.queue_rows)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            batches = self.batches
            return {
                "requests": dict(self.requests),
                "responses": {str(k): v for k, v in self.responses.items()},
                "rejected": self.rejected,
                "microbatch": {
                    "batches": batches,
                    "rows": self.batched_rows,
                    "requests": self.batched_requests,
                    "mean_rows_per_batch": (
                        self.batched_rows / batches if batches else 0.0),
                    "mean_requests_per_batch": (
                        self.batched_requests / batches if batches else 0.0),
                    "rows_histogram": {
                        str(k): v for k, v
                        in sorted(self.batch_rows_histogram.items())},
                    "flush_reasons": dict(self.flush_reasons),
                },
                "queue": {
                    "rows": self.queue_rows,
                    "rows_peak": self.queue_rows_peak,
                },
            }
