"""Wire format of the emulation service.

Requests and responses are JSON. A *model spec* describes everything needed
to train (or load) a GENIEx emulator — the crossbar configuration plus the
sampling/training hyper-parameters — and maps 1:1 onto the dataclasses the
rest of the library uses, so a spec submitted over HTTP hits exactly the
same zoo cache key as the equivalent in-process call.

All validation failures raise :class:`ProtocolError`, which the server maps
to HTTP 400 with the message in the body.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.api.spec import (
    EmulationSpec,
    EmulatorSpec,
    SimSpec,
    XbarSpec,
    nonideality_from_dict,
)
from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec
from repro.datasets.handles import normalise_handle
from repro.devices.rram import RramParameters
from repro.errors import ConfigError, ReproError
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.engine import ENGINE_KINDS
from repro.nonideal import NonidealitySpec
from repro.xbar.config import CrossbarConfig

MODES = ("full", "linear")


class ProtocolError(ReproError, ValueError):
    """A request payload is malformed or fails validation."""


def _build_dataclass(cls, payload, what: str):
    """Instantiate a config dataclass from a JSON object, strictly.

    Unknown fields are rejected (a typo silently falling back to a default
    would key a *different* zoo artifact than the caller intended); list
    values are converted to the tuples the frozen dataclasses expect.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, "
                            f"got {type(payload).__name__}")
    allowed = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key not in allowed:
            raise ProtocolError(
                f"unknown {what} field {key!r}; expected one of "
                f"{sorted(allowed)}")
        if isinstance(value, list):
            value = tuple(value)
        if key == "rram":
            value = _build_dataclass(RramParameters, value, "rram")
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except (ConfigError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {what}: {exc}") from exc


@dataclass(frozen=True)
class ModelSpec:
    """One GENIEx model identity: crossbar + sampling + training + mode.

    A thin wire-format adapter over :class:`repro.api.spec.EmulationSpec`
    — the flat JSON shape predates the spec tree and is kept for client
    compatibility; :meth:`to_spec` / :meth:`from_spec` convert, and both
    key caches through the same spec digests.
    """

    config: CrossbarConfig
    sampling: SamplingSpec
    training: TrainSpec
    mode: str = "full"
    #: Device-fault composition (identity = the historical clean model).
    #: Carried so the registry's model tier keys faulty crossbars apart
    #: from clean ones — the no-aliasing guarantee holds over the wire.
    nonideality: NonidealitySpec = field(default_factory=NonidealitySpec)

    def to_spec(self, engine: str = "geniex",
                sim: FuncSimConfig | None = None,
                runtime=None) -> EmulationSpec:
        """The equivalent :class:`EmulationSpec` (canonical identity)."""
        kwargs = {} if runtime is None else {"runtime": runtime}
        return EmulationSpec(
            engine=engine,
            xbar=XbarSpec.from_config(self.config),
            sim=SimSpec.from_config(sim or FuncSimConfig()),
            emulator=EmulatorSpec(sampling=self.sampling,
                                  training=self.training, mode=self.mode),
            nonideality=self.nonideality,
            **kwargs)

    @classmethod
    def from_spec(cls, spec: EmulationSpec) -> "ModelSpec":
        """The model identity of a full emulation spec."""
        return cls(config=spec.xbar.to_config(),
                   sampling=spec.emulator.sampling,
                   training=spec.emulator.training,
                   mode=spec.emulator.mode,
                   nonideality=spec.nonideality)

    @classmethod
    def from_payload(cls, payload) -> "ModelSpec":
        if not isinstance(payload, dict):
            raise ProtocolError("\"model\" must be a JSON object")
        payload = dict(payload)
        sampling = payload.pop("sampling", None)
        training = payload.pop("training", None)
        mode = payload.pop("mode", "full")
        nonideality = payload.pop("nonideality", None)
        if mode not in MODES:
            raise ProtocolError(
                f"unknown mode {mode!r}; expected one of {MODES}")
        try:
            nonideality = nonideality_from_dict(nonideality)
        except ConfigError as exc:
            raise ProtocolError(str(exc)) from exc
        return cls(config=_build_dataclass(CrossbarConfig, payload,
                                           "crossbar config"),
                   sampling=_build_dataclass(SamplingSpec, sampling,
                                             "sampling spec"),
                   training=_build_dataclass(TrainSpec, training,
                                             "training spec"),
                   mode=mode,
                   nonideality=nonideality)


def reject_mixed_identity(body: dict, key_field: str | None = None) -> None:
    """Refuse bodies mixing identity descriptions.

    A spec is self-contained; silently preferring it over an
    accompanying ``model``/``engine``/``sim`` would hide a mismatch from
    a half-migrated caller (the Python client raises the same way —
    this enforces the contract for raw HTTP callers too). Likewise a
    warm-object key (``key_field``, e.g. ``weights_key``) already names
    a fully-built engine; a spec or model riding along would be silently
    ignored, so it is rejected instead.
    """
    if key_field is not None and key_field in body:
        # Payload fields (weights/conductances) count as identity here
        # too: the key already fixed them, and a different array riding
        # along would be silently discarded otherwise.
        mixed = [key for key in ("spec", "model", "engine", "sim",
                                 "weights", "conductances")
                 if key in body]
        if mixed:
            raise ProtocolError(
                f"request carries both {key_field!r} and {mixed}; the key "
                f"already names the warm object — drop the other "
                f"identity fields")
    if "spec" in body:
        mixed = [key for key in ("model", "engine", "sim") if key in body]
        if mixed:
            raise ProtocolError(
                f"request carries both \"spec\" and {mixed}; a spec is "
                f"self-contained — drop the flat fields")


def parse_model_spec(body: dict) -> ModelSpec:
    """Model identity from a ``"model"`` object or a full ``"spec"``.

    Used by the *emulator-tier* endpoints (``/v1/models``,
    ``/v1/crossbars``, ``/v1/predict_*``), which always serve the
    trained GENIEx model — so a spec naming a different engine kind is
    rejected here rather than silently training GENIEx anyway (the
    engine-tier endpoints honour ``spec.engine`` and never reach this).
    """
    if "spec" in body:
        reject_mixed_identity(body)
        spec = parse_emulation_spec(body)
        if spec.engine != "geniex":
            raise ProtocolError(
                f"this endpoint serves the trained GENIEx emulator; the "
                f"submitted spec names engine {spec.engine!r} — use "
                f"/v1/weights + /v1/matmul for non-geniex engines, or "
                f"set spec.engine to \"geniex\"")
        return ModelSpec.from_spec(spec)
    if "model" not in body:
        raise ProtocolError(
            "request requires a \"model\" or \"spec\" object")
    return ModelSpec.from_payload(body["model"])


def parse_emulation_spec(body: dict) -> EmulationSpec:
    """A full declarative :class:`EmulationSpec` from the ``spec`` object.

    The wire shape is exactly ``EmulationSpec.to_dict()`` — what
    ``python -m repro spec`` prints — so a spec file drives the HTTP
    service unchanged. Strict: unknown fields are rejected with the
    offending dotted path in the message.
    """
    if "spec" not in body:
        raise ProtocolError("request requires a \"spec\" object")
    try:
        return EmulationSpec.from_dict(body["spec"])
    except ConfigError as exc:
        raise ProtocolError(str(exc)) from exc


def parse_mitigate_request(body: dict) -> tuple:
    """Validate a ``POST /v1/mitigate`` body.

    Returns ``(spec, dataset, hidden, model_seed)``. The body carries a
    full ``"spec"`` (whose ``mitigation`` node must be non-identity and
    must train — the server has no local pretrained model to run a
    calibration-only recipe against), a content-addressable ``"dataset"``
    handle (name or dict, see :mod:`repro.datasets.handles`), and an
    optional ``"net"`` object choosing the classifier architecture
    (``{"hidden": [...], "seed": 0}`` — named ``net`` because the flat
    ``model`` field already means the GENIEx model identity).
    """
    reject_mixed_identity(body)
    spec = parse_emulation_spec(body)
    if spec.mitigation.is_identity:
        raise ProtocolError(
            "spec.mitigation is the identity — set mitigation.noise "
            "and/or mitigation.calibration to request a mitigation")
    if spec.mitigation.noise.is_identity:
        raise ProtocolError(
            "spec.mitigation.noise.epochs must be >= 1: the server "
            "trains the classifier itself, and a calibration-only recipe "
            "needs a local pretrained model (use Session.mitigate)")
    if "dataset" not in body:
        raise ProtocolError(
            "request requires a \"dataset\" handle (a dataset name or "
            "{\"name\": ..., \"n_train\": ..., ...} object)")
    try:
        dataset = normalise_handle(body["dataset"])
    except ConfigError as exc:
        raise ProtocolError(str(exc)) from exc
    net = body.get("net", {})
    if not isinstance(net, dict):
        raise ProtocolError("\"net\" must be a JSON object")
    unknown = set(net) - {"hidden", "seed"}
    if unknown:
        raise ProtocolError(
            f"unknown \"net\" field(s) {sorted(unknown)}; expected "
            f"\"hidden\" and/or \"seed\"")
    hidden = net.get("hidden", [32])
    if not isinstance(hidden, list) or not hidden or any(
            not isinstance(h, int) or isinstance(h, bool) or h < 1
            for h in hidden):
        raise ProtocolError(
            "net.hidden must be a non-empty list of positive integers")
    model_seed = net.get("seed", 0)
    if not isinstance(model_seed, int) or isinstance(model_seed, bool) \
            or model_seed < 0:
        raise ProtocolError("net.seed must be a non-negative integer")
    return spec, dataset, tuple(hidden), model_seed


def parse_net_upload(body: dict) -> tuple:
    """Validate a ``POST /v1/nets`` body; returns ``(wire, spec)``.

    The body carries a ``"net"`` layer-list wire dict (see
    :func:`repro.nn.serialization.net_to_wire`) and a full ``"spec"``
    choosing the emulation the network will be compiled against. The
    wire is validated structurally here — by actually rebuilding the
    model — so a malformed upload fails with 400 before it can occupy a
    registry slot or be persisted.
    """
    from repro.errors import SerializationError, ShapeError
    from repro.nn.serialization import net_from_wire
    reject_mixed_identity(body)
    spec = parse_emulation_spec(body)
    if "net" not in body:
        raise ProtocolError(
            "request requires a \"net\" object (the repro-net/1 "
            "layer-list wire format; see repro.nn.serialization)")
    wire = body["net"]
    try:
        net_from_wire(wire)
    except (SerializationError, ShapeError, ConfigError) as exc:
        raise ProtocolError(f"invalid net wire: {exc}") from exc
    return wire, spec


def parse_net_predict(body: dict) -> tuple:
    """Validate a ``POST /v1/net_predict`` body.

    Returns ``(net_key, x, stream, chunk_rows)``. Identity is by
    ``net_key`` only (returned by ``/v1/nets``); re-sending the wire on
    the hot path would defeat the warm-program cache, so it is rejected
    like any other mixed identity.
    """
    reject_mixed_identity(body, key_field="net_key")
    if "net" in body:
        raise ProtocolError(
            "net_predict takes a \"net_key\" (from POST /v1/nets), not "
            "an inline \"net\" wire")
    net_key = body.get("net_key")
    if not isinstance(net_key, str) or not net_key:
        raise ProtocolError(
            "request requires a \"net_key\" string (from POST /v1/nets)")
    x = decode_array(body, "x", ndim=(1, 2))
    stream = body.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError("\"stream\" must be a boolean")
    chunk_rows = body.get("chunk_rows")
    if chunk_rows is not None and (
            not isinstance(chunk_rows, int) or isinstance(chunk_rows, bool)
            or chunk_rows < 1):
        raise ProtocolError("\"chunk_rows\" must be a positive integer")
    return net_key, x, stream, chunk_rows


def parse_sim_config(body: dict) -> FuncSimConfig:
    """Functional-simulator config from the optional ``sim`` object."""
    return _build_dataclass(FuncSimConfig, body.get("sim"), "sim config")


def parse_engine_kind(body: dict) -> str:
    kind = body.get("engine", "geniex")
    if kind not in ENGINE_KINDS:
        raise ProtocolError(
            f"unknown engine {kind!r}; expected one of {ENGINE_KINDS}")
    return kind


def decode_array(body: dict, field: str, ndim: tuple = (1, 2)) -> np.ndarray:
    """Decode a JSON number array into a float64 ndarray, strictly.

    Rejects missing fields, ragged nesting, non-numeric entries and
    non-finite values — a NaN smuggled into a coalesced batch must not be
    able to poison other requests' outputs downstream.
    """
    if field not in body:
        raise ProtocolError(f"request requires a {field!r} array")
    try:
        array = np.asarray(body[field], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{field!r} is not a numeric array: "
                            f"{exc}") from exc
    if array.ndim not in ndim:
        raise ProtocolError(
            f"{field!r} must have {' or '.join(map(str, ndim))} "
            f"dimension(s), got shape {array.shape}")
    if array.size == 0:
        raise ProtocolError(f"{field!r} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ProtocolError(f"{field!r} contains non-finite values")
    return array


def encode_array(array: np.ndarray) -> list:
    """JSON-encodable nested lists; float64 repr round-trips bit-exactly."""
    return np.asarray(array, dtype=np.float64).tolist()
