"""Wire format of the emulation service.

Requests and responses are JSON. A *model spec* describes everything needed
to train (or load) a GENIEx emulator — the crossbar configuration plus the
sampling/training hyper-parameters — and maps 1:1 onto the dataclasses the
rest of the library uses, so a spec submitted over HTTP hits exactly the
same zoo cache key as the equivalent in-process call.

All validation failures raise :class:`ProtocolError`, which the server maps
to HTTP 400 with the message in the body.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec
from repro.devices.rram import RramParameters
from repro.errors import ConfigError, ReproError
from repro.funcsim.config import FuncSimConfig
from repro.xbar.config import CrossbarConfig

ENGINE_KINDS = ("geniex", "exact", "analytical", "decoupled", "circuit",
                "ideal")
MODES = ("full", "linear")


class ProtocolError(ReproError, ValueError):
    """A request payload is malformed or fails validation."""


def _build_dataclass(cls, payload, what: str):
    """Instantiate a config dataclass from a JSON object, strictly.

    Unknown fields are rejected (a typo silently falling back to a default
    would key a *different* zoo artifact than the caller intended); list
    values are converted to the tuples the frozen dataclasses expect.
    """
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, "
                            f"got {type(payload).__name__}")
    allowed = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key not in allowed:
            raise ProtocolError(
                f"unknown {what} field {key!r}; expected one of "
                f"{sorted(allowed)}")
        if isinstance(value, list):
            value = tuple(value)
        if key == "rram":
            value = _build_dataclass(RramParameters, value, "rram")
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except (ConfigError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {what}: {exc}") from exc


@dataclass(frozen=True)
class ModelSpec:
    """One GENIEx model identity: crossbar + sampling + training + mode."""

    config: CrossbarConfig
    sampling: SamplingSpec
    training: TrainSpec
    mode: str = "full"

    @classmethod
    def from_payload(cls, payload) -> "ModelSpec":
        if not isinstance(payload, dict):
            raise ProtocolError("\"model\" must be a JSON object")
        payload = dict(payload)
        sampling = payload.pop("sampling", None)
        training = payload.pop("training", None)
        mode = payload.pop("mode", "full")
        if mode not in MODES:
            raise ProtocolError(
                f"unknown mode {mode!r}; expected one of {MODES}")
        return cls(config=_build_dataclass(CrossbarConfig, payload,
                                           "crossbar config"),
                   sampling=_build_dataclass(SamplingSpec, sampling,
                                             "sampling spec"),
                   training=_build_dataclass(TrainSpec, training,
                                             "training spec"),
                   mode=mode)


def parse_model_spec(body: dict) -> ModelSpec:
    if "model" not in body:
        raise ProtocolError("request requires a \"model\" object")
    return ModelSpec.from_payload(body["model"])


def parse_sim_config(body: dict) -> FuncSimConfig:
    """Functional-simulator config from the optional ``sim`` object."""
    return _build_dataclass(FuncSimConfig, body.get("sim"), "sim config")


def parse_engine_kind(body: dict) -> str:
    kind = body.get("engine", "geniex")
    if kind not in ENGINE_KINDS:
        raise ProtocolError(
            f"unknown engine {kind!r}; expected one of {ENGINE_KINDS}")
    return kind


def decode_array(body: dict, field: str, ndim: tuple = (1, 2)) -> np.ndarray:
    """Decode a JSON number array into a float64 ndarray, strictly.

    Rejects missing fields, ragged nesting, non-numeric entries and
    non-finite values — a NaN smuggled into a coalesced batch must not be
    able to poison other requests' outputs downstream.
    """
    if field not in body:
        raise ProtocolError(f"request requires a {field!r} array")
    try:
        array = np.asarray(body[field], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{field!r} is not a numeric array: "
                            f"{exc}") from exc
    if array.ndim not in ndim:
        raise ProtocolError(
            f"{field!r} must have {' or '.join(map(str, ndim))} "
            f"dimension(s), got shape {array.shape}")
    if array.size == 0:
        raise ProtocolError(f"{field!r} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ProtocolError(f"{field!r} contains non-finite values")
    return array


def encode_array(array: np.ndarray) -> list:
    """JSON-encodable nested lists; float64 repr round-trips bit-exactly."""
    return np.asarray(array, dtype=np.float64).tolist()
