"""Composable device-fault transforms over programmed conductance tiles.

Each transform is a small frozen dataclass describing one physical
non-ideality source of a memristive crossbar. A transform is *declarative*
— validation happens at construction, identity is decidable without
sampling (:attr:`is_identity`), and the perturbation itself is a pure
function of ``(conductances, rng, window)`` — so transforms can live
inside the spec tree, participate in content digests, and be applied
deterministically at tile-programming time.

The registry :data:`TRANSFORM_KINDS` fixes both the canonical application
order and the RNG stream index of every transform:

=============  =========================================================
``variation``  Lognormal programming (device-to-device) variation — the
               program-and-verify write lands on ``G * exp(N(0, sigma))``
               (paper Section 1: errors "get exacerbated further due to
               the device variations").
``drift``      Time-parameterized conductance drift: the classic
               power-law decay ``G(t) = G0 * ((t0 + t) / t0)^-nu``,
               deterministic (every cell relaxes the same way).
``read_noise`` Cycle-to-cycle read noise: multiplicative Gaussian
               ``G * (1 + N(0, sigma))``. Applied at programming time the
               draw is a frozen snapshot of *one* read cycle — re-seeding
               the spec re-samples the cycle.
``temperature``  Per-tile line-resistance / temperature scaling: the
               whole tile's conductances scale by ``1 / (1 + tcr * dT)``
               (metallic TCR raises wire and device resistance with
               temperature), with an optional lognormal per-*tile* spread
               modelling on-die thermal gradients — one draw per tile,
               not per cell.
``stuck``      Stuck-at faults: cells forced to ``g_on`` (stuck-ON wins,
               a shorted filament dominates) or ``g_off``.
=============  =========================================================

Perturbed values are clipped back into the programmable window
``[g_min_s, g_max_s]``: program-and-verify loops cannot exceed the
physical conductance range, and every tile model downstream (GENIEx
normaliser, linear parasitic solver, Newton bring-up) is parameterised
over that window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value}")


def _check_nonneg(name: str, value: float) -> None:
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class VariationSpec:
    """Lognormal programming variation with log-std ``sigma``."""

    sigma: float = 0.0

    def __post_init__(self):
        _check_nonneg("variation.sigma", self.sigma)

    @property
    def is_identity(self) -> bool:
        return self.sigma == 0.0

    @property
    def is_stochastic(self) -> bool:
        return True

    def apply(self, conductance_s: np.ndarray, rng: np.random.Generator,
              g_min_s: float, g_max_s: float) -> np.ndarray:
        noisy = conductance_s * rng.lognormal(
            mean=0.0, sigma=self.sigma, size=conductance_s.shape)
        return np.clip(noisy, g_min_s, g_max_s)


@dataclass(frozen=True)
class DriftSpec:
    """Power-law conductance drift after ``time_s`` seconds of retention.

    ``G(t) = G0 * ((t0 + t) / t0) ** -nu`` — the standard retention model
    (Joksas et al. use the same form); continuous in ``t`` with
    ``G(0) = G0``, monotonically decaying, never amplifying.
    """

    time_s: float = 0.0
    nu: float = 0.05
    t0_s: float = 1.0

    def __post_init__(self):
        _check_nonneg("drift.time_s", self.time_s)
        _check_nonneg("drift.nu", self.nu)
        if self.t0_s <= 0:
            raise ConfigError(f"drift.t0_s must be > 0, got {self.t0_s}")

    @property
    def is_identity(self) -> bool:
        return self.time_s == 0.0 or self.nu == 0.0

    @property
    def is_stochastic(self) -> bool:
        return False  # every cell relaxes deterministically

    @property
    def factor(self) -> float:
        """Deterministic decay factor in ``(0, 1]``."""
        return float(((self.t0_s + self.time_s) / self.t0_s) ** -self.nu)

    def apply(self, conductance_s: np.ndarray, rng: np.random.Generator,
              g_min_s: float, g_max_s: float) -> np.ndarray:
        return np.clip(conductance_s * self.factor, g_min_s, g_max_s)


@dataclass(frozen=True)
class ReadNoiseSpec:
    """Cycle-to-cycle read noise: multiplicative Gaussian of std ``sigma``.

    Sampled once at programming time — a frozen snapshot of one read
    cycle; a different spec seed re-samples the cycle.
    """

    sigma: float = 0.0

    def __post_init__(self):
        _check_nonneg("read_noise.sigma", self.sigma)

    @property
    def is_identity(self) -> bool:
        return self.sigma == 0.0

    @property
    def is_stochastic(self) -> bool:
        return True

    def apply(self, conductance_s: np.ndarray, rng: np.random.Generator,
              g_min_s: float, g_max_s: float) -> np.ndarray:
        noisy = conductance_s * (
            1.0 + rng.normal(0.0, self.sigma, size=conductance_s.shape))
        return np.clip(noisy, g_min_s, g_max_s)


@dataclass(frozen=True)
class TemperatureSpec:
    """Per-tile line-resistance / temperature scaling.

    A temperature rise of ``delta_t_k`` kelvin scales every conductance of
    a tile by ``1 / (1 + tcr_per_k * delta_t_k)`` (resistances grow with
    the metallic TCR). ``tile_sigma > 0`` additionally draws one lognormal
    factor per *tile* — an on-die thermal-gradient model where whole
    crossbars run hotter or colder than the die average.
    """

    delta_t_k: float = 0.0
    tcr_per_k: float = 0.002
    tile_sigma: float = 0.0

    def __post_init__(self):
        _check_nonneg("temperature.delta_t_k", self.delta_t_k)
        _check_nonneg("temperature.tcr_per_k", self.tcr_per_k)
        _check_nonneg("temperature.tile_sigma", self.tile_sigma)

    @property
    def is_identity(self) -> bool:
        return (self.delta_t_k == 0.0 or self.tcr_per_k == 0.0) \
            and self.tile_sigma == 0.0

    @property
    def is_stochastic(self) -> bool:
        return self.tile_sigma > 0.0  # uniform derating draws nothing

    def apply(self, conductance_s: np.ndarray, rng: np.random.Generator,
              g_min_s: float, g_max_s: float) -> np.ndarray:
        scale = 1.0 / (1.0 + self.tcr_per_k * self.delta_t_k)
        if self.tile_sigma > 0.0:
            scale = scale * rng.lognormal(mean=0.0, sigma=self.tile_sigma)
        return np.clip(conductance_s * scale, g_min_s, g_max_s)


@dataclass(frozen=True)
class StuckSpec:
    """Stuck-at faults: ``p_on`` stuck-ON and ``p_off`` stuck-OFF rates.

    Faults are drawn independently per cell; a cell is selected by at most
    one fault type, with ON taking precedence (a shorted filament
    dominates).
    """

    p_on: float = 0.0
    p_off: float = 0.0

    def __post_init__(self):
        _check_fraction("stuck.p_on", self.p_on)
        _check_fraction("stuck.p_off", self.p_off)
        if self.p_on + self.p_off > 1.0:
            raise ConfigError(
                f"stuck.p_on + stuck.p_off must not exceed 1, got "
                f"{self.p_on} + {self.p_off}")

    @property
    def is_identity(self) -> bool:
        return self.p_on == 0.0 and self.p_off == 0.0

    @property
    def is_stochastic(self) -> bool:
        return True

    def apply(self, conductance_s: np.ndarray, rng: np.random.Generator,
              g_min_s: float, g_max_s: float) -> np.ndarray:
        u = rng.random(conductance_s.shape)
        out = conductance_s.copy()
        out[u < self.p_on] = g_max_s
        out[(u >= self.p_on) & (u < self.p_on + self.p_off)] = g_min_s
        return out


#: Registry: transform kind -> spec class, in canonical application order.
#: The order is part of the model (programming variation happens at write
#: time, drift and read noise during retention/read-out, temperature
#: scales the operating point, and stuck faults dominate everything), and
#: the position of each kind keys its RNG stream, so reordering would
#: change results — it is deliberately not configurable.
TRANSFORM_KINDS = {
    "variation": VariationSpec,
    "drift": DriftSpec,
    "read_noise": ReadNoiseSpec,
    "temperature": TemperatureSpec,
    "stuck": StuckSpec,
}
