"""The non-ideality spec node and its deterministic application pipeline.

:class:`NonidealitySpec` composes the registered transforms
(:data:`~repro.nonideal.transforms.TRANSFORM_KINDS`) into one frozen,
serializable description of "how this crossbar is faulty". It is a node of
:class:`repro.api.spec.EmulationSpec` (strict JSON round-trip, ``evolve``
overrides, content digests) but lives here so the device layer carries no
dependency on the API layer.

:class:`NonidealityPipeline` turns the spec into perturbed conductances.
Determinism contract (mirrors the ADC-noise scheme of the sharded
runtime): every draw comes from a *coordinate-keyed* RNG seeded by
``(spec seed, transform index, tile coordinates)`` and each transform
draws its whole tile in one fixed-shape call, so every cell position
receives the same perturbation no matter the tile iteration order, the
executor backend, the worker count, or the process that programs the tile
— two engines built anywhere from the same spec hold bit-identical
perturbed tiles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.nonideal.transforms import (
    TRANSFORM_KINDS,
    DriftSpec,
    ReadNoiseSpec,
    StuckSpec,
    TemperatureSpec,
    VariationSpec,
)
from repro.utils.digest import content_key

#: Mask keeping RNG seed-stream components in numpy's accepted range.
_SEED_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class NonidealitySpec:
    """Declarative device-fault composition for one emulation setup.

    One optional slot per registered transform kind, applied in the
    canonical :data:`~repro.nonideal.transforms.TRANSFORM_KINDS` order;
    ``seed`` keys every stochastic draw. The default instance is the
    *identity*: no transform active, and — by contract with the spec
    digests — byte-identical keys to a spec that predates this node.
    """

    seed: int = 0
    variation: VariationSpec = field(default_factory=VariationSpec)
    drift: DriftSpec = field(default_factory=DriftSpec)
    read_noise: ReadNoiseSpec = field(default_factory=ReadNoiseSpec)
    temperature: TemperatureSpec = field(default_factory=TemperatureSpec)
    stuck: StuckSpec = field(default_factory=StuckSpec)

    def __post_init__(self):
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigError(
                f"nonideality.seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ConfigError(
                f"nonideality.seed must be >= 0, got {self.seed}")
        for kind, cls in TRANSFORM_KINDS.items():
            value = getattr(self, kind)
            if not isinstance(value, cls):
                raise ConfigError(
                    f"nonideality.{kind} must be a {cls.__name__}, got "
                    f"{type(value).__name__}")

    @property
    def is_identity(self) -> bool:
        """True when no transform perturbs anything (the clean crossbar)."""
        return all(getattr(self, kind).is_identity
                   for kind in TRANSFORM_KINDS)

    def active(self) -> list:
        """``(stream index, kind, transform)`` for each active transform.

        The stream index is the transform's position in the registry —
        stable even when other transforms toggle between identity and
        active, so enabling a second fault source never re-keys the
        first one's draws.
        """
        return [(index, kind, getattr(self, kind))
                for index, kind in enumerate(TRANSFORM_KINDS)
                if not getattr(self, kind).is_identity]

    def to_payload(self) -> dict:
        """Plain JSON-encodable dict (the spec codec's wire shape)."""
        out = {"seed": self.seed}
        for kind in TRANSFORM_KINDS:
            out[kind] = dataclasses.asdict(getattr(self, kind))
        return out

    def digest(self) -> str:
        """Stable content digest of the *active* fault composition.

        Built over the active transforms' fields only, so adding a new
        transform kind to the registry (always identity by default)
        never re-keys existing faulty specs. The seed participates only
        when an active transform actually draws from it: two drift-only
        specs that differ solely in seed are bit-identical engines and
        key identically (no redundant zoo training, shared warm tiers).
        """
        payload = {}
        for _, kind, transform in self.active():
            payload[kind] = dataclasses.asdict(transform)
        if any(t.is_stochastic for _, _, t in self.active()):
            payload["seed"] = self.seed
        return content_key("ni", payload)


class NonidealityPipeline:
    """Apply a :class:`NonidealitySpec` to programmed conductance tiles."""

    def __init__(self, spec: NonidealitySpec):
        if not isinstance(spec, NonidealitySpec):
            raise ConfigError(
                f"NonidealityPipeline expects a NonidealitySpec, got "
                f"{type(spec).__name__}")
        self.spec = spec
        self._active = spec.active()

    @property
    def is_identity(self) -> bool:
        return not self._active

    def digest(self) -> str:
        return self.spec.digest()

    def perturb(self, conductance_s: np.ndarray, coords: tuple,
                g_min_s: float, g_max_s: float) -> np.ndarray:
        """Perturbed copy of one programmed tile.

        ``coords`` identifies the tile (the engine passes
        ``(sign, slice, tile_row, tile_col)``); it keys the RNG streams,
        so equal coordinates always receive equal draws. Identity
        pipelines return the input unchanged (same object — callers use
        this to skip copies on the clean path).
        """
        if not self._active:
            return conductance_s
        out = np.asarray(conductance_s, dtype=float)
        key_base = [self.spec.seed & _SEED_MASK]
        key_tail = [int(c) & _SEED_MASK for c in coords]
        for index, _, transform in self._active:
            rng = np.random.default_rng(key_base + [index] + key_tail)
            out = transform.apply(out, rng, g_min_s, g_max_s)
        return out


def as_pipeline(nonideality) -> NonidealityPipeline | None:
    """Normalise ``None`` / spec / pipeline into a pipeline (or ``None``).

    ``None`` and identity specs both resolve to ``None`` — the engine's
    clean fast path — so "no node" and "explicit identity node" are
    indistinguishable downstream, exactly as they are in the digests.
    """
    if nonideality is None:
        return None
    if isinstance(nonideality, NonidealityPipeline):
        return None if nonideality.is_identity else nonideality
    if isinstance(nonideality, NonidealitySpec):
        if nonideality.is_identity:
            return None
        return NonidealityPipeline(nonideality)
    raise ConfigError(
        f"nonideality must be a NonidealitySpec or NonidealityPipeline, "
        f"got {type(nonideality).__name__}")
