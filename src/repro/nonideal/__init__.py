"""First-class non-ideality injection: composable device-fault transforms.

The paper's central claim is generality across non-ideality sources, and
it stresses that crossbar errors "get exacerbated further due to the
device variations". This package makes those fault sources a first-class,
composable axis of the whole stack:

* :mod:`repro.nonideal.transforms` — the registry of seeded perturbation
  transforms over programmed conductance tiles (lognormal programming
  variation, power-law conductance drift, cycle-to-cycle read noise,
  per-tile line-resistance/temperature scaling, stuck-at faults);
* :mod:`repro.nonideal.pipeline` — :class:`NonidealitySpec`, the frozen
  spec node composing them, and :class:`NonidealityPipeline`, its
  deterministic coordinate-keyed application to programmed tiles.

Wiring: :class:`repro.api.spec.EmulationSpec` carries a ``nonideality``
node (folded into every content digest whenever it is non-identity, so a
faulty crossbar can never be cache-aliased with a clean one — in the
GENIEx zoo, the serving registry, or prepared-matrix uids), and
:func:`repro.funcsim.engine.make_engine` applies the pipeline at tile
programming time, so every executor backend and worker count sees the
same perturbed tiles. See the README's "Non-ideality scenarios" section.
"""

from repro.nonideal.pipeline import (
    NonidealityPipeline,
    NonidealitySpec,
    as_pipeline,
)
from repro.nonideal.transforms import (
    TRANSFORM_KINDS,
    DriftSpec,
    ReadNoiseSpec,
    StuckSpec,
    TemperatureSpec,
    VariationSpec,
)

__all__ = [
    "NonidealitySpec",
    "NonidealityPipeline",
    "as_pipeline",
    "TRANSFORM_KINDS",
    "VariationSpec",
    "DriftSpec",
    "ReadNoiseSpec",
    "TemperatureSpec",
    "StuckSpec",
]
