"""Shared utilities: seeded RNG, validation helpers, numeric helpers."""

from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_matrix,
    check_vector,
)
from repro.utils.numerics import clamp, relative_error, safe_divide

__all__ = [
    "rng_from_seed",
    "spawn_rngs",
    "check_positive",
    "check_in_range",
    "check_matrix",
    "check_vector",
    "clamp",
    "relative_error",
    "safe_divide",
]
