"""Seeded random-number-generator helpers.

All stochastic code in the library takes either an integer seed or a
:class:`numpy.random.Generator`. These helpers normalise between the two and
derive independent child generators, so experiments are reproducible
bit-for-bit and components never share hidden global state.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything accepted where a seed is expected: an integer seed, a ready
#: generator (used as-is), or ``None`` for fresh OS entropy.
SeedLike: TypeAlias = "int | np.random.Generator | None"


def rng_from_seed(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    ``Generator`` (returned unchanged, so generators can be threaded through
    call chains without re-seeding).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    independent regardless of how many values each consumes.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
