"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError


def check_positive(name: str, value) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a finite number > 0."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigError(f"{name} must be a finite positive number, got {value!r}")


def check_in_range(name: str, value, low, high, inclusive: bool = True) -> None:
    """Raise :class:`ConfigError` unless ``low <= value <= high``.

    With ``inclusive=False`` the bounds themselves are rejected.
    """
    ok = low <= value <= high if inclusive else low < value < high
    if not np.isfinite(value) or not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ConfigError(f"{name} must lie in {bounds}, got {value!r}")


def check_vector(name: str, array, length: int | None = None) -> np.ndarray:
    """Coerce ``array`` to a float 1-D array, optionally of fixed ``length``."""
    out = np.asarray(array, dtype=float)
    if out.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {out.shape}")
    if length is not None and out.shape[0] != length:
        raise ShapeError(f"{name} must have length {length}, got {out.shape[0]}")
    return out


def check_matrix(name: str, array, shape: tuple | None = None) -> np.ndarray:
    """Coerce ``array`` to a float 2-D array, optionally of fixed ``shape``."""
    out = np.asarray(array, dtype=float)
    if out.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {out.shape}")
    if shape is not None and out.shape != tuple(shape):
        raise ShapeError(f"{name} must have shape {tuple(shape)}, got {out.shape}")
    return out
