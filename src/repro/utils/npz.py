"""Zero-copy loading of ``.npz`` archives via ``np.memmap``.

``np.load(path, mmap_mode="r")`` silently ignores ``mmap_mode`` for
``.npz`` files (the zip layer reads members into fresh arrays), so a
fleet of worker processes warm-loading the shared artifact store would
each hold a private copy of every multi-MB weight blob. The zoo writes
archives with :func:`numpy.savez` — members are *stored*, never
deflated — so each member's raw ``.npy`` bytes sit contiguously inside
the archive file and can be mapped read-only straight out of the page
cache, shared across all processes on the host.

:func:`load_npz` parses the zip local headers itself (the central
directory alone does not give the data offset), reads each member's
``.npy`` header, and returns ``np.memmap`` views. Members that cannot
be mapped (compressed, object-dtype, pickled) fall back to a regular
copying load, as does the whole archive when ``mmap=False`` or the
``REPRO_ZOO_MMAP=0`` escape hatch is set — the copy-on-write path for
callers that mutate what they load.
"""

from __future__ import annotations

import os
import struct
import zipfile

import numpy as np

# Local file header: sig(4) ver(2) flags(2) method(2) time(2) date(2)
# crc(4) csize(4) usize(4) name_len(2) extra_len(2)
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")
_LOCAL_SIG = b"PK\x03\x04"


def mmap_enabled(default: bool = True) -> bool:
    """Whether zero-copy zoo loads are enabled (``REPRO_ZOO_MMAP``)."""
    env = os.environ.get("REPRO_ZOO_MMAP")
    if env is None:
        return default
    return env.strip().lower() not in ("0", "false", "no", "off")


def _member_data_offset(handle, info: zipfile.ZipInfo) -> int | None:
    """Absolute file offset of a member's raw data, or None if unmappable.

    The central directory records where the *local* header starts; the
    local header's own name/extra lengths (which may differ from the
    central directory's) give the data start.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    handle.seek(info.header_offset)
    raw = handle.read(_LOCAL_HEADER.size)
    if len(raw) != _LOCAL_HEADER.size:
        return None
    fields = _LOCAL_HEADER.unpack(raw)
    if fields[0] != _LOCAL_SIG:
        return None
    name_len, extra_len = fields[9], fields[10]
    return info.header_offset + _LOCAL_HEADER.size + name_len + extra_len


def _read_npy_header(handle):
    """Parse a ``.npy`` header at the current offset.

    Returns ``(shape, fortran_order, dtype, data_offset)`` or ``None``
    when the member is not a plain mappable array.
    """
    try:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                handle)
        else:
            return None
    except ValueError:
        return None
    if dtype.hasobject:
        return None
    return shape, fortran, dtype, handle.tell()


def load_npz(path: str, mmap: bool = True, writable: bool = False) -> dict:
    """Load every array in an ``.npz`` as ``{name: array}``.

    With ``mmap`` (and the env escape hatch unset) arrays are read-only
    ``np.memmap`` views sharing the OS page cache across processes;
    pass ``writable=True`` (or ``mmap=False``) to get private mutable
    copies instead. Any member that cannot be mapped is loaded the
    regular, copying way — the result dict is always complete.
    """
    if writable or not mmap or not mmap_enabled():
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    arrays: dict = {}
    fallback: list = []
    with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
        for info in archive.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            offset = _member_data_offset(handle, info)
            header = None
            if offset is not None:
                handle.seek(offset)
                header = _read_npy_header(handle)
            if header is None:
                fallback.append(key)
                continue
            shape, fortran, dtype, data_offset = header
            if int(np.prod(shape, dtype=np.int64)) == 0:
                arrays[key] = np.empty(shape, dtype=dtype)
                continue
            arrays[key] = np.memmap(path, mode="r", dtype=dtype,
                                    shape=shape, offset=data_offset,
                                    order="F" if fortran else "C")
    if fallback:
        with np.load(path, allow_pickle=False) as archive:
            for key in fallback:
                arrays[key] = archive[key]
    return arrays


__all__ = ["load_npz", "mmap_enabled"]
