"""Small numeric helpers used across the library."""

from __future__ import annotations

import numpy as np


def clamp(x, low, high):
    """Element-wise clamp of ``x`` into ``[low, high]``."""
    return np.minimum(np.maximum(x, low), high)


def safe_divide(num, den, fallback=0.0, eps: float = 0.0):
    """Element-wise ``num / den`` that returns ``fallback`` where ``|den| <= eps``.

    The division is never evaluated on the masked entries, so no warnings are
    emitted for zero denominators.
    """
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    num, den = np.broadcast_arrays(num, den)
    mask = np.abs(den) > eps
    out = np.full(num.shape, float(fallback))
    np.divide(num, den, out=out, where=mask)
    return out


def batch_invariant_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` whose per-row results do not depend on the batch size.

    BLAS gemm/gemv pick blocking (and with threading, split points) as a
    function of the *whole* problem shape, so row ``i`` of ``(B, K) @ (K, M)``
    can differ in the low-order bits between ``B = 1`` and ``B = 64`` even
    for identical inputs. The serving layer coalesces many requests into one
    batch and must return byte-identical results to a direct per-request
    call, so it routes matmuls through :func:`np.einsum` (``optimize=False``),
    which accumulates each output element over ``K`` in a fixed order
    independent of ``B``. Slower than BLAS, but batch-invariant.
    """
    return np.einsum("ik,kj->ij", np.atleast_2d(a), b)


def relative_error(reference, value, eps: float = 1e-30):
    """Element-wise ``|value - reference| / max(|reference|, eps)``."""
    reference = np.asarray(reference, dtype=float)
    value = np.asarray(value, dtype=float)
    denom = np.maximum(np.abs(reference), eps)
    return np.abs(value - reference) / denom
