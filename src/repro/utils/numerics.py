"""Small numeric helpers used across the library."""

from __future__ import annotations

import numpy as np


def clamp(x, low, high):
    """Element-wise clamp of ``x`` into ``[low, high]``."""
    return np.minimum(np.maximum(x, low), high)


def safe_divide(num, den, fallback=0.0, eps: float = 0.0):
    """Element-wise ``num / den`` that returns ``fallback`` where ``|den| <= eps``.

    The division is never evaluated on the masked entries, so no warnings are
    emitted for zero denominators.
    """
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    num, den = np.broadcast_arrays(num, den)
    mask = np.abs(den) > eps
    out = np.full(num.shape, float(fallback))
    np.divide(num, den, out=out, where=mask)
    return out


def relative_error(reference, value, eps: float = 1e-30):
    """Element-wise ``|value - reference| / max(|reference|, eps)``."""
    reference = np.asarray(reference, dtype=float)
    value = np.asarray(value, dtype=float)
    denom = np.maximum(np.abs(reference), eps)
    return np.abs(value - reference) / denom
