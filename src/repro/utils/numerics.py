"""Small numeric helpers used across the library."""

from __future__ import annotations

import os

import numpy as np


def clamp(x, low, high):
    """Element-wise clamp of ``x`` into ``[low, high]``."""
    return np.minimum(np.maximum(x, low), high)


def safe_divide(num, den, fallback=0.0, eps: float = 0.0):
    """Element-wise ``num / den`` that returns ``fallback`` where ``|den| <= eps``.

    The division is never evaluated on the masked entries, so no warnings are
    emitted for zero denominators.
    """
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    num, den = np.broadcast_arrays(num, den)
    mask = np.abs(den) > eps
    out = np.full(num.shape, float(fallback))
    np.divide(num, den, out=out, where=mask)
    return out


#: Environment switch for :func:`batch_invariant_matmul`. Set to
#: ``einsum`` to disable the probed BLAS fast path and always use the
#: reference ``np.einsum`` contraction.
INVARIANT_MATMUL_ENV = "REPRO_INVARIANT_MATMUL"

#: Per shape-class verdicts of :func:`_probe_blas_row_invariance`:
#: ``(K, N, a_dtype, b_dtype) -> bool``. Probes are deterministic, so
#: concurrent (or cross-process) probing of one class always reaches the
#: same verdict and the chosen kernel is consistent process-wide.
_blas_invariant: dict = {}

#: Row-window checks of the invariance probe: every ``[lo, hi)`` slice of
#: the probe operand must reproduce the full-problem rows bitwise, and
#: single-row windows additionally validate the two-row padding used for
#: ``B = 1`` calls. Windows straddle the small-``B`` kernel-dispatch
#: region and a blocking boundary of the full problem.
_PROBE_ROWS = 4131
_PROBE_WINDOWS = ((0, 1), (0, 2), (1, 2), (3, 10), (500, 501),
                  (11, 1031), (1031, _PROBE_ROWS), (2048, 2049))


def _einsum_matmul(a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
    """Reference batch-invariant product: fixed-order ``K`` accumulation."""
    return np.einsum("ik,kj->ij", a, b, out=out)


def _probe_blas_row_invariance(k: int, n: int, a_dtype, b_dtype) -> bool:
    """One-time check: is BLAS row-invariant for this operand class?

    Generates a deterministic ``(_PROBE_ROWS, k) @ (k, n)`` problem and
    verifies that every probed row window — including single rows routed
    through the two-row pad of :func:`batch_invariant_matmul` — matches
    the full-problem result bitwise. Reduction order inside gemm kernels
    is value-independent, so a passing probe transfers to real operands
    of the same shape class.
    """
    rng = np.random.default_rng([17, k, n, ord(a_dtype.char),
                                 ord(b_dtype.char)])
    a = rng.normal(size=(_PROBE_ROWS, k)).astype(a_dtype)
    b = rng.normal(size=(k, n)).astype(b_dtype)
    full = a @ b
    for lo, hi in _PROBE_WINDOWS:
        sub = a[lo:hi]
        if hi - lo == 1:
            got = (np.concatenate([sub, sub]) @ b)[:1]
        else:
            got = sub @ b
        if not np.array_equal(got, full[lo:hi]):
            return False
    return True


def batch_invariant_matmul(a: np.ndarray, b: np.ndarray,
                           out=None) -> np.ndarray:
    """``a @ b`` whose per-row results do not depend on the batch size.

    BLAS gemm/gemv pick blocking (and kernel dispatch) as a function of
    the *whole* problem shape, so row ``i`` of ``(B, K) @ (K, N)`` can
    differ in the low-order bits between ``B = 1`` and ``B = 64`` even for
    identical inputs. The serving layer coalesces many requests into one
    batch and must return byte-identical results to a direct per-request
    call, so this product must accumulate each output element over ``K``
    in an order independent of ``B``.

    The reference implementation is :func:`np.einsum` (``optimize=False``)
    — batch-invariant by construction, but scalar. On most hosts BLAS
    *gemm* is also row-invariant for all but degenerate shapes (its
    per-element ``K`` loop is fixed; only the gemv/small-kernel dispatch
    varies), so the first call of each ``(K, N, dtypes)`` class runs a
    deterministic bitwise probe (:func:`_probe_blas_row_invariance`) and,
    when it passes, every call of that class uses BLAS — with single-row
    batches computed via a validated two-row pad so they cannot fall into
    the gemv path. A failing probe pins the class to einsum. Either way
    the kernel choice is a pure function of the shape class, so results
    stay byte-identical across batch sizes. Set ``REPRO_INVARIANT_MATMUL=
    einsum`` to force the reference path globally.

    ``out`` (optional, shape/dtype-matching) receives the product —
    same values, no result allocation.
    """
    a = np.atleast_2d(a)
    if os.environ.get(INVARIANT_MATMUL_ENV) == "einsum":
        return _einsum_matmul(a, b, out)
    if a.ndim != 2 or b.ndim != 2 or \
            a.dtype.kind != "f" or b.dtype.kind != "f":
        return _einsum_matmul(a, b, out)
    key = (a.shape[1], b.shape[1], a.dtype.char, b.dtype.char)
    fast = _blas_invariant.get(key)
    if fast is None:
        fast = _blas_invariant[key] = _probe_blas_row_invariance(
            key[0], key[1], a.dtype, b.dtype)
    if not fast:
        return _einsum_matmul(a, b, out)
    if a.shape[0] == 1:
        padded = (np.concatenate([a, a]) @ b)[:1]
        if out is None:
            return padded
        out[...] = padded
        return out
    return np.matmul(a, b, out=out)


def relative_error(reference, value, eps: float = 1e-30):
    """Element-wise ``|value - reference| / max(|reference|, eps)``."""
    reference = np.asarray(reference, dtype=float)
    value = np.asarray(value, dtype=float)
    denom = np.maximum(np.abs(reference), eps)
    return np.abs(value - reference) / denom
