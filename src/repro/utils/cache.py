"""Small bounded LRU mapping shared by the solver, engine and serve caches."""

from __future__ import annotations

import threading
from collections import OrderedDict


class LruDict:
    """Insertion-bounded mapping with least-recently-used eviction.

    ``max_entries <= 0`` keeps the mapping permanently empty, which callers
    use to disable caching while keeping the code path uniform.

    All operations take an internal lock, so a single instance may be shared
    between the asyncio event loop and executor threads (the serving layer
    does exactly that). The lock is re-entrant to keep subclass overrides
    that call back into the base class safe.
    """

    def __init__(self, max_entries: int, on_evict=None):
        self.max_entries = int(max_entries)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        # Optional ``on_evict(key, value)`` hook, called after the entry
        # has left the mapping (outside the critical section) so caches of
        # resource-owning values can release them (e.g. executor pools).
        self._on_evict = on_evict

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        evicted = []
        with self._lock:
            self._data[key] = value
            # Re-putting an existing key must also refresh its recency;
            # plain assignment leaves the key at its old position, so hot
            # entries would be evicted as if they were cold.
            self._data.move_to_end(key)
            while len(self._data) > max(self.max_entries, 0):
                evicted.append(self._data.popitem(last=False))
        if self._on_evict is not None:
            for evicted_key, evicted_value in evicted:
                self._on_evict(evicted_key, evicted_value)

    def __getstate__(self):
        # Caches are semantically transparent, so they pickle *empty*:
        # entries may hold unpicklable values (sparse LU objects) and the
        # lock/eviction hook cannot cross process boundaries. Worker
        # processes simply re-fill their local copies.
        return {"max_entries": self.max_entries}

    def __setstate__(self, state):
        self.max_entries = state["max_entries"]
        self._data = OrderedDict()
        self._lock = threading.RLock()
        self._on_evict = None

    def keys(self) -> list:
        """Snapshot of the keys, oldest first."""
        with self._lock:
            return list(self._data.keys())

    def values(self) -> list:
        """Snapshot of the values, oldest first.

        Unlike :meth:`get`, reading values does not refresh recency —
        observers (metrics collectors) must not perturb eviction order.
        """
        with self._lock:
            return list(self._data.values())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
