"""Small bounded LRU mapping shared by the solver and engine caches."""

from __future__ import annotations

from collections import OrderedDict


class LruDict:
    """Insertion-bounded mapping with least-recently-used eviction.

    ``max_entries <= 0`` keeps the mapping permanently empty, which callers
    use to disable caching while keeping the code path uniform.
    """

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        while len(self._data) > max(self.max_entries, 0):
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
