"""Small bounded LRU mapping shared by the solver, engine and serve caches."""

from __future__ import annotations

import threading
from collections import OrderedDict


class LruDict:
    """Insertion-bounded mapping with least-recently-used eviction.

    ``max_entries <= 0`` keeps the mapping permanently empty, which callers
    use to disable caching while keeping the code path uniform.

    All operations take an internal lock, so a single instance may be shared
    between the asyncio event loop and executor threads (the serving layer
    does exactly that). The lock is re-entrant to keep subclass overrides
    that call back into the base class safe.
    """

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            # Re-putting an existing key must also refresh its recency;
            # plain assignment leaves the key at its old position, so hot
            # entries would be evicted as if they were cold.
            self._data.move_to_end(key)
            while len(self._data) > max(self.max_entries, 0):
                self._data.popitem(last=False)

    def keys(self) -> list:
        """Snapshot of the keys, oldest first."""
        with self._lock:
            return list(self._data.keys())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
