"""Shared content-digest primitives.

Every cache in the repository — the GENIEx zoo on disk, the serving
registry's warm tiers, prepared-matrix uids and tile-result cache keys —
identifies values by deterministic content digests, so identical inputs
land on the same artifact regardless of which process (or machine)
computed the key. This module is the single implementation those keys are
built from; :mod:`repro.api.spec` layers the spec-level key scheme on top.

All helpers are pure functions of their inputs: no process-local counters,
no ``id()``s, no interning — digests survive pickling, ``fork`` *and*
``spawn`` round-trips unchanged (tested).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np


def _update(digest, part) -> None:
    """Fold one key part into a running digest, type-tagged.

    Supported parts: ``str``, ``bytes``, ``ndarray`` (shape + dtype +
    raw bytes, C-contiguous) and JSON-encodable containers (canonical
    encoding: sorted keys, no whitespace). Type tags keep e.g. the string
    ``"1"`` and the JSON number ``1`` from colliding.
    """
    if isinstance(part, bytes):
        digest.update(b"b:")
        digest.update(part)
    elif isinstance(part, str):
        digest.update(b"s:")
        digest.update(part.encode())
    elif isinstance(part, np.ndarray):
        array = np.ascontiguousarray(part)
        digest.update(b"a:")
        digest.update(repr((array.shape, array.dtype.str)).encode())
        digest.update(array.tobytes())
    else:
        digest.update(b"j:")
        digest.update(canonical_json(part).encode())
    digest.update(b"\x00")


def canonical_json(obj) -> str:
    """Canonical JSON encoding: sorted keys, compact separators.

    The canonical form is what digests are computed over, so two dicts
    with the same content always hash equally regardless of insertion
    order.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_key(prefix: str, *parts, length: int = 20) -> str:
    """Deterministic short key ``"<prefix>-<hex>"`` over the given parts.

    With an empty prefix the bare hex digest is returned (the zoo's
    artifact keys double as file names and carry no prefix).
    """
    digest = hashlib.sha256()
    for part in parts:
        _update(digest, part)
    hexdigest = digest.hexdigest()[:length]
    return f"{prefix}-{hexdigest}" if prefix else hexdigest
