"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``characterize`` — NF statistics of a crossbar configuration;
* ``train-geniex`` — characterise + fit a GENIEx model (cached in the zoo);
* ``spec`` — print, validate or derive a declarative emulation spec;
* ``fig`` — regenerate one of the paper's figures/tables from the terminal;
* ``mitigate`` — run a spec's mitigation recipe (noise-injection training
  and/or output calibration) against its faulty engine on a dataset;
* ``serve`` — run the async emulation service with dynamic microbatching;
* ``obs`` — per-stage latency report from a server's recent traces.

``--log-level`` (or ``REPRO_LOG_LEVEL``) tunes the stdlib logging the
commands emit under the ``repro.*`` logger hierarchy.

The canonical description of an emulation setup is
:class:`repro.api.spec.EmulationSpec`; ``characterize``, ``train-geniex``
and ``fig`` accept ``--spec file.json`` / ``--preset NAME`` plus
``--set path=value`` overrides, and the classic loose flags (``--rows``,
``--r-on``, ...) are lowered into spec overrides — so the CLI, the HTTP
service and the in-process API resolve identical setups identically.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


class _TrackedAction(argparse.Action):
    """Store the value and remember that the flag was given explicitly.

    With ``--spec``/``--preset`` the spec provides the baseline and only
    explicitly-typed flags override it; without one, argparse defaults
    reproduce the historical behaviour exactly.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        vars(namespace).setdefault("_explicit", set()).add(self.dest)


def _explicit(args) -> set:
    return getattr(args, "_explicit", set())


def _add_crossbar_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=32,
                        action=_TrackedAction)
    parser.add_argument("--cols", type=int, default=None,
                        action=_TrackedAction, help="defaults to --rows")
    parser.add_argument("--r-on", type=float, default=100e3,
                        action=_TrackedAction, help="ON resistance in Ohm")
    parser.add_argument("--onoff", type=float, default=6.0,
                        action=_TrackedAction,
                        help="conductance ON/OFF ratio")
    parser.add_argument("--vdd", type=float, default=0.25,
                        action=_TrackedAction, help="supply voltage in V")


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="EmulationSpec JSON file (see `repro spec`)")
    parser.add_argument("--preset", default=None, metavar="NAME",
                        help="named spec preset (see `repro spec --list`)")
    parser.add_argument("--set", dest="spec_set", action="append",
                        default=[], metavar="PATH=VALUE",
                        help="spec override, e.g. xbar.rows=32 "
                             "(repeatable; values parse as JSON)")


def _load_spec(args, default=None):
    """Resolve ``--spec`` / ``--preset`` / ``--set`` into a spec.

    Returns ``None`` when neither a file, a preset nor a ``default`` was
    given — callers then take their historical loose-flag path.
    """
    from repro.api import EmulationSpec, get_preset
    from repro.errors import ConfigError

    if args.spec and args.preset:
        raise ConfigError("pass either --spec or --preset, not both")
    if args.spec:
        with open(args.spec) as handle:
            spec = EmulationSpec.from_json(handle.read())
    elif args.preset:
        spec = get_preset(args.preset)
    elif default is not None:
        spec = default
    else:
        if args.spec_set:
            raise ConfigError("--set requires --spec or --preset")
        return None
    overrides = {}
    for item in args.spec_set:
        path, sep, raw = item.partition("=")
        if not sep or not path.strip():
            raise ConfigError(f"--set expects PATH=VALUE, got {item!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw  # bare strings stay strings
        overrides[path.strip()] = value
    return spec.evolve(**overrides) if overrides else spec


def _crossbar_spec_overrides(args, explicit_only: bool) -> dict:
    """Lower the loose crossbar flags into ``xbar.*`` spec overrides.

    On the loose-flag path (no spec; ``explicit_only=False``) ``--cols``
    defaults to ``--rows``, reproducing the historical behaviour. With a
    spec as the baseline only explicitly-typed flags override it — an
    explicit ``--rows`` changes rows alone and leaves the spec's cols.
    """
    explicit = _explicit(args)
    keep = (lambda name: name in explicit) if explicit_only \
        else (lambda name: True)
    overrides = {}
    if keep("rows"):
        overrides["xbar.rows"] = args.rows
    if args.cols is not None and keep("cols"):
        overrides["xbar.cols"] = args.cols
    elif not explicit_only:
        overrides["xbar.cols"] = args.rows
    if keep("r_on"):
        overrides["xbar.r_on_ohm"] = args.r_on
    if keep("onoff"):
        overrides["xbar.onoff_ratio"] = args.onoff
    if keep("vdd"):
        overrides["xbar.v_supply_v"] = args.vdd
    return overrides


_UNRESOLVED = object()


def _crossbar_from_args(args, spec=_UNRESOLVED):
    """Crossbar config from spec/preset (if given) + loose-flag overrides.

    Callers that already resolved the spec pass it in so ``--spec`` files
    are read (and ``--set`` overrides applied) exactly once.
    """
    if spec is _UNRESOLVED:
        spec = _load_spec(args)
    if spec is None:
        from repro.api import EmulationSpec
        return EmulationSpec().evolve(
            **_crossbar_spec_overrides(args, explicit_only=False)) \
            .xbar.to_config()
    overrides = _crossbar_spec_overrides(args, explicit_only=True)
    if overrides:
        spec = spec.evolve(**overrides)
    return spec.xbar.to_config()


def _cmd_characterize(args) -> int:
    from repro.circuit.simulator import CrossbarCircuitSimulator
    from repro.core.metrics import nonideality_factor, valid_mask
    from repro.core.sampling import SamplingSpec, VgSampler
    from repro.xbar.ideal import ideal_mvm

    config = _crossbar_from_args(args)
    spec = SamplingSpec(n_g_matrices=args.samples, n_v_per_g=8,
                        seed=args.seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    values = []
    for g in range(spec.n_g_matrices):
        rows = np.nonzero(groups == g)[0]
        i_ideal = ideal_mvm(voltages[rows], conductances[g])
        i_real = simulator.solve_batch(voltages[rows], conductances[g],
                                       mode="full")
        values.append(nonideality_factor(i_ideal,
                                         i_real)[valid_mask(i_ideal)])
    nf = np.concatenate(values)
    print(f"crossbar {config.rows}x{config.cols}  R_on "
          f"{config.r_on_ohm / 1e3:g}k  ON/OFF {config.onoff_ratio:g}  "
          f"Vdd {config.v_supply_v:g} V")
    print(f"NF over {nf.size} column readouts: "
          f"mean {nf.mean():+.4f}  median {np.median(nf):+.4f}  "
          f"q1 {np.percentile(nf, 25):+.4f}  "
          f"q3 {np.percentile(nf, 75):+.4f}")
    return 0


def _cmd_train_geniex(args) -> int:
    from dataclasses import replace

    from repro.core.sampling import SamplingSpec
    from repro.core.trainer import TrainSpec
    from repro.core.zoo import GeniexZoo

    spec = _load_spec(args)
    config = _crossbar_from_args(args, spec=spec)
    explicit = _explicit(args)
    if spec is None:
        sampling = SamplingSpec(n_g_matrices=args.samples, n_v_per_g=20,
                                seed=args.seed)
        training = TrainSpec(hidden=args.hidden, hidden_layers=args.layers,
                             epochs=args.epochs, batch_size=128, lr=2e-3,
                             patience=max(10, args.epochs // 4),
                             seed=args.seed)
        mode = "full"
    else:
        # The spec is the baseline; explicitly-typed flags override it.
        sampling, training = spec.emulator.sampling, spec.emulator.training
        mode = spec.emulator.mode
        if "samples" in explicit:
            sampling = replace(sampling, n_g_matrices=args.samples)
        if "seed" in explicit:
            sampling = replace(sampling, seed=args.seed)
            training = replace(training, seed=args.seed)
        if "hidden" in explicit:
            training = replace(training, hidden=args.hidden)
        if "layers" in explicit:
            training = replace(training, hidden_layers=args.layers)
        if "epochs" in explicit:
            training = replace(training, epochs=args.epochs)
    # The spec's fault composition participates in the artifact key, so
    # pre-training a faulty preset warms exactly the key the spec later
    # resolves to (clean on the loose-flag path, as always).
    nonideality = None if spec is None else spec.nonideality
    zoo = GeniexZoo(verbose=True)
    emulator = zoo.get_or_train(config, sampling, training, mode=mode,
                                nonideality=nonideality, progress=True)
    key = zoo.artifact_key(config, sampling, training, mode,
                           nonideality=nonideality)
    print(f"emulator ready: {emulator.rows}x{emulator.cols} "
          f"hidden={emulator.model.hidden}x{emulator.model.hidden_layers} "
          f"(cache key {key}, dir {zoo.cache_dir})")
    return 0


_FIG_RUNNERS = {
    "table1": "repro.experiments.table1_comparison:run_table1",
    "fig2": "repro.experiments.fig2_nf_analysis:run_fig2",
    "fig3": "repro.experiments.fig3_nonlinearity:run_fig3",
    "fig5": "repro.experiments.fig5_rmse:run_fig5",
    "fig7": "repro.experiments.fig7_design_params:run_fig7",
    "fig8": "repro.experiments.fig8_quantization:run_fig8",
    "fig9": "repro.experiments.fig9_bitslicing:run_fig9",
    "variations": "repro.experiments.variations:run_variations",
    "robustness": "repro.experiments.robustness:run_robustness",
}


def _cmd_fig(args) -> int:
    import importlib
    import inspect
    import os

    from repro.errors import ConfigError

    if args.workers is not None:
        # The experiment drivers read the worker count through
        # repro.experiments.common.default_workers().
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.backend is not None:
        # Engines built anywhere down the run resolve this through
        # resolve_backend(); an explicit spec value still wins.
        os.environ["REPRO_BACKEND"] = args.backend
    spec = _load_spec(args)
    module_name, func_name = _FIG_RUNNERS[args.name].split(":")
    runner = getattr(importlib.import_module(module_name), func_name)
    if spec is not None:
        if "spec" not in inspect.signature(runner).parameters:
            supported = sorted(
                name for name, target in _FIG_RUNNERS.items()
                if "spec" in inspect.signature(getattr(
                    importlib.import_module(target.split(":")[0]),
                    target.split(":")[1])).parameters)
            raise ConfigError(
                f"fig {args.name!r} does not take --spec/--preset; "
                f"supported: {supported}")
        result = runner(spec=spec)
    else:
        result = runner()
    print(result.format())
    return 0


def _cmd_spec(args) -> int:
    from repro.api import PRESETS, EmulationSpec, preset_names

    if args.list:
        for name in preset_names():
            preset = PRESETS[name]
            print(f"{name:18s} engine={preset.engine:11s} "
                  f"xbar={preset.xbar.rows}x{preset.xbar.cols}  "
                  f"key={preset.key()}")
        return 0
    spec = _load_spec(args, default=EmulationSpec())
    if args.keys:
        text = json.dumps({"key": spec.key(),
                           "model_key": spec.model_key()}, indent=2)
    else:
        text = spec.to_json()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_mitigate(args) -> int:
    from repro.api import open_session
    from repro.errors import ConfigError

    spec = _load_spec(args)
    if spec is None:
        raise ConfigError(
            "mitigate requires --spec or --preset (with the mitigation "
            "node set, e.g. --set mitigation.noise.epochs=8)")
    try:
        dataset = json.loads(args.dataset)
    except json.JSONDecodeError:
        dataset = args.dataset  # bare dataset name
    with open_session(spec) as session:
        result = session.mitigate(dataset, hidden=tuple(args.hidden),
                                  model_seed=args.model_seed,
                                  baseline=not args.no_baseline,
                                  progress=True)
    metrics = result.metrics
    source = "zoo cache" if result.from_cache else "fresh run"
    print(f"mitigated model {result.key} ({source}, "
          f"sizes {'x'.join(map(str, result.sizes))})")
    print(f"  float accuracy:     {metrics['float_accuracy']:.4f}")
    if "baseline_accuracy" in metrics:
        print(f"  unmitigated (hw):   {metrics['baseline_accuracy']:.4f}")
    print(f"  mitigated (hw):     {metrics['mitigated_accuracy']:.4f}")
    return 0


async def _run_until_sigterm(service, log, what: str) -> None:
    """Serve until SIGTERM (graceful drain) or cancellation (close).

    Shared by ``repro serve`` and ``repro fleet``: SIGTERM triggers
    ``service.drain()`` — stop accepting, finish in-flight requests,
    then close — while Ctrl-C/cancellation closes immediately.
    """
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    term = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, term.set)
    except (NotImplementedError, RuntimeError):
        pass   # non-POSIX loops: Ctrl-C still closes below
    serve_task = loop.create_task(service.serve_forever())
    term_task = loop.create_task(term.wait())
    try:
        done, _pending = await asyncio.wait(
            {serve_task, term_task}, return_when=asyncio.FIRST_COMPLETED)
        if term_task in done:
            log.info("SIGTERM received; draining %s", what)
            await service.drain()
    except asyncio.CancelledError:
        pass
    finally:
        serve_task.cancel()
        term_task.cancel()
        await service.close()


def _cmd_serve(args) -> int:
    import asyncio
    import logging

    from repro.core.zoo import GeniexZoo
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import EmulationServer

    log = logging.getLogger("repro.cli")
    registry = ModelRegistry(
        GeniexZoo(cache_dir=args.cache_dir, verbose=True,
                  max_memory_entries=args.max_models),
        max_models=args.max_models,
        max_nets=args.max_nets,
        tile_cache_size=args.tile_cache,
        engine_workers=args.engine_workers,
        backend=args.backend)
    server = EmulationServer(
        registry,
        max_batch_rows=args.max_batch,
        flush_deadline_s=args.flush_deadline_ms / 1000.0,
        max_queue_rows=args.max_queue,
        max_workers=args.workers)

    async def run() -> None:
        await server.start(args.host, args.port)
        log.info("serve options: max_batch=%d flush_deadline=%g ms",
                 args.max_batch, args.flush_deadline_ms)
        await _run_until_sigterm(server, log, "server")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log.info("shutting down")
    return 0


def _cmd_fleet(args) -> int:
    import asyncio
    import logging

    from repro.core.zoo import default_cache_dir
    from repro.fleet import FleetFrontend, FleetSupervisor

    log = logging.getLogger("repro.cli")
    cache_dir = args.cache_dir or default_cache_dir()
    worker_args = ["--max-batch", str(args.max_batch),
                   "--max-models", str(args.max_models),
                   "--max-nets", str(args.max_nets),
                   "--engine-workers", str(args.engine_workers)]
    frontend = FleetFrontend(
        replication=args.replication, vnodes=args.vnodes,
        max_inflight=args.max_inflight,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        health_interval_s=args.health_interval)
    supervisor = FleetSupervisor(args.workers, cache_dir,
                                 worker_args=worker_args,
                                 respawn=args.respawn)

    class _Fleet:
        """One drain/close surface over front-end + supervisor."""

        async def serve_forever(self):
            await frontend.serve_forever()

        async def drain(self):
            await frontend.drain()
            await supervisor.stop()

        async def close(self):
            await supervisor.stop()
            await frontend.close()

    async def run() -> None:
        await frontend.start(args.host, args.port)
        await supervisor.start(frontend)
        log.info("fleet: %d worker(s), replication %d, shared cache %s",
                 args.workers, args.replication, cache_dir)
        await _run_until_sigterm(_Fleet(), log, "fleet")

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log.info("shutting down fleet")
    return 0


def _cmd_obs(args) -> int:
    from repro.errors import ConfigError
    from repro.obs import format_stage_report, stage_report

    if args.fleet:
        return _cmd_obs_fleet(args)
    if args.input:
        with open(args.input) as handle:
            payload = json.load(handle)
        traces = payload["traces"] if isinstance(payload, dict) else payload
    else:
        from repro.serve.client import ServeClient
        with ServeClient(args.host, args.port) as client:
            traces = client.traces()
    if not isinstance(traces, list):
        raise ConfigError(
            "expected a trace list (or a {'traces': [...]} dump, the "
            "/v1/debug/traces response shape)")
    report = stage_report(traces)
    if args.json:
        print(json.dumps({"traces": len(traces), "stages": report},
                         indent=2))
    else:
        print(f"{len(traces)} traces")
        print(format_stage_report(report))
    return 0


def _cmd_obs_fleet(args) -> int:
    from repro.errors import ConfigError
    from repro.obs import fleet_report, format_fleet_report

    if args.input:
        with open(args.input) as handle:
            metrics = json.load(handle)
    else:
        from repro.serve.client import ServeClient
        with ServeClient(args.host, args.port) as client:
            metrics = client.metrics()
    if not isinstance(metrics, dict) or "workers" not in metrics:
        raise ConfigError(
            "expected a fleet front-end /metrics JSON shape (with a "
            "'workers' section); point --host/--port at the front-end, "
            "not a worker")
    report = fleet_report(metrics)
    if args.json:
        print(json.dumps({"fleet": metrics.get("fleet", {}),
                          "workers": report}, indent=2))
    else:
        shed = metrics.get("fleet", {}).get("shed", {})
        print(f"{len(report)} worker(s), "
              f"{len(metrics.get('ring', {}).get('members', []))} in ring"
              + (f", shed {shed}" if shed else ""))
        print(format_fleet_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GENIEx reproduction command-line interface")
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="logging level for repro.* loggers (DEBUG/INFO/WARNING/...; "
             "default: $REPRO_LOG_LEVEL or INFO)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_char = sub.add_parser("characterize",
                            help="NF statistics of a crossbar design")
    _add_crossbar_args(p_char)
    _add_spec_args(p_char)
    p_char.add_argument("--samples", type=int, default=4,
                        help="conductance matrices to simulate")
    p_char.add_argument("--seed", type=int, default=0)
    p_char.set_defaults(func=_cmd_characterize)

    p_train = sub.add_parser("train-geniex",
                             help="fit (or load) a GENIEx emulator")
    _add_crossbar_args(p_train)
    _add_spec_args(p_train)
    p_train.add_argument("--samples", type=int, default=60,
                         action=_TrackedAction,
                         help="conductance matrices in the training sweep")
    p_train.add_argument("--hidden", type=int, default=256,
                         action=_TrackedAction)
    p_train.add_argument("--layers", type=int, default=2,
                         action=_TrackedAction)
    p_train.add_argument("--epochs", type=int, default=180,
                         action=_TrackedAction)
    p_train.add_argument("--seed", type=int, default=0,
                         action=_TrackedAction)
    p_train.set_defaults(func=_cmd_train_geniex)

    p_spec = sub.add_parser(
        "spec", help="print / validate a declarative emulation spec")
    _add_spec_args(p_spec)
    p_spec.add_argument("--list", action="store_true",
                        help="list preset names and exit")
    p_spec.add_argument("--keys", action="store_true",
                        help="print the spec's content digests")
    p_spec.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the spec JSON to a file")
    p_spec.set_defaults(func=_cmd_spec)

    p_fig = sub.add_parser("fig", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(_FIG_RUNNERS))
    _add_spec_args(p_fig)
    p_fig.add_argument("--workers", type=int, default=None,
                       help="funcsim runtime workers for DNN accuracy "
                            "experiments (default: $REPRO_WORKERS or 1; "
                            ">1 uses the sharded process backend)")
    p_fig.add_argument("--backend", default=None,
                       help="fused-kernel array backend (numpy, numba, "
                            "torch, or interp for the interpreted "
                            "reference; default: $REPRO_BACKEND or numpy)")
    p_fig.set_defaults(func=_cmd_fig)

    p_mitigate = sub.add_parser(
        "mitigate", help="run a spec's mitigation recipe on a dataset")
    _add_spec_args(p_mitigate)
    p_mitigate.add_argument(
        "--dataset", default="blobs",
        help="dataset handle: a name (blobs/shapes/textures) or a JSON "
             "object like '{\"name\": \"blobs\", \"n_train\": 256}'")
    p_mitigate.add_argument("--hidden", type=int, nargs="+", default=[32],
                            help="classifier hidden layer widths")
    p_mitigate.add_argument("--model-seed", type=int, default=0,
                            help="classifier init seed")
    p_mitigate.add_argument("--no-baseline", action="store_true",
                            help="skip the unmitigated-baseline accuracy")
    p_mitigate.set_defaults(func=_cmd_mitigate)

    p_serve = sub.add_parser(
        "serve", help="run the emulation service (JSON over HTTP)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="0 picks a free port")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="rows per coalesced microbatch")
    p_serve.add_argument("--flush-deadline-ms", type=float, default=2.0,
                         help="max time a queued request waits for peers")
    p_serve.add_argument("--max-queue", type=int, default=4096,
                         help="pending rows per key before 429")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="executor threads running batched model calls")
    p_serve.add_argument("--max-models", type=int, default=8,
                         help="warm emulators kept in memory (LRU)")
    p_serve.add_argument("--max-nets", type=int, default=8,
                         help="compiled network programs kept in memory "
                              "(LRU)")
    p_serve.add_argument("--tile-cache", type=int, default=256,
                         help="per-engine tile-result LRU size; 0 disables")
    p_serve.add_argument("--engine-workers", type=int, default=1,
                         help="shard prepared-engine matmuls across this "
                              "many runtime threads (1 = inline)")
    p_serve.add_argument("--backend", default=None,
                         help="fused-kernel array backend for warm engines "
                              "(numpy, numba, torch, or interp; default: "
                              "$REPRO_BACKEND or numpy)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="GENIEx zoo directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro/geniex)")
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet", help="run a consistent-hash front-end over N serve "
                      "workers sharing one artifact store")
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="serve worker processes to spawn")
    p_fleet.add_argument("--host", default="127.0.0.1",
                         help="front-end bind address (workers stay on "
                              "loopback)")
    p_fleet.add_argument("--port", type=int, default=8000,
                         help="front-end port; 0 picks a free port")
    p_fleet.add_argument("--replication", type=int, default=1,
                         help="default workers per routing key (hot keys "
                              "can raise it via spec.runtime.fleet)")
    p_fleet.add_argument("--vnodes", type=int, default=64,
                         help="virtual nodes per worker on the hash ring")
    p_fleet.add_argument("--max-inflight", type=int, default=256,
                         help="global in-flight bound before 429")
    p_fleet.add_argument("--quota-rate", type=float, default=None,
                         help="per-tenant requests/s (X-Repro-Tenant "
                              "header); default: no quotas")
    p_fleet.add_argument("--quota-burst", type=float, default=None,
                         help="per-tenant burst size (default: the rate)")
    p_fleet.add_argument("--health-interval", type=float, default=2.0,
                         help="seconds between per-worker health probes")
    p_fleet.add_argument("--respawn", action="store_true",
                         help="respawn and re-admit workers that die")
    p_fleet.add_argument("--max-batch", type=int, default=64,
                         help="worker rows per coalesced microbatch")
    p_fleet.add_argument("--max-models", type=int, default=8,
                         help="warm emulators per worker (LRU)")
    p_fleet.add_argument("--max-nets", type=int, default=8,
                         help="compiled network programs per worker (LRU)")
    p_fleet.add_argument("--engine-workers", type=int, default=1,
                         help="runtime threads per worker engine")
    p_fleet.add_argument("--cache-dir", default=None,
                         help="shared GENIEx zoo directory — the fleet's "
                              "artifact store (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro/geniex)")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_obs = sub.add_parser(
        "obs", help="per-stage latency report from serve traces")
    p_obs.add_argument("--input", default=None, metavar="FILE",
                       help="trace dump file (a /v1/debug/traces response "
                            "or a bare trace list); default: fetch live")
    p_obs.add_argument("--host", default="127.0.0.1",
                       help="server to fetch traces from (without --input)")
    p_obs.add_argument("--port", type=int, default=8000)
    p_obs.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of a table")
    p_obs.add_argument("--fleet", action="store_true",
                       help="per-worker fleet table (point --host/--port "
                            "at a fleet front-end, or --input at its "
                            "saved /metrics JSON)")
    p_obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv=None) -> int:
    from repro.obs import setup_logging

    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
