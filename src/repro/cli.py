"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``characterize`` — NF statistics of a crossbar configuration;
* ``train-geniex`` — characterise + fit a GENIEx model (cached in the zoo);
* ``fig`` — regenerate one of the paper's figures/tables from the terminal;
* ``serve`` — run the async emulation service with dynamic microbatching.

Every option maps 1:1 onto :class:`repro.xbar.config.CrossbarConfig` and the
experiment profiles, so the CLI is a thin, scriptable veneer over the same
API the benches use.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_crossbar_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=32)
    parser.add_argument("--cols", type=int, default=None,
                        help="defaults to --rows")
    parser.add_argument("--r-on", type=float, default=100e3,
                        help="ON resistance in Ohm")
    parser.add_argument("--onoff", type=float, default=6.0,
                        help="conductance ON/OFF ratio")
    parser.add_argument("--vdd", type=float, default=0.25,
                        help="supply voltage in V")


def _crossbar_from_args(args):
    from repro.xbar.config import CrossbarConfig
    return CrossbarConfig(rows=args.rows,
                          cols=args.cols if args.cols else args.rows,
                          r_on_ohm=args.r_on, onoff_ratio=args.onoff,
                          v_supply_v=args.vdd)


def _cmd_characterize(args) -> int:
    from repro.circuit.simulator import CrossbarCircuitSimulator
    from repro.core.metrics import nonideality_factor, valid_mask
    from repro.core.sampling import SamplingSpec, VgSampler
    from repro.xbar.ideal import ideal_mvm

    config = _crossbar_from_args(args)
    spec = SamplingSpec(n_g_matrices=args.samples, n_v_per_g=8,
                        seed=args.seed)
    voltages, conductances, groups = VgSampler(config, spec).sample()
    simulator = CrossbarCircuitSimulator(config)
    values = []
    for g in range(spec.n_g_matrices):
        rows = np.nonzero(groups == g)[0]
        i_ideal = ideal_mvm(voltages[rows], conductances[g])
        i_real = simulator.solve_batch(voltages[rows], conductances[g],
                                       mode="full")
        values.append(nonideality_factor(i_ideal,
                                         i_real)[valid_mask(i_ideal)])
    nf = np.concatenate(values)
    print(f"crossbar {config.rows}x{config.cols}  R_on "
          f"{config.r_on_ohm / 1e3:g}k  ON/OFF {config.onoff_ratio:g}  "
          f"Vdd {config.v_supply_v:g} V")
    print(f"NF over {nf.size} column readouts: "
          f"mean {nf.mean():+.4f}  median {np.median(nf):+.4f}  "
          f"q1 {np.percentile(nf, 25):+.4f}  "
          f"q3 {np.percentile(nf, 75):+.4f}")
    return 0


def _cmd_train_geniex(args) -> int:
    from repro.core.sampling import SamplingSpec
    from repro.core.trainer import TrainSpec
    from repro.core.zoo import GeniexZoo

    config = _crossbar_from_args(args)
    sampling = SamplingSpec(n_g_matrices=args.samples, n_v_per_g=20,
                            seed=args.seed)
    training = TrainSpec(hidden=args.hidden, hidden_layers=args.layers,
                         epochs=args.epochs, batch_size=128, lr=2e-3,
                         patience=max(10, args.epochs // 4), seed=args.seed)
    zoo = GeniexZoo(verbose=True)
    emulator = zoo.get_or_train(config, sampling, training, progress=True)
    key = zoo.artifact_key(config, sampling, training, "full")
    print(f"emulator ready: {emulator.rows}x{emulator.cols} "
          f"hidden={emulator.model.hidden}x{emulator.model.hidden_layers} "
          f"(cache key {key}, dir {zoo.cache_dir})")
    return 0


_FIG_RUNNERS = {
    "table1": "repro.experiments.table1_comparison:run_table1",
    "fig2": "repro.experiments.fig2_nf_analysis:run_fig2",
    "fig3": "repro.experiments.fig3_nonlinearity:run_fig3",
    "fig5": "repro.experiments.fig5_rmse:run_fig5",
    "fig7": "repro.experiments.fig7_design_params:run_fig7",
    "fig8": "repro.experiments.fig8_quantization:run_fig8",
    "fig9": "repro.experiments.fig9_bitslicing:run_fig9",
    "variations": "repro.experiments.variations:run_variations",
}


def _cmd_fig(args) -> int:
    import importlib
    import os

    if args.workers is not None:
        # The experiment drivers read the worker count through
        # repro.experiments.common.default_workers().
        os.environ["REPRO_WORKERS"] = str(args.workers)
    module_name, func_name = _FIG_RUNNERS[args.name].split(":")
    runner = getattr(importlib.import_module(module_name), func_name)
    result = runner()
    print(result.format())
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core.zoo import GeniexZoo
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import EmulationServer

    registry = ModelRegistry(
        GeniexZoo(cache_dir=args.cache_dir, verbose=True,
                  max_memory_entries=args.max_models),
        max_models=args.max_models,
        tile_cache_size=args.tile_cache,
        engine_workers=args.engine_workers)
    server = EmulationServer(
        registry,
        max_batch_rows=args.max_batch,
        flush_deadline_s=args.flush_deadline_ms / 1000.0,
        max_queue_rows=args.max_queue,
        max_workers=args.workers)

    async def run() -> None:
        await server.start(args.host, args.port)
        print(f"repro serve listening on http://{server.host}:{server.port} "
              f"(max_batch={args.max_batch}, "
              f"flush_deadline={args.flush_deadline_ms:g} ms)", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GENIEx reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p_char = sub.add_parser("characterize",
                            help="NF statistics of a crossbar design")
    _add_crossbar_args(p_char)
    p_char.add_argument("--samples", type=int, default=4,
                        help="conductance matrices to simulate")
    p_char.add_argument("--seed", type=int, default=0)
    p_char.set_defaults(func=_cmd_characterize)

    p_train = sub.add_parser("train-geniex",
                             help="fit (or load) a GENIEx emulator")
    _add_crossbar_args(p_train)
    p_train.add_argument("--samples", type=int, default=60,
                         help="conductance matrices in the training sweep")
    p_train.add_argument("--hidden", type=int, default=256)
    p_train.add_argument("--layers", type=int, default=2)
    p_train.add_argument("--epochs", type=int, default=180)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.set_defaults(func=_cmd_train_geniex)

    p_fig = sub.add_parser("fig", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(_FIG_RUNNERS))
    p_fig.add_argument("--workers", type=int, default=None,
                       help="funcsim runtime workers for DNN accuracy "
                            "experiments (default: $REPRO_WORKERS or 1; "
                            ">1 uses the sharded process backend)")
    p_fig.set_defaults(func=_cmd_fig)

    p_serve = sub.add_parser(
        "serve", help="run the emulation service (JSON over HTTP)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="0 picks a free port")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="rows per coalesced microbatch")
    p_serve.add_argument("--flush-deadline-ms", type=float, default=2.0,
                         help="max time a queued request waits for peers")
    p_serve.add_argument("--max-queue", type=int, default=4096,
                         help="pending rows per key before 429")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="executor threads running batched model calls")
    p_serve.add_argument("--max-models", type=int, default=8,
                         help="warm emulators kept in memory (LRU)")
    p_serve.add_argument("--tile-cache", type=int, default=256,
                         help="per-engine tile-result LRU size; 0 disables")
    p_serve.add_argument("--engine-workers", type=int, default=1,
                         help="shard prepared-engine matmuls across this "
                              "many runtime threads (1 = inline)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="GENIEx zoo directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro/geniex)")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
