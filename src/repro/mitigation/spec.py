"""The mitigation spec node: declarative fault-mitigation recipes.

:class:`MitigationSpec` describes *how a model is hardened against* a
spec's crossbar non-idealities — noise-injection (optionally
hardware-in-the-loop) training plus post-training output calibration —
as a node of :class:`repro.api.spec.EmulationSpec` (strict JSON
round-trip, ``evolve`` overrides, content digests). It lives here, next
to the mitigation implementations, so the API layer depends on the
mitigation package and not the other way around (the same layering as
:class:`repro.nonideal.NonidealitySpec`).

The default instance is the *identity*: no mitigation, and — by contract
with the spec digests — byte-identical keys to a spec that predates this
node. A non-identity node folds into ``spec.model_key()`` / ``key()``,
so a mitigated setup can never cache-alias its unmitigated twin in the
zoo, the serving registry, or any tier built on those digests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.digest import content_key


def _require_int(name: str, value, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")


@dataclass(frozen=True)
class NoiseTrainSpec:
    """Noise-injection (re)training recipe.

    Attributes:
        epochs: Training epochs. ``0`` disables the stage (the identity);
            any positive value trains a model from the dataset handle —
            with ``weight_sigma == 0`` that is plain SGD, the clean
            baseline schedule for calibration-only mitigation.
        weight_sigma: Std-dev of the multiplicative weight perturbation
            re-sampled every optimisation step (ignored while
            ``epochs == 0``).
        activation_sigma: Optional multiplicative input-batch noise.
        include_1d: Perturb 1-D parameters (biases, norm scales) too.
            Defaults to ``False`` — the historical contract, matching
            crossbar physics: 1-D parameters live in digital peripherals,
            not programmed conductances.
        hardware: Run every training forward pass through the spec's
            (possibly faulty) funcsim engine via ``convert_to_mvm`` with
            straight-through gradients — training *through* the crossbar
            instead of through a Gaussian proxy of it.
        batch_size: SGD minibatch size.
        lr: Adam learning rate.
    """

    epochs: int = 0
    weight_sigma: float = 0.05
    activation_sigma: float = 0.0
    include_1d: bool = False
    hardware: bool = False
    batch_size: int = 64
    lr: float = 3e-3

    def __post_init__(self):
        _require_int("mitigation.noise.epochs", self.epochs)
        _require_int("mitigation.noise.batch_size", self.batch_size,
                     minimum=1)
        if self.weight_sigma < 0 or self.activation_sigma < 0:
            raise ConfigError("mitigation.noise sigmas must be >= 0")
        if self.lr <= 0:
            raise ConfigError(
                f"mitigation.noise.lr must be > 0, got {self.lr}")

    @property
    def is_identity(self) -> bool:
        """True when this stage trains nothing (``epochs == 0``)."""
        return self.epochs == 0


@dataclass(frozen=True)
class CalibrationSpec:
    """Post-training output-calibration recipe.

    Attributes:
        samples: Calibration inputs taken from the head of the training
            split. ``0`` disables the stage (the identity); the affine
            fit needs at least 2 samples, so ``1`` is rejected outright.
        ridge: L2 regulariser of the per-output affine fit.
        batch: Forward-pass batch size while collecting calibration
            outputs (value-neutral; kept out of the digest).
    """

    samples: int = 0
    ridge: float = 1e-3
    batch: int = 64

    def __post_init__(self):
        _require_int("mitigation.calibration.samples", self.samples)
        if self.samples == 1:
            raise ConfigError(
                "mitigation.calibration.samples must be 0 (disabled) or "
                ">= 2 (the affine fit needs two points)")
        _require_int("mitigation.calibration.batch", self.batch, minimum=1)
        if self.ridge < 0:
            raise ConfigError(
                f"mitigation.calibration.ridge must be >= 0, "
                f"got {self.ridge}")

    @property
    def is_identity(self) -> bool:
        """True when no calibration is fitted (``samples == 0``)."""
        return self.samples == 0


@dataclass(frozen=True)
class MitigationSpec:
    """Declarative mitigation recipe for one emulation setup.

    Composes the two software-side mitigations this package implements;
    ``seed`` keys every stochastic training draw (batch shuffles and
    noise injection) through the same coordinate-keyed RNG discipline as
    :mod:`repro.nonideal`, so mitigated training is bit-identical across
    executors and batch-iteration orders.
    """

    seed: int = 0
    noise: NoiseTrainSpec = NoiseTrainSpec()
    calibration: CalibrationSpec = CalibrationSpec()

    def __post_init__(self):
        _require_int("mitigation.seed", self.seed)
        if not isinstance(self.noise, NoiseTrainSpec):
            raise ConfigError(
                f"mitigation.noise must be a NoiseTrainSpec, got "
                f"{type(self.noise).__name__}")
        if not isinstance(self.calibration, CalibrationSpec):
            raise ConfigError(
                f"mitigation.calibration must be a CalibrationSpec, got "
                f"{type(self.calibration).__name__}")

    @property
    def is_identity(self) -> bool:
        """True when neither stage does anything (the unmitigated setup)."""
        return self.noise.is_identity and self.calibration.is_identity

    def digest(self) -> str:
        """Stable content digest of the *active* mitigation recipe.

        Built over the active stages' fields only, so adding a stage to
        this node later (identity by default) never re-keys existing
        mitigated specs. The seed participates only when the noise stage
        actually draws from it: calibration is a deterministic function
        of the dataset, so two calibration-only specs differing solely
        in seed key identically.
        """
        payload = {}
        if not self.noise.is_identity:
            payload["noise"] = dataclasses.asdict(self.noise)
            payload["seed"] = self.seed
        if not self.calibration.is_identity:
            payload["calibration"] = dataclasses.asdict(self.calibration)
        return content_key("mit", payload)
