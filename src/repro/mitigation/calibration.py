"""Post-training output calibration against crossbar distortion.

The systematic component of crossbar non-ideality (mean current loss or
boost) is a smooth, nearly affine map of the layer outputs. Fitting a
per-class affine correction ``logits' = a * logits + b`` on a small
calibration set recovers a large share of the lost accuracy without
touching the programmed weights — the cheapest mitigation available on
deployed hardware (cf. the compensation schemes of CxDNN, the paper's
reference [9]).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.modules import Module
from repro.nn.tensor import Tensor, no_grad


class CalibratedModel(Module):
    """Wraps a (converted) model with a fitted affine output correction."""

    def __init__(self, base: Module, scale: np.ndarray, offset: np.ndarray):
        super().__init__()
        self.base = base
        # Buffers, not plain attrs: the fitted correction must survive a
        # state_dict() round trip along with the base weights.
        self.register_buffer("scale", np.asarray(scale, dtype=np.float32))
        self.register_buffer("offset", np.asarray(offset, dtype=np.float32))

    def forward(self, x):
        # Graph-connected: gradients keep flowing into the base model, so
        # calibration composes with further (re)training.
        return self.base(x) * self.scale + self.offset


def fit_affine_correction(noisy: np.ndarray, clean: np.ndarray,
                          ridge: float = 1e-3):
    """Per-output 1-D ridge fit of ``clean ~ scale * noisy + offset``.

    The array-level core of :func:`fit_output_calibration`, exposed so
    callers holding raw outputs (e.g. the robustness sweep, which works
    on engine matmuls rather than models) can reuse the exact same fit.

    Returns ``(scale, offset)`` as float64 arrays shaped like one output
    row.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    clean = np.asarray(clean, dtype=np.float64)
    if noisy.shape != clean.shape:
        raise ShapeError(
            f"model output shapes differ: {noisy.shape} vs {clean.shape}")
    if len(noisy) < 2:
        raise ConfigError("calibration needs at least 2 samples")
    n = noisy.shape[0]
    mean_x = noisy.mean(axis=0)
    mean_y = clean.mean(axis=0)
    var_x = ((noisy - mean_x) ** 2).sum(axis=0) / n
    cov_xy = ((noisy - mean_x) * (clean - mean_y)).sum(axis=0) / n
    scale = (cov_xy + ridge) / (var_x + ridge)
    offset = mean_y - scale * mean_x
    return scale, offset


def fit_output_calibration(nonideal_model: Module,
                           reference_model: Module,
                           x_calibration: np.ndarray,
                           batch: int = 64,
                           ridge: float = 1e-3) -> CalibratedModel:
    """Fit per-output affine corrections by ridge regression.

    Args:
        nonideal_model: The crossbar-converted model to correct.
        reference_model: The clean (float or ideal-FxP) model providing
            target logits.
        x_calibration: Unlabelled calibration inputs (labels not needed —
            the reference model supplies the targets).
        ridge: L2 regulariser on the scale deviation from 1.

    Returns:
        A :class:`CalibratedModel` wrapping ``nonideal_model``.
    """
    if len(x_calibration) < 2:
        raise ConfigError("calibration needs at least 2 samples")
    noisy_out, clean_out = [], []
    with no_grad():
        for start in range(0, len(x_calibration), batch):
            block = Tensor(x_calibration[start:start + batch])
            noisy_out.append(nonideal_model(block).data)
            clean_out.append(reference_model(block).data)
    noisy = np.concatenate(noisy_out)
    clean = np.concatenate(clean_out)
    scale, offset = fit_affine_correction(noisy, clean, ridge=ridge)
    return CalibratedModel(nonideal_model, scale, offset)
