"""Technology-aware training: noise injection during SGD.

Crossbar non-idealities act (to first order) as data-dependent
multiplicative distortion of each MVM. Training the network with random
multiplicative perturbations of weights (and optionally activations) finds
minima that are flat along exactly those distortion directions, which is the
classic software-side mitigation (cf. Chakraborty et al., TETCI 2018 — the
paper's reference [10]).

The injected noise is re-sampled per forward pass and *not* part of the
stored weights; evaluation uses the clean parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.losses import cross_entropy
from repro.nn.modules import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class NoiseSpec:
    """Noise-injection configuration.

    Attributes:
        weight_sigma: Std-dev of the multiplicative weight perturbation
            ``w -> w * (1 + sigma * eps)``, ``eps ~ N(0, 1)``, re-sampled
            every optimisation step. The paper's Fig. 2/5 NF spreads
            correspond to a few percent.
        activation_sigma: Optional multiplicative activation noise applied
            to the input batch.
    """

    weight_sigma: float = 0.05
    activation_sigma: float = 0.0

    def __post_init__(self):
        if self.weight_sigma < 0 or self.activation_sigma < 0:
            raise ConfigError("noise sigmas must be >= 0")


class _WeightPerturbation:
    """Applies and exactly reverts multiplicative weight noise."""

    def __init__(self, model: Module, sigma: float, rng):
        self._entries = []
        for param in model.parameters():
            if param.ndim < 2:
                continue  # biases / norm scales stay clean
            factor = 1.0 + sigma * rng.standard_normal(
                param.data.shape).astype(param.data.dtype)
            original = param.data.copy()
            param.data *= factor
            self._entries.append((param, original, factor))

    def revert_and_project_grads(self):
        """Restore clean weights; gradients stay as computed (straight-
        through estimator w.r.t. the perturbed forward)."""
        for param, original, factor in self._entries:
            param.data[...] = original
            if param.grad is not None:
                # Chain rule through w_noisy = w * factor.
                param.grad = param.grad * factor


def train_with_noise(model: Module, x_train: np.ndarray,
                     y_train: np.ndarray, spec: NoiseSpec,
                     epochs: int = 10, batch_size: int = 64,
                     lr: float = 3e-3, seed=0,
                     verbose: bool = False) -> list:
    """Train a classifier with injected analog-style noise.

    Returns the per-epoch mean training loss. The model is left in eval
    mode with *clean* weights.
    """
    rng = rng_from_seed(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    n = len(x_train)
    history = []
    for epoch in range(epochs):
        model.train()
        perm = rng.permutation(n)
        total = 0.0
        for start in range(0, n, batch_size):
            idx = perm[start:start + batch_size]
            batch = x_train[idx]
            if spec.activation_sigma > 0:
                batch = batch * (1.0 + spec.activation_sigma
                                 * rng.standard_normal(batch.shape)
                                 .astype(batch.dtype))
            perturbation = _WeightPerturbation(model, spec.weight_sigma,
                                               rng)
            loss = cross_entropy(model(Tensor(batch)), y_train[idx])
            optimizer.zero_grad()
            loss.backward()
            perturbation.revert_and_project_grads()
            optimizer.step()
            total += loss.item() * len(idx)
        history.append(total / n)
        if verbose:
            print(f"  [noise-train] epoch {epoch} loss {history[-1]:.4f}",
                  flush=True)
    model.eval()
    return history
