"""Technology-aware training: noise injection during SGD.

Crossbar non-idealities act (to first order) as data-dependent
multiplicative distortion of each MVM. Training the network with random
multiplicative perturbations of weights (and optionally activations) finds
minima that are flat along exactly those distortion directions, which is the
classic software-side mitigation (cf. Chakraborty et al., TETCI 2018 — the
paper's reference [10]).

The injected noise is re-sampled per forward pass and *not* part of the
stored weights; evaluation uses the clean parameters.

Two refinements over the plain recipe:

* **Coordinate-keyed randomness.** Every draw comes from a generator
  seeded by ``(seed, purpose, epoch, step[, param])`` — the same
  discipline as :mod:`repro.nonideal` — instead of one shared sequential
  stream. A given (epoch, step) consumes exactly its own draws, so
  training is bit-identical regardless of executor, of how many batches
  an epoch has, or of whether some stage skips its draws.

* **Hardware in the loop.** With ``engine=...`` every training forward
  pass also runs through the (possibly faulty) funcsim engine via
  :func:`repro.funcsim.convert_to_mvm` + ``sync_mvm_model``, and the loss
  is taken on the *hardware* logits with straight-through gradients over
  the float path — training through the crossbar physics instead of
  through a Gaussian proxy of it (cf. TxSim, arXiv:2002.11151).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.losses import cross_entropy
from repro.nn.modules import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import SeedLike

_SEED_MASK = (1 << 63) - 1

# Stable purpose indices of the per-(seed, purpose, coords...) streams.
_STREAM_PERMUTATION = 0
_STREAM_ACTIVATION = 1
_STREAM_WEIGHT = 2


def _normalise_seed(seed: SeedLike) -> int:
    """Collapse any ``SeedLike`` to one base integer for stream keys."""
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(_SEED_MASK))
    if seed is None:
        return int(np.random.default_rng().integers(_SEED_MASK))
    return int(seed) & _SEED_MASK


def _stream(seed: int, *coords) -> np.random.Generator:
    """The generator for one (purpose, coordinates) draw site."""
    return np.random.default_rng(
        [seed] + [int(c) & _SEED_MASK for c in coords])


@dataclass(frozen=True)
class NoiseSpec:
    """Noise-injection configuration.

    Attributes:
        weight_sigma: Std-dev of the multiplicative weight perturbation
            ``w -> w * (1 + sigma * eps)``, ``eps ~ N(0, 1)``, re-sampled
            every optimisation step. The paper's Fig. 2/5 NF spreads
            correspond to a few percent.
        activation_sigma: Optional multiplicative activation noise applied
            to the input batch.
        include_1d: Whether 1-D parameters (biases, norm scales/shifts)
            are perturbed too. Defaults to ``False`` — the historical
            behaviour, and the physically faithful one: 1-D parameters
            live in the digital peripherals, not in programmed
            conductances, so crossbar noise never touches them. Set
            ``True`` for full-parameter robustness training.
    """

    weight_sigma: float = 0.05
    activation_sigma: float = 0.0
    include_1d: bool = False

    def __post_init__(self):
        if self.weight_sigma < 0 or self.activation_sigma < 0:
            raise ConfigError("noise sigmas must be >= 0")


class _WeightPerturbation:
    """Applies and exactly reverts multiplicative weight noise.

    ``rng`` is either a single generator (draws consumed in parameter
    order) or a callable ``param_index -> Generator`` yielding one
    independent stream per parameter, so the draw a parameter sees is a
    property of its position, not of which other parameters drew before
    it. By default only parameters with ``ndim >= 2`` (the ones mapped
    onto crossbars) are perturbed; ``include_1d=True`` extends the noise
    to biases and norm parameters.
    """

    def __init__(self, model: Module, sigma: float, rng,
                 include_1d: bool = False):
        self._entries = []
        if sigma == 0:
            return
        for index, param in enumerate(model.parameters()):
            if param.ndim < 2 and not include_1d:
                continue  # digital-peripheral params stay clean by default
            gen = rng(index) if callable(rng) else rng
            factor = 1.0 + sigma * gen.standard_normal(
                param.data.shape).astype(param.data.dtype)
            original = param.data.copy()
            param.data *= factor
            self._entries.append((param, original, factor))

    def revert_and_project_grads(self):
        """Restore clean weights; gradients stay as computed (straight-
        through estimator w.r.t. the perturbed forward)."""
        for param, original, factor in self._entries:
            param.data[...] = original
            if param.grad is not None:
                # Chain rule through w_noisy = w * factor.
                param.grad = param.grad * factor


def train_with_noise(model: Module, x_train: np.ndarray,
                     y_train: np.ndarray, spec: NoiseSpec,
                     epochs: int = 10, batch_size: int = 64,
                     lr: float = 3e-3, seed: SeedLike = 0,
                     verbose: bool = False, engine=None,
                     chunk_rows: int | None = None) -> list:
    """Train a classifier with injected analog-style noise.

    With ``engine=...`` (a funcsim MVM engine) training is hardware in
    the loop: the model is converted once via
    :func:`repro.funcsim.convert_to_mvm`, re-programmed from the live
    (perturbed) parameters every step via ``sync_mvm_model``, and the
    loss is taken on ``ideal + (hardware - ideal)`` — forward values from
    the crossbar, gradients through the float path (straight-through).
    Engine preparation is content-keyed (faults included), so the run is
    bit-identical across executors and repetitions. Re-programming every
    step is exact but costly; intended for the small models of this
    repo's training loops. The hardware pass runs in eval mode, so
    hardware-in-the-loop assumes models without train-time stochasticity.

    Returns the per-epoch mean training loss. The model is left in eval
    mode with *clean* weights.
    """
    base_seed = _normalise_seed(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    converted = None
    if engine is not None:
        from repro.funcsim.convert import convert_to_mvm, sync_mvm_model
        converted = convert_to_mvm(model, engine, chunk_rows=chunk_rows)
    n = len(x_train)
    history = []
    for epoch in range(epochs):
        model.train()
        perm = _stream(base_seed, _STREAM_PERMUTATION,
                       epoch).permutation(n)
        total = 0.0
        for step, start in enumerate(range(0, n, batch_size)):
            idx = perm[start:start + batch_size]
            batch = x_train[idx]
            if spec.activation_sigma > 0:
                gen = _stream(base_seed, _STREAM_ACTIVATION, epoch, step)
                batch = batch * (1.0 + spec.activation_sigma
                                 * gen.standard_normal(batch.shape)
                                 .astype(batch.dtype))
            perturbation = _WeightPerturbation(
                model, spec.weight_sigma,
                lambda index: _stream(base_seed, _STREAM_WEIGHT, epoch,
                                      step, index),
                include_1d=spec.include_1d)
            logits = model(Tensor(batch))
            if converted is not None:
                sync_mvm_model(converted, model)
                with no_grad():
                    hardware = converted(Tensor(batch)).data
                # Straight-through: hardware values, float-path gradients.
                logits = logits + Tensor(hardware - logits.data)
            loss = cross_entropy(logits, y_train[idx])
            optimizer.zero_grad()
            loss.backward()
            perturbation.revert_and_project_grads()
            optimizer.step()
            total += loss.item() * len(idx)
        history.append(total / n)
        if verbose:
            print(f"  [noise-train] epoch {epoch} loss {history[-1]:.4f}",
                  flush=True)
    model.eval()
    if converted is not None:
        sync_mvm_model(converted, model)
    return history
