"""Non-ideality mitigation techniques.

The paper's introduction frames accurate modelling as the prerequisite for
*mitigation* ("the efficacy of these mitigation techniques strongly depends
upon the modelling approach ... and retraining of the neural network
weights"). This package implements the two standard software-side
mitigations so the framework closes that loop:

* :mod:`repro.mitigation.noise_training` — technology-aware retraining:
  inject multiplicative weight noise (and optionally activation noise)
  during training so the learned weights are robust to analog distortion;
* :mod:`repro.mitigation.calibration` — post-training output calibration:
  fit per-layer affine corrections on a small calibration set to undo the
  systematic component of the crossbar distortion.

Both are spec-addressable: :class:`MitigationSpec` (in
:mod:`repro.mitigation.spec`) is the ``mitigation`` node of
:class:`repro.api.EmulationSpec`, and
:mod:`repro.mitigation.runner` executes a spec's recipe end to end
(training, conversion, calibration, zoo persistence, metrics). The
runner is intentionally *not* imported here — it depends on
``repro.api``, which imports this package for the spec node.
"""

from repro.mitigation.noise_training import NoiseSpec, train_with_noise
from repro.mitigation.calibration import (
    CalibratedModel,
    fit_affine_correction,
    fit_output_calibration,
)
from repro.mitigation.spec import (
    CalibrationSpec,
    MitigationSpec,
    NoiseTrainSpec,
)

__all__ = [
    "NoiseSpec",
    "train_with_noise",
    "CalibratedModel",
    "fit_affine_correction",
    "fit_output_calibration",
    "CalibrationSpec",
    "MitigationSpec",
    "NoiseTrainSpec",
]
