"""Spec-addressed mitigation runs: train, calibrate, persist, measure.

:func:`run_mitigation` executes the recipe a spec's ``mitigation`` node
describes against that spec's (possibly faulty) engine:

1. resolve the dataset (a content-addressable handle from
   :mod:`repro.datasets.handles`, or raw arrays),
2. noise-injection-train a classifier — optionally hardware in the loop
   through the session's engine (``mitigation.noise.hardware``),
3. convert it onto the session's engine and, when configured, fit the
   output calibration on the head of the training split,
4. persist the trained weights + fitted calibration as one zoo artifact
   under :func:`mitigated_key` (full spec identity × dataset × model
   architecture — mitigated artifacts can never alias raw models or each
   other), and
5. report accuracies: the float model, the mitigated serving model, and
   (optionally) the unmitigated baseline — the same architecture trained
   clean and run on the same faulty engine uncorrected — so every run
   quantifies what the mitigation bought.

Lives outside ``repro.mitigation.__init__``'s import surface because it
imports :mod:`repro.api` (which imports ``repro.mitigation.spec``);
import it as ``repro.mitigation.runner`` or go through
``Session.mitigate`` / the serve endpoint / the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.session import Session
from repro.api.spec import EmulationSpec
from repro.core.zoo import GeniexZoo
from repro.datasets.handles import normalise_handle, resolve_handle
from repro.errors import ConfigError
from repro.mitigation.calibration import CalibratedModel, \
    fit_output_calibration
from repro.mitigation.noise_training import NoiseSpec, train_with_noise
from repro.models import MLP
from repro.nn.losses import accuracy
from repro.nn.modules import Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.digest import content_key


def _dataset_identity(data) -> dict:
    """Digest-ready identity of a dataset argument.

    Handles normalise to their canonical field dict; raw array tuples
    fold to a content digest, so inline data keys just as stably as a
    named handle (only less readably).
    """
    if isinstance(data, (str, dict)):
        return normalise_handle(data)
    x_tr, y_tr, x_te, y_te = data
    return {"inline": content_key(
        "ds", np.asarray(x_tr), np.asarray(y_tr), np.asarray(x_te),
        np.asarray(y_te))}


def mitigated_key(spec: EmulationSpec, data, hidden=(32,),
                  model_seed: int = 0, model: Module | None = None) -> str:
    """Content key of one mitigated-model artifact.

    Folds the full engine-behaviour digest ``spec.key()`` (which already
    carries the mitigation and non-ideality nodes), the dataset identity
    and the classifier architecture. A pretrained ``model`` keys by its
    initial state digest instead of (hidden, seed) — whatever weights
    went in, not how they might have been made.
    """
    if spec.mitigation.is_identity:
        raise ConfigError(
            "spec.mitigation is the identity; there is no mitigated "
            "artifact to key — set mitigation.noise.epochs or "
            "mitigation.calibration.samples")
    if model is not None:
        arch = {"pretrained": content_key(
            "", {k: np.asarray(v.data if isinstance(v, Tensor) else v)
                 for k, v in sorted(model.state_dict().items())})}
    else:
        arch = {"hidden": [int(h) for h in hidden],
                "model_seed": int(model_seed)}
    return content_key("mit", spec.key(),
                       {"dataset": _dataset_identity(data), **arch})


@dataclass
class MitigationResult:
    """One finished (or cache-loaded) mitigation run."""

    key: str
    spec: EmulationSpec
    sizes: tuple
    model: Module            #: float model with the trained clean weights
    serving: Module          #: engine-converted model, calibration applied
    history: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    from_cache: bool = False

    def predict(self, x) -> np.ndarray:
        """Mitigated logits for a batch (through the session engine)."""
        with no_grad():
            return np.asarray(self.serving(Tensor(np.atleast_2d(x))).data,
                              dtype=np.float64)


def _resolve_data(data) -> tuple:
    if isinstance(data, (str, dict)):
        return resolve_handle(data)
    if not isinstance(data, (tuple, list)) or len(data) != 4:
        raise ConfigError(
            "data must be a dataset handle (name or dict) or a "
            "(x_train, y_train, x_test, y_test) tuple")
    return tuple(np.asarray(part) for part in data)


def _infer_sizes(x_train, y_train, y_test, hidden) -> tuple:
    features = int(np.prod(x_train.shape[1:]))
    classes = int(max(int(y_train.max()), int(y_test.max()))) + 1
    return (features, *[int(h) for h in hidden], classes)


def _accuracy(model: Module, x, y) -> float:
    with no_grad():
        return float(accuracy(model(Tensor(x)).data, y))


def run_mitigation(spec: EmulationSpec, data, *, hidden=(32,),
                   model_seed: int = 0, model: Module | None = None,
                   zoo: GeniexZoo | None = None,
                   session: Session | None = None, baseline: bool = True,
                   progress: bool = False) -> MitigationResult:
    """Execute a spec's mitigation recipe end to end (cached by digest).

    ``data`` is a dataset handle (``"blobs"`` / handle dict) or raw
    ``(x_train, y_train, x_test, y_test)`` arrays. ``model`` supplies a
    pretrained classifier for calibration-only recipes
    (``noise.epochs == 0``); otherwise an :class:`~repro.models.MLP` of
    ``(features, *hidden, classes)`` is trained from ``model_seed``.

    A previously persisted artifact under the same :func:`mitigated_key`
    is rebuilt from the zoo instead of retrained (``from_cache=True``;
    metrics and history come from the stored record). The caller owns
    ``session`` when one is passed; otherwise a session is opened and
    closed internally, leaving the returned serving model on an inline
    engine.
    """
    mitigation = spec.mitigation
    if mitigation.is_identity:
        raise ConfigError(
            "spec.mitigation is the identity; set mitigation.noise.epochs "
            "or mitigation.calibration.samples to run a mitigation")
    if mitigation.noise.is_identity and model is None:
        raise ConfigError(
            "calibration-only mitigation (noise.epochs == 0) needs a "
            "pretrained model= to calibrate")
    key = mitigated_key(spec, data, hidden=hidden, model_seed=model_seed,
                        model=model)
    x_train, y_train, x_test, y_test = _resolve_data(data)
    if model is not None:
        sizes = tuple(getattr(model, "sizes", ()))
    else:
        sizes = _infer_sizes(x_train, y_train, y_test, hidden)

    owns_session = session is None
    if session is None:
        session = Session(spec, zoo=zoo, progress=progress)
    zoo = session.zoo or zoo or GeniexZoo()
    try:
        cached = zoo.load_mitigated(key)
        if cached is not None and model is None:
            state, meta = cached
            rebuilt = MLP(tuple(meta["sizes"]), seed=model_seed)
            rebuilt.load_state_dict(
                {k[len("model::"):]: v for k, v in state.items()
                 if k.startswith("model::")})
            rebuilt.eval()
            serving = session.compile(rebuilt)
            if meta.get("calibrated"):
                serving = CalibratedModel(serving,
                                          state["calibration::scale"],
                                          state["calibration::offset"])
            return MitigationResult(
                key=key, spec=spec, sizes=tuple(meta["sizes"]),
                model=rebuilt, serving=serving,
                history=list(meta.get("history", [])),
                metrics=dict(meta.get("metrics", {})), from_cache=True)

        noise = mitigation.noise
        history: list = []
        if model is None:
            model = MLP(sizes, seed=model_seed)
        if not noise.is_identity:
            history = train_with_noise(
                model, x_train, y_train,
                NoiseSpec(weight_sigma=noise.weight_sigma,
                          activation_sigma=noise.activation_sigma,
                          include_1d=noise.include_1d),
                epochs=noise.epochs, batch_size=noise.batch_size,
                lr=noise.lr, seed=mitigation.seed, verbose=progress,
                engine=session.engine if noise.hardware else None,
                chunk_rows=spec.runtime.chunk_rows)
        model.eval()
        serving = session.compile(model)

        calibration = mitigation.calibration
        scale = offset = None
        if not calibration.is_identity:
            if calibration.samples > len(x_train):
                raise ConfigError(
                    f"mitigation.calibration.samples = "
                    f"{calibration.samples} exceeds the training split "
                    f"({len(x_train)} samples)")
            x_cal = x_train[:calibration.samples]
            serving = fit_output_calibration(
                serving, model, x_cal, batch=calibration.batch,
                ridge=calibration.ridge)
            scale, offset = serving.scale, serving.offset

        metrics = {
            "float_accuracy": _accuracy(model, x_test, y_test),
            "mitigated_accuracy": _accuracy(serving, x_test, y_test),
        }
        if baseline:
            reference = MLP(sizes, seed=model_seed)
            train_with_noise(
                reference, x_train, y_train, NoiseSpec(0.0, 0.0),
                epochs=max(noise.epochs, 1), batch_size=noise.batch_size,
                lr=noise.lr, seed=mitigation.seed)
            metrics["baseline_accuracy"] = _accuracy(
                session.compile(reference), x_test, y_test)

        state = {f"model::{k}": np.asarray(v.data if isinstance(v, Tensor)
                                           else v)
                 for k, v in model.state_dict().items()}
        if scale is not None:
            state["calibration::scale"] = np.asarray(scale)
            state["calibration::offset"] = np.asarray(offset)
        meta = {"sizes": list(sizes), "model_seed": int(model_seed),
                "dataset": _dataset_identity(data),
                "calibrated": scale is not None,
                "history": [float(h) for h in history],
                "metrics": metrics}
        zoo.save_mitigated(key, state, meta)
        return MitigationResult(key=key, spec=spec, sizes=sizes,
                                model=model, serving=serving,
                                history=history, metrics=metrics)
    finally:
        if owns_session:
            session.close()
