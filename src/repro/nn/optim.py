"""Optimisers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters, lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must lie in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigError("weight_decay must be >= 0")
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad.astype(param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov \
                    else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional decoupled weight decay (AdamW)."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 decoupled: bool = False):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.decoupled = bool(decoupled)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad.astype(param.data.dtype)
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ConfigError("step_size must be >= 1")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ConfigError("t_max must be >= 1")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * progress))
