"""Saving and loading models: state-dict ``.npz`` archives and the
layer-list wire format used by the serving stack.

The wire format (``repro-net/1``) is a JSON-safe dict describing a model
as an ordered list of layers, each with its structural config and its
state arrays encoded as float64 lists (bit-exact for every dtype the
layer library uses).  :func:`net_from_wire` rebuilds the model as a
:class:`~repro.nn.modules.container.Sequential`, so any model whose leaf
modules run in registration order (``Sequential``, ``MLP``, and friends)
round-trips with a byte-identical forward pass.  :func:`net_digest`
content-addresses the wire — structure plus every parameter — so servers
can cache compiled programs under a stable key.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SerializationError
from repro.utils.digest import canonical_json, content_key


def save_state_dict(state: dict, path: str) -> None:
    """Write a flat name->array state dict to ``path`` (.npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    try:
        np.savez(path, **{k: np.asarray(v) for k, v in state.items()})
    except OSError as exc:
        raise SerializationError(f"could not save state dict to {path}: "
                                 f"{exc}") from exc


def load_state_dict(path: str) -> dict:
    """Read a state dict previously written by :func:`save_state_dict`."""
    if not os.path.exists(path):
        candidate = path + ".npz"
        if os.path.exists(candidate):
            path = candidate
        else:
            raise SerializationError(f"no state dict at {path}")
    try:
        with np.load(path) as archive:
            return {k: archive[k] for k in archive.files}
    except (OSError, ValueError) as exc:
        raise SerializationError(f"could not load state dict from {path}: "
                                 f"{exc}") from exc


# ---------------------------------------------------------------------------
# Layer-list wire format ("repro-net/1")

NET_WIRE_FORMAT = "repro-net/1"


def _pair_list(value) -> list:
    if isinstance(value, (tuple, list)):
        return [int(v) for v in value]
    return [int(value), int(value)]


def _config_linear(mod) -> dict:
    return {"in_features": mod.in_features, "out_features": mod.out_features,
            "bias": mod.bias is not None}


def _build_linear(cfg):
    from repro.nn.modules.linear import Linear
    return Linear(cfg["in_features"], cfg["out_features"],
                  bias=cfg.get("bias", True))


def _config_conv2d(mod) -> dict:
    return {"in_channels": mod.in_channels, "out_channels": mod.out_channels,
            "kernel_size": list(mod.kernel_size), "stride": list(mod.stride),
            "padding": list(mod.padding), "bias": mod.bias is not None}


def _build_conv2d(cfg):
    from repro.nn.modules.conv import Conv2d
    return Conv2d(cfg["in_channels"], cfg["out_channels"],
                  tuple(cfg["kernel_size"]), stride=tuple(cfg["stride"]),
                  padding=tuple(cfg["padding"]), bias=cfg.get("bias", True))


def _config_pool(mod) -> dict:
    cfg = {"kernel_size": _pair_list(mod.kernel_size)}
    if mod.stride is not None:
        cfg["stride"] = _pair_list(mod.stride)
    return cfg


def _build_pool(cls):
    def build(cfg):
        stride = cfg.get("stride")
        return cls(tuple(cfg["kernel_size"]),
                   stride=None if stride is None else tuple(stride))
    return build


def _config_batch_norm(mod) -> dict:
    return {"num_features": mod.num_features, "momentum": mod.momentum,
            "eps": mod.eps, "affine": mod.affine}


def _build_batch_norm(cls):
    def build(cfg):
        return cls(cfg["num_features"], momentum=cfg.get("momentum", 0.1),
                   eps=cfg.get("eps", 1e-5), affine=cfg.get("affine", True))
    return build


def _wire_kinds() -> dict:
    """kind -> (layer class, config extractor, builder).

    Lazily imported so :mod:`repro.nn.serialization` stays importable
    from the modules package without a cycle.
    """
    from repro.nn.modules import (AvgPool2d, BatchNorm1d, BatchNorm2d,
                                  Conv2d, Dropout, Flatten, GlobalAvgPool2d,
                                  Identity, LeakyReLU, Linear, MaxPool2d,
                                  ReLU, Sigmoid, Tanh)
    return {
        "linear": (Linear, _config_linear, _build_linear),
        "conv2d": (Conv2d, _config_conv2d, _build_conv2d),
        "relu": (ReLU, lambda m: {}, lambda cfg: ReLU()),
        "leaky_relu": (LeakyReLU,
                       lambda m: {"negative_slope": m.negative_slope},
                       lambda cfg: LeakyReLU(cfg.get("negative_slope",
                                                     0.01))),
        "sigmoid": (Sigmoid, lambda m: {}, lambda cfg: Sigmoid()),
        "tanh": (Tanh, lambda m: {}, lambda cfg: Tanh()),
        "max_pool2d": (MaxPool2d, _config_pool, _build_pool(MaxPool2d)),
        "avg_pool2d": (AvgPool2d, _config_pool, _build_pool(AvgPool2d)),
        "global_avg_pool2d": (GlobalAvgPool2d, lambda m: {},
                              lambda cfg: GlobalAvgPool2d()),
        "flatten": (Flatten, lambda m: {}, lambda cfg: Flatten()),
        "identity": (Identity, lambda m: {}, lambda cfg: Identity()),
        "dropout": (Dropout, lambda m: {"p": m.p},
                    lambda cfg: Dropout(cfg.get("p", 0.5))),
        "batch_norm1d": (BatchNorm1d, _config_batch_norm,
                         _build_batch_norm(BatchNorm1d)),
        "batch_norm2d": (BatchNorm2d, _config_batch_norm,
                         _build_batch_norm(BatchNorm2d)),
    }


def encode_state_array(arr) -> dict:
    """JSON-safe encoding of one state array (bit-exact round trip)."""
    arr = np.asarray(arr)
    if arr.dtype.hasobject:
        raise SerializationError("object arrays cannot go on the wire")
    return {"dtype": arr.dtype.name, "shape": [int(s) for s in arr.shape],
            "data": [float(v) for v in arr.reshape(-1).astype(np.float64)]}


def decode_state_array(entry) -> np.ndarray:
    """Inverse of :func:`encode_state_array`.

    Accepts a ready ``ndarray`` unchanged, so wires rebuilt from zoo
    artifacts (whose state entries are raw — possibly memory-mapped —
    arrays) flow through the same code paths as JSON wires.
    """
    if isinstance(entry, np.ndarray):
        return entry
    try:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        data = np.asarray(entry["data"], dtype=np.float64)
        arr = data.astype(dtype).reshape(shape)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed state array: {exc}") from exc
    if not np.all(np.isfinite(data)):
        raise SerializationError("state arrays must be finite")
    return arr


def net_to_wire(model, input_shape=None) -> dict:
    """Serialize ``model`` into the ``repro-net/1`` layer-list wire dict.

    Leaf modules are emitted in registration (pre-)order, which matches
    the forward order for ``Sequential``-structured models; containers
    (modules with children) contribute nothing but their children.
    ``input_shape`` optionally records the per-sample shape (e.g.
    ``(1, 8, 8)`` for image models) so servers can fold flat request
    rows back into the model's native input layout.
    """
    kinds = _wire_kinds()
    kind_by_type = {cls: kind for kind, (cls, _cfg, _b) in kinds.items()}
    layers = []
    for mod in model.modules():
        if mod._modules:
            continue    # container: its children are emitted instead
        kind = kind_by_type.get(type(mod))
        if kind is None:
            raise SerializationError(
                f"{type(mod).__name__} has no wire encoding; supported "
                f"kinds: {', '.join(sorted(kinds))}")
        _cls, config_of, _build = kinds[kind]
        entry = {"kind": kind, "config": config_of(mod)}
        state = mod.state_dict()
        if state:
            entry["state"] = {name: encode_state_array(arr)
                              for name, arr in state.items()}
        layers.append(entry)
    if not layers:
        raise SerializationError("model has no layers to serialize")
    wire = {"format": NET_WIRE_FORMAT, "layers": layers}
    if input_shape is not None:
        wire["input_shape"] = [int(s) for s in input_shape]
    return wire


def _check_wire(wire) -> list:
    if not isinstance(wire, dict):
        raise SerializationError("net wire must be a JSON object")
    if wire.get("format") != NET_WIRE_FORMAT:
        raise SerializationError(
            f"unsupported net wire format {wire.get('format')!r} "
            f"(expected {NET_WIRE_FORMAT!r})")
    layers = wire.get("layers")
    if not isinstance(layers, list) or not layers:
        raise SerializationError("net wire needs a non-empty 'layers' list")
    return layers


def net_from_wire(wire: dict):
    """Rebuild a model (as a ``Sequential``) from a wire dict."""
    from repro.nn.modules.container import Sequential
    kinds = _wire_kinds()
    layers = _check_wire(wire)
    built = []
    for k, entry in enumerate(layers):
        if not isinstance(entry, dict) or "kind" not in entry:
            raise SerializationError(f"layer {k}: missing 'kind'")
        kind = entry["kind"]
        if kind not in kinds:
            raise SerializationError(
                f"layer {k}: unknown kind {kind!r}; supported: "
                f"{', '.join(sorted(kinds))}")
        config = entry.get("config", {})
        if not isinstance(config, dict):
            raise SerializationError(f"layer {k}: 'config' must be an object")
        _cls, _cfg, build = kinds[kind]
        try:
            mod = build(config)
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"layer {k} ({kind}): bad config: {exc}") from exc
        state = entry.get("state")
        if state:
            mod.load_state_dict({name: decode_state_array(arr)
                                 for name, arr in state.items()})
        built.append(mod)
    return Sequential(*built)


def net_digest(wire: dict) -> str:
    """Content digest of a wire dict: structure plus every state array.

    Computed from the *decoded* arrays, so the digest is identical
    whether the wire arrived as JSON or was rebuilt from a zoo artifact.
    """
    layers = _check_wire(wire)
    structure = [{"kind": e.get("kind"), "config": e.get("config", {}),
                  "state": sorted(e.get("state", {}))} for e in layers]
    parts = [canonical_json({"format": wire["format"],
                             "layers": structure,
                             "input_shape": wire.get("input_shape")})]
    for entry in layers:
        state = entry.get("state", {})
        for name in sorted(state):
            parts.append(decode_state_array(state[name]))
    return content_key("net", *parts)
