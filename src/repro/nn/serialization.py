"""Saving and loading model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SerializationError


def save_state_dict(state: dict, path: str) -> None:
    """Write a flat name->array state dict to ``path`` (.npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    try:
        np.savez(path, **{k: np.asarray(v) for k, v in state.items()})
    except OSError as exc:
        raise SerializationError(f"could not save state dict to {path}: "
                                 f"{exc}") from exc


def load_state_dict(path: str) -> dict:
    """Read a state dict previously written by :func:`save_state_dict`."""
    if not os.path.exists(path):
        candidate = path + ".npz"
        if os.path.exists(candidate):
            path = candidate
        else:
            raise SerializationError(f"no state dict at {path}")
    try:
        with np.load(path) as archive:
            return {k: archive[k] for k in archive.files}
    except (OSError, ValueError) as exc:
        raise SerializationError(f"could not load state dict from {path}: "
                                 f"{exc}") from exc
