"""Base class for all layers: parameter registration and state dicts.

Mirrors the torch.nn.Module contract at the scale this library needs:
attribute assignment auto-registers parameters, buffers and submodules;
``state_dict``/``load_state_dict`` expose flat name->array mappings;
``train``/``eval`` toggle the behaviour of normalisation and dropout.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import SerializationError, ShapeError
from repro.nn.tensor import Tensor


class Module:
    """Composable network component with named parameters and buffers."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration magic
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array in the state dict (e.g. running mean)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self):
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = ""):
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self):
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load arrays by name; shapes must match exactly."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise SerializationError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name}: expected shape {param.data.shape}, "
                    f"got {value.shape}")
            param.data[...] = value
        for name, buf in own_buffers.items():
            value = np.asarray(state[name], dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ShapeError(
                    f"buffer {name}: expected shape {buf.shape}, "
                    f"got {value.shape}")
            buf[...] = value

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self):
        child_repr = ", ".join(f"{k}={type(v).__name__}"
                               for k, v in self._modules.items())
        return f"{type(self).__name__}({child_repr})"
