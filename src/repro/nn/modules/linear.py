"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn import init
from repro.nn.functional import linear
from repro.nn.modules.module import Module
from repro.nn.tensor import DEFAULT_DTYPE, Tensor
from repro.utils.rng import rng_from_seed


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with weight shape ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, seed=None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigError("in_features and out_features must be >= 1")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = rng_from_seed(seed)
        weight = init.kaiming_uniform((out_features, in_features), rng,
                                      gain=np.sqrt(2.0))
        self.weight = Tensor(weight.astype(DEFAULT_DTYPE), requires_grad=True)
        if bias:
            b = init.uniform_bias(in_features, out_features, rng)
            self.bias = Tensor(b.astype(DEFAULT_DTYPE), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias)

    def __repr__(self):
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None})")
