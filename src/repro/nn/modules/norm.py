"""Batch normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.functional import batch_norm
from repro.nn.modules.module import Module
from repro.nn.tensor import DEFAULT_DTYPE, Tensor


class _BatchNorm(Module):
    """Shared implementation; subclasses fix the expected input rank."""

    _expected_ndim: int = 0

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5, affine: bool = True):
        super().__init__()
        if num_features < 1:
            raise ConfigError("num_features must be >= 1")
        if not 0.0 < momentum <= 1.0:
            raise ConfigError(f"momentum must lie in (0, 1], got {momentum}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.affine = bool(affine)
        self.weight = Tensor(np.ones(num_features, dtype=DEFAULT_DTYPE),
                             requires_grad=affine)
        self.bias = Tensor(np.zeros(num_features, dtype=DEFAULT_DTYPE),
                           requires_grad=affine)
        if not affine:
            # Still exposed for state dicts, but frozen.
            self._parameters.pop("weight", None)
            self._parameters.pop("bias", None)
        self.register_buffer("running_mean",
                             np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_var",
                             np.ones(num_features, dtype=np.float64))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != self._expected_ndim:
            raise ConfigError(
                f"{type(self).__name__} expects {self._expected_ndim}-D "
                f"input, got {x.ndim}-D")
        return batch_norm(x, self.weight, self.bias, self.running_mean,
                          self.running_var, training=self.training,
                          momentum=self.momentum, eps=self.eps)

    def __repr__(self):
        return (f"{type(self).__name__}({self.num_features}, "
                f"momentum={self.momentum}, eps={self.eps})")


class BatchNorm1d(_BatchNorm):
    """Normalises ``(batch, features)`` activations per feature."""

    _expected_ndim = 2


class BatchNorm2d(_BatchNorm):
    """Normalises ``(batch, channels, h, w)`` activations per channel."""

    _expected_ndim = 4
