"""Pooling layers."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.modules.module import Module
from repro.nn.tensor import Tensor


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Mean over spatial dims: ``(B, C, H, W) -> (B, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self):
        return "GlobalAvgPool2d()"
