"""Layer library built on the autograd tensor."""

from repro.nn.modules.module import Module
from repro.nn.modules.linear import Linear
from repro.nn.modules.conv import Conv2d
from repro.nn.modules.norm import BatchNorm1d, BatchNorm2d
from repro.nn.modules.activation import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.modules.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.modules.container import Flatten, Identity, Sequential
from repro.nn.modules.dropout import Dropout

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
    "Dropout",
]
