"""Dropout layer with an owned, seedable RNG."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.modules.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import rng_from_seed


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, seed=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng_from_seed(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self):
        return f"Dropout(p={self.p})"
