"""Activation layers (stateless wrappers over functional ops)."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.modules.module import Module
from repro.nn.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self):
        return "ReLU()"


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self):
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)

    def __repr__(self):
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)

    def __repr__(self):
        return "Tanh()"
