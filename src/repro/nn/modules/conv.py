"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn import init
from repro.nn.functional import _pair, conv2d
from repro.nn.modules.module import Module
from repro.nn.tensor import DEFAULT_DTYPE, Tensor
from repro.utils.rng import rng_from_seed


class Conv2d(Module):
    """Cross-correlation layer with weight shape ``(c_out, c_in, kh, kw)``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True, seed=None):
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ConfigError("channel counts must be >= 1")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        rng = rng_from_seed(seed)
        shape = (out_channels, in_channels, *self.kernel_size)
        weight = init.kaiming_uniform(shape, rng, gain=np.sqrt(2.0))
        self.weight = Tensor(weight.astype(DEFAULT_DTYPE), requires_grad=True)
        if bias:
            fan_in = in_channels * self.kernel_size[0] * self.kernel_size[1]
            b = init.uniform_bias(fan_in, out_channels, rng)
            self.bias = Tensor(b.astype(DEFAULT_DTYPE), requires_grad=True)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding)

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}, bias={self.bias is not None})")
