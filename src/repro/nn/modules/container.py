"""Structural modules: Sequential, Flatten, Identity."""

from __future__ import annotations

from repro.nn.modules.module import Module
from repro.nn.tensor import Tensor


class Sequential(Module):
    """Runs submodules in order; indexable like a list.

    Layers live only in the module registry (``_modules``), so structural
    edits — e.g. the functional simulator swapping ``Conv2d`` for
    ``Conv2dMVM`` — stay consistent with iteration order.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        for k, layer in enumerate(layers):
            setattr(self, f"layer{k}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._modules.values():
            x = layer(x)
        return x

    def __len__(self):
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __iter__(self):
        return iter(self._modules.values())

    def __repr__(self):
        inner = ", ".join(repr(layer) for layer in self._modules.values())
        return f"Sequential({inner})"


class Flatten(Module):
    """Flattens all dims after the batch dim."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self):
        return "Flatten()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self):
        return "Identity()"
