"""Dataset and DataLoader abstractions (seeded, deterministic)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.utils.rng import rng_from_seed


class Dataset:
    """Map-style dataset protocol: ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Zips equal-length arrays into (x, ..., y) samples."""

    def __init__(self, *arrays):
        if not arrays:
            raise ConfigError("TensorDataset needs at least one array")
        self.arrays = [np.asarray(a) for a in arrays]
        length = len(self.arrays[0])
        for a in self.arrays[1:]:
            if len(a) != length:
                raise ShapeError(
                    f"all arrays must share the first dimension; got "
                    f"{[len(x) for x in self.arrays]}")

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index):
        items = tuple(a[index] for a in self.arrays)
        return items if len(items) > 1 else items[0]


class DataLoader:
    """Batching iterator with optional seeded shuffling.

    Batches are stacks of numpy arrays (callers wrap in Tensors as needed).
    Reshuffles every epoch, deterministically derived from the seed.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False, seed=None):
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng_from_seed(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            sample = self.dataset[idx[0]]
            if isinstance(sample, tuple):
                batches = tuple(
                    np.stack([self.dataset[i][k] for i in idx])
                    for k in range(len(sample)))
                yield batches
            else:
                yield np.stack([self.dataset[i] for i in idx])
