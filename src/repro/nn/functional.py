"""Fused neural-network operations with hand-written backward passes.

Simple elementwise math composes fine from :class:`~repro.nn.tensor.Tensor`
primitives, but convolution, pooling, batch normalisation and the softmax
cross-entropy benefit enormously from fused forward/backward kernels — both
for speed and for numerical stability. Every grad here is checked against
central differences in ``tests/nn``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.imops import col2im, conv2d_output_shape, im2col
from repro.nn.tensor import Tensor


def _pair(value) -> tuple:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ShapeError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    slope = float(negative_slope)
    factor = np.where(x.data > 0, 1.0, slope).astype(x.data.dtype)
    return Tensor.from_op((x.data * factor).astype(x.data.dtype),
                          [(x, lambda g: g * factor)], "leaky_relu")


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; weight shape ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2-D convolution (cross-correlation) via im2col.

    Args:
        x: ``(batch, c_in, h, w)`` input.
        weight: ``(c_out, c_in, kh, kw)`` filters.
        bias: optional ``(c_out,)``.
    """
    stride, padding = _pair(stride), _pair(padding)
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError("conv2d expects 4-D input and weight")
    batch, c_in, h, w = x.data.shape
    c_out, c_in_w, kh, kw = weight.data.shape
    if c_in != c_in_w:
        raise ShapeError(
            f"input channels {c_in} != weight channels {c_in_w}")
    out_h, out_w = conv2d_output_shape(h, w, (kh, kw), stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)  # (B*oh*ow, cin*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)            # (cout, cin*kh*kw)
    out = cols @ w_mat.T                              # (B*oh*ow, cout)
    if bias is not None:
        out = out + bias.data
    out = out.reshape(batch, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    x_shape = x.data.shape

    def grad_x(g):
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        return col2im(g_mat @ w_mat, x_shape, (kh, kw), stride, padding)

    def grad_w(g):
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        return (g_mat.T @ cols).reshape(weight.data.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor.from_op(np.ascontiguousarray(out), parents, "conv2d")


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    kernel = _pair(kernel_size)
    stride = kernel if stride is None else _pair(stride)
    batch, channels, h, w = x.data.shape
    out_h, out_w = conv2d_output_shape(h, w, kernel, stride, (0, 0))

    # View as patches via im2col on each channel independently.
    reshaped = x.data.reshape(batch * channels, 1, h, w)
    cols = im2col(reshaped, kernel, stride, (0, 0))  # (B*C*oh*ow, kh*kw)
    arg = cols.argmax(axis=1)
    out = cols[np.arange(cols.shape[0]), arg].reshape(
        batch, channels, out_h, out_w)

    def grad_fn(g):
        g_cols = np.zeros_like(cols)
        g_cols[np.arange(cols.shape[0]), arg] = g.reshape(-1)
        g_img = col2im(g_cols, (batch * channels, 1, h, w), kernel, stride,
                       (0, 0))
        return g_img.reshape(batch, channels, h, w)

    return Tensor.from_op(out, [(x, grad_fn)], "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling."""
    kernel = _pair(kernel_size)
    stride = kernel if stride is None else _pair(stride)
    batch, channels, h, w = x.data.shape
    out_h, out_w = conv2d_output_shape(h, w, kernel, stride, (0, 0))
    reshaped = x.data.reshape(batch * channels, 1, h, w)
    cols = im2col(reshaped, kernel, stride, (0, 0))
    out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
    k_area = kernel[0] * kernel[1]

    def grad_fn(g):
        g_cols = np.repeat(g.reshape(-1, 1), k_area, axis=1) / k_area
        g_img = col2im(g_cols.astype(g.dtype), (batch * channels, 1, h, w),
                       kernel, stride, (0, 0))
        return g_img.reshape(batch, channels, h, w)

    return Tensor.from_op(out, [(x, grad_fn)], "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the two spatial dimensions -> ``(batch, channels)``."""
    return x.mean(axis=(2, 3))


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1,
               eps: float = 1e-5) -> Tensor:
    """Batch normalisation over all axes except the channel axis (axis 1).

    ``running_mean``/``running_var`` are plain arrays updated in place during
    training, exactly like torch's running statistics.
    """
    if x.ndim not in (2, 4):
        raise ShapeError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")
    axes = (0,) if x.ndim == 2 else (0, 2, 3)
    param_shape = (1, -1) if x.ndim == 2 else (1, -1, 1, 1)
    data = x.data

    if training:
        mean = data.mean(axis=axes)
        var = data.var(axis=axes)
        count = data.size // data.shape[1]
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        running_var *= (1.0 - momentum)
        # Unbiased variance for the running estimate, as in torch.
        running_var += momentum * var * (count / max(count - 1, 1))
    else:
        mean, var = running_mean, running_var

    mean_r = mean.reshape(param_shape)
    inv_std = (1.0 / np.sqrt(var + eps)).reshape(param_shape).astype(data.dtype)
    x_hat = (data - mean_r) * inv_std
    out = gamma.data.reshape(param_shape) * x_hat + beta.data.reshape(param_shape)

    gamma_r = gamma.data.reshape(param_shape)

    def grad_x(g):
        if not training:
            return g * gamma_r * inv_std
        g_hat = g * gamma_r
        term_mean = g_hat.mean(axis=axes, keepdims=True)
        term_cov = (g_hat * x_hat).mean(axis=axes, keepdims=True)
        return inv_std * (g_hat - term_mean - x_hat * term_cov)

    def grad_gamma(g):
        return (g * x_hat).sum(axis=axes)

    def grad_beta(g):
        return g.sum(axis=axes)

    return Tensor.from_op(out.astype(data.dtype),
                          [(x, grad_x), (gamma, grad_gamma),
                           (beta, grad_beta)], "batch_norm")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    data = x.data
    shifted = data - data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    softmax = np.exp(out)

    def grad_fn(g):
        return g - softmax * g.sum(axis=axis, keepdims=True)

    return Tensor.from_op(out.astype(data.dtype), [(x, grad_fn)],
                          "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def dropout(x: Tensor, p: float, training: bool, rng=None) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)
    mask = mask.astype(x.data.dtype)
    return Tensor.from_op(x.data * mask, [(x, lambda g: g * mask)], "dropout")


def pad2d(x: Tensor, padding) -> Tensor:
    """Zero-pad the two spatial dims of a ``(B, C, H, W)`` tensor."""
    ph, pw = _pair(padding)
    data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def grad_fn(g):
        return g[:, :, ph:g.shape[2] - ph, pw:g.shape[3] - pw] \
            if (ph or pw) else g

    return Tensor.from_op(data, [(x, grad_fn)], "pad2d")
