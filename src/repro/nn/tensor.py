"""Reverse-mode autograd tensor on top of numpy.

Every operation records, on its output tensor, the list of ``(parent,
grad_fn)`` pairs needed to push an upstream gradient back to its inputs.
``Tensor.backward`` runs a topological sweep over that graph, accumulating
gradients into ``.grad`` of every tensor that ``requires_grad``. Broadcasting
is handled by summing gradients back down to the parent's shape.

Only the primitives the library needs are implemented, but each is complete:
correct under broadcasting, arbitrary batch dimensions and repeated use of
the same tensor in one expression. Fused NN-specific ops (conv2d, batch norm,
softmax cross-entropy, pooling) live in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.errors import ShapeError

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` (result-shaped) back to a parent of shape ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype):
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with an autograd tape.

    Attributes:
        data: The underlying :class:`numpy.ndarray`.
        grad: Accumulated gradient (same shape as ``data``) after
            :meth:`backward`, or ``None``.
        requires_grad: Whether gradients flow to / through this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype or (
            data.dtype if isinstance(data, np.ndarray)
            and np.issubdtype(data.dtype, np.floating) else DEFAULT_DTYPE))
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(data: np.ndarray, parents_fns, op: str = "") -> "Tensor":
        """Create an op output, recording only grad-requiring parents."""
        recorded = tuple((p, fn) for p, fn in parents_fns
                         if _GRAD_ENABLED and p.requires_grad)
        out = Tensor(data, requires_grad=bool(recorded), dtype=data.dtype)
        out._parents = recorded
        out._op = op
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The raw array (shared memory; caller must not mutate)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ShapeError("item() requires a 1-element tensor")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def __len__(self):
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case) and
        must be supplied, with matching shape, for non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        pending: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                node.grad = node_grad if node.grad is None \
                    else node.grad + node_grad
            elif node.requires_grad and node is self:
                # Allow inspecting .grad on the backward root as well.
                node.grad = node_grad if node.grad is None \
                    else node.grad + node_grad
            for parent, grad_fn in node._parents:
                contribution = grad_fn(node_grad)
                if id(parent) in pending:
                    pending[id(parent)] = pending[id(parent)] + contribution
                else:
                    pending[id(parent)] = contribution

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(_as_array(other, self.data.dtype), requires_grad=False)

    def __add__(self, other):
        other = self._coerce(other)
        data = self.data + other.data
        return Tensor.from_op(data, [
            (self, lambda g: unbroadcast(g, self.data.shape)),
            (other, lambda g: unbroadcast(g, other.data.shape)),
        ], "add")

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        data = self.data - other.data
        return Tensor.from_op(data, [
            (self, lambda g: unbroadcast(g, self.data.shape)),
            (other, lambda g: unbroadcast(-g, other.data.shape)),
        ], "sub")

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        data = self.data * other.data
        return Tensor.from_op(data, [
            (self, lambda g: unbroadcast(g * other.data, self.data.shape)),
            (other, lambda g: unbroadcast(g * self.data, other.data.shape)),
        ], "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        data = self.data / other.data
        return Tensor.from_op(data, [
            (self, lambda g: unbroadcast(g / other.data, self.data.shape)),
            (other, lambda g: unbroadcast(
                -g * self.data / (other.data ** 2), other.data.shape)),
        ], "div")

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __neg__(self):
        return Tensor.from_op(-self.data, [(self, lambda g: -g)], "neg")

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        data = self.data ** exponent
        base = self.data

        def grad_fn(g):
            return g * exponent * base ** (exponent - 1.0)

        return Tensor.from_op(data, [(self, grad_fn)], "pow")

    def __matmul__(self, other):
        other = self._coerce(other)
        a, b = self.data, other.data
        if a.ndim < 2 or b.ndim < 2:
            raise ShapeError("matmul requires tensors with ndim >= 2")
        data = a @ b

        def grad_a(g):
            return unbroadcast(g @ b.swapaxes(-1, -2), a.shape)

        def grad_b(g):
            return unbroadcast(a.swapaxes(-1, -2) @ g, b.shape)

        return Tensor.from_op(data, [(self, grad_a), (other, grad_b)],
                              "matmul")

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self):
        data = np.exp(self.data)
        return Tensor.from_op(data, [(self, lambda g: g * data)], "exp")

    def log(self):
        return Tensor.from_op(np.log(self.data),
                              [(self, lambda g: g / self.data)], "log")

    def sqrt(self):
        data = np.sqrt(self.data)
        return Tensor.from_op(data, [(self, lambda g: g * 0.5 / data)],
                              "sqrt")

    def tanh(self):
        data = np.tanh(self.data)
        return Tensor.from_op(data, [(self, lambda g: g * (1.0 - data ** 2))],
                              "tanh")

    def sigmoid(self):
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor.from_op(data,
                              [(self, lambda g: g * data * (1.0 - data))],
                              "sigmoid")

    def relu(self):
        mask = self.data > 0
        return Tensor.from_op(np.where(mask, self.data, 0.0).astype(
            self.data.dtype), [(self, lambda g: g * mask)], "relu")

    def abs(self):
        sign = np.sign(self.data)
        return Tensor.from_op(np.abs(self.data),
                              [(self, lambda g: g * sign)], "abs")

    def clip(self, low, high):
        mask = (self.data >= low) & (self.data <= high)
        return Tensor.from_op(np.clip(self.data, low, high),
                              [(self, lambda g: g * mask)], "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def grad_fn(g):
            if axis is None:
                return np.broadcast_to(g, shape).astype(g.dtype, copy=True)
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_exp, shape).astype(g.dtype, copy=True)

        return Tensor.from_op(np.asarray(data), [(self, grad_fn)], "sum")

    def mean(self, axis=None, keepdims: bool = False):
        count = self.data.size if axis is None else (
            np.prod([self.data.shape[a] for a in np.atleast_1d(axis)]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False):
        data = self.data.max(axis=axis, keepdims=keepdims)
        mask = self.data == self.data.max(axis=axis, keepdims=True)
        counts = mask.sum(axis=axis, keepdims=True)
        shape = self.data.shape

        def grad_fn(g):
            # Gradient splits evenly between tied maxima (subgradient).
            if axis is None or keepdims:
                g_exp = g
            else:
                g_exp = np.expand_dims(g, axis)
            g_full = np.broadcast_to(g_exp, shape)
            return (g_full * mask / counts).astype(g.dtype)

        return Tensor.from_op(np.asarray(data), [(self, grad_fn)], "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return Tensor.from_op(self.data.reshape(shape),
                              [(self, lambda g: g.reshape(original))],
                              "reshape")

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        return Tensor.from_op(self.data.transpose(axes),
                              [(self, lambda g: g.transpose(inverse))],
                              "transpose")

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, index):
        data = self.data[index]
        shape = self.data.shape
        dtype = self.data.dtype

        def grad_fn(g):
            out = np.zeros(shape, dtype=dtype)
            np.add.at(out, index, g)
            return out

        return Tensor.from_op(np.asarray(data), [(self, grad_fn)], "getitem")


def concat(tensors, axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (autograd-aware)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    datas = [t.data for t in tensors]
    data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def make_grad_fn(k):
        slicer = [slice(None)] * data.ndim
        slicer[axis] = slice(int(offsets[k]), int(offsets[k + 1]))
        slicer = tuple(slicer)
        return lambda g: g[slicer]

    return Tensor.from_op(
        data, [(t, make_grad_fn(k)) for k, t in enumerate(tensors)], "concat")


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (autograd-aware)."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def make_grad_fn(k):
        return lambda g: np.take(g, k, axis=axis)

    return Tensor.from_op(
        data, [(t, make_grad_fn(k)) for k, t in enumerate(tensors)], "stack")
