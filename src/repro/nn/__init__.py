"""A from-scratch numpy deep-learning framework (the PyTorch substitute).

The paper's GENIEx model and functional simulator are "PyTorch-based"; since
this reproduction is pure numpy, :mod:`repro.nn` provides the required
facilities with matching semantics: a reverse-mode autograd tensor, module /
parameter management, convolution and normalisation layers, SGD/Adam
optimisers, loss functions, data loading and (de)serialisation. Gradients of
every primitive are validated against central differences in the test suite.
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn import functional
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import cross_entropy, mse_loss
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR
from repro.nn.data import DataLoader, Dataset, TensorDataset
from repro.nn.serialization import load_state_dict, save_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Flatten",
    "Identity",
    "Sequential",
    "cross_entropy",
    "mse_loss",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "Dataset",
    "TensorDataset",
    "DataLoader",
    "save_state_dict",
    "load_state_dict",
]
