"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor


def mse_loss(prediction: Tensor, target, reduction: str = "mean",
             weight=None) -> Tensor:
    """Mean squared error, optionally with per-element weights.

    The GENIEx trainer uses the ``weight`` argument to mask out columns whose
    ideal current is (near) zero, where the ratio label fR is undefined.
    """
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=prediction.data.dtype))
    diff = prediction - target
    sq = diff * diff
    if weight is not None:
        if not isinstance(weight, Tensor):
            weight = Tensor(np.asarray(weight, dtype=prediction.data.dtype))
        sq = sq * weight
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ShapeError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy on integer class labels.

    Args:
        logits: ``(batch, classes)`` raw scores.
        targets: ``(batch,)`` integer labels.
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
    targets = np.asarray(targets)
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets must be shape ({logits.shape[0]},), got {targets.shape}")
    if targets.min() < 0 or targets.max() >= logits.shape[1]:
        raise ShapeError("target labels out of range")
    log_probs = log_softmax(logits, axis=1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    if reduction == "mean":
        return -picked.mean()
    if reduction == "sum":
        return -picked.sum()
    if reduction == "none":
        return -picked
    raise ShapeError(f"unknown reduction {reduction!r}")


def accuracy(logits, targets) -> float:
    """Top-1 accuracy; accepts Tensors or arrays."""
    if isinstance(logits, Tensor):
        logits = logits.data
    targets = np.asarray(targets)
    return float((logits.argmax(axis=1) == targets).mean())
