"""Numerical gradient checking for autograd ops and whole modules."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(fn, inputs: list, index: int,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    ``inputs`` are Tensors; the function is re-evaluated with perturbed
    float64 copies, so op implementations must accept float64 data.
    """
    base = [Tensor(np.array(t.data, dtype=np.float64)) for t in inputs]
    target = base[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for k in range(flat.size):
        original = flat[k]
        flat[k] = original + eps
        plus = float(fn(*base).data.sum())
        flat[k] = original - eps
        minus = float(fn(*base).data.sum())
        flat[k] = original
        grad_flat[k] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn, inputs: list, atol: float = 1e-4,
                    rtol: float = 1e-3, eps: float = 1e-5) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match numeric ones.

    Raises ``AssertionError`` with the worst deviation when they disagree.
    Inputs are promoted to float64 before checking.
    """
    inputs64 = [Tensor(np.array(t.data, dtype=np.float64),
                       requires_grad=True) for t in inputs]
    out = fn(*inputs64)
    out.sum().backward()
    for k, tensor in enumerate(inputs64):
        numeric = numerical_gradient(fn, inputs64, k, eps=eps)
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(tensor.data)
        deviation = np.abs(analytic - numeric)
        bound = atol + rtol * np.abs(numeric)
        if not np.all(deviation <= bound):
            worst = float((deviation - bound).max())
            raise AssertionError(
                f"gradient mismatch on input {k}: worst excess {worst:.3e} "
                f"(atol={atol}, rtol={rtol})")
