"""im2col / col2im — the raw array transforms behind convolution.

These operate on plain numpy arrays (no autograd); they are shared between
the autograd conv2d in :mod:`repro.nn.functional` and the functional
simulator's *iterative MVM* phase, which expresses a convolution as repeated
matrix-vector products over exactly these patch matrices (paper Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def conv2d_output_shape(h: int, w: int, kernel: tuple, stride: tuple,
                        padding: tuple) -> tuple:
    """Spatial output size of a 2-D convolution."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h < 1 or out_w < 1:
        raise ShapeError(
            f"kernel {kernel} with stride {stride}, padding {padding} does "
            f"not fit input {h}x{w}")
    return out_h, out_w


def im2col(x: np.ndarray, kernel: tuple, stride: tuple,
           padding: tuple) -> np.ndarray:
    """Extract convolution patches.

    Args:
        x: Input of shape ``(batch, channels, h, w)``.
        kernel / stride / padding: ``(kh, kw)`` / ``(sh, sw)`` / ``(ph, pw)``.

    Returns:
        Array of shape ``(batch * out_h * out_w, channels * kh * kw)`` whose
        rows are the flattened receptive fields, ordered batch-major then
        row-major over output positions. Column ordering is channel-major
        then kernel-row then kernel-col, matching a weight tensor reshaped
        from ``(c_out, c_in, kh, kw)`` to ``(c_out, c_in*kh*kw)``.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects a 4-D input, got shape {x.shape}")
    batch, channels, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv2d_output_shape(h, w, kernel, stride, padding)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((batch, channels, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = x[:, :, i:i + sh * out_h:sh,
                                 j:j + sw * out_w:sw]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kh * kw)


def col2im(cols: np.ndarray, x_shape: tuple, kernel: tuple, stride: tuple,
           padding: tuple) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to image layout."""
    batch, channels, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv2d_output_shape(h, w, kernel, stride, padding)
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw).transpose(
        0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((batch, channels, h + 2 * ph, w + 2 * pw),
                        dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i:i + sh * out_h:sh, j:j + sw * out_w:sw] += \
                cols[:, :, i, j]
    if ph or pw:
        return x_padded[:, :, ph:ph + h, pw:pw + w]
    return x_padded
