"""Weight initialisers (Kaiming / Xavier families).

All initialisers take an explicit ``rng`` so model construction is
reproducible; modules derive theirs from the seed passed at construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed


def _fan_in_out(shape: tuple) -> tuple:
    if len(shape) < 2:
        raise ConfigError(f"fan computation needs >= 2 dims, got {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(shape, rng=None, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform init, the default for ReLU networks."""
    rng = rng_from_seed(rng)
    fan_in, _ = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng=None, gain: float = np.sqrt(2.0)) -> np.ndarray:
    rng = rng_from_seed(rng)
    fan_in, _ = _fan_in_out(tuple(shape))
    return rng.normal(0.0, gain / np.sqrt(fan_in), size=shape)


def xavier_uniform(shape, rng=None, gain: float = 1.0) -> np.ndarray:
    rng = rng_from_seed(rng)
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng=None, gain: float = 1.0) -> np.ndarray:
    rng = rng_from_seed(rng)
    fan_in, fan_out = _fan_in_out(tuple(shape))
    return rng.normal(0.0, gain * np.sqrt(2.0 / (fan_in + fan_out)),
                      size=shape)


def uniform_bias(fan_in: int, size: int, rng=None) -> np.ndarray:
    """Torch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    rng = rng_from_seed(rng)
    bound = 1.0 / np.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=size)
