"""GENIEx inference: predict non-ideal currents for arbitrary (V, G).

Two paths are provided:

* :meth:`GeniexEmulator.predict_currents` — general batched inference.
* :meth:`GeniexEmulator.for_matrix` — returns a :class:`MatrixEmulator`
  with the conductance contribution to the hidden layer *precomputed*.
  Because the first layer is affine, ``h = relu(W1v @ v + W1g @ g + b1)``
  and ``W1g @ g`` is constant for a programmed crossbar; hoisting it makes
  per-tile inference in the functional simulator ~(1 + cols) times cheaper.
  Both paths agree to float32 rounding (tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import GeniexNet
from repro.errors import NotFittedError, ShapeError
from repro.utils.numerics import batch_invariant_matmul
from repro.xbar.ideal import ideal_mvm


class MatrixEmulator:
    """Fast per-crossbar emulator with the G-term folded into the bias.

    ``batch_invariant=True`` routes every matmul through
    :func:`repro.utils.numerics.batch_invariant_matmul`, so the prediction
    for a voltage vector is bitwise independent of whatever else shares its
    batch. The serving layer relies on this: dynamically coalesced requests
    must return byte-identical results to a direct per-request call. The
    default BLAS path is faster and agrees to float rounding (tested).
    """

    def __init__(self, emulator: "GeniexEmulator", conductance_s: np.ndarray,
                 batch_invariant: bool = False):
        self._norm = emulator.normalizer
        self._model = emulator.model
        self.batch_invariant = bool(batch_invariant)
        self.conductance_s = np.asarray(conductance_s, dtype=float)
        w1v, w1g, b1 = self._model.first_layer_views()
        g_norm = self._norm.normalize_g(self.conductance_s).reshape(-1)
        self._w1v_t = np.ascontiguousarray(w1v.T)
        self._hidden_bias = (g_norm @ w1g.T + b1).astype(np.float32)

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.batch_invariant:
            return batch_invariant_matmul(a, b)
        return a @ b

    def predict_fr(self, voltages_v: np.ndarray) -> np.ndarray:
        """Distortion ratio fR for a batch of voltage vectors ``(B, rows)``."""
        v_norm = self._norm.normalize_v(np.atleast_2d(voltages_v))
        hidden = self._matmul(v_norm, self._w1v_t) + self._hidden_bias
        fr_norm = self._model.forward_hidden(
            hidden, matmul=self._matmul if self.batch_invariant else None)
        return self._norm.denormalize_fr(fr_norm)

    def predict_currents(self, voltages_v: np.ndarray) -> np.ndarray:
        """Non-ideal currents ``I_ideal / fR`` for a voltage batch."""
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        fr = self.predict_fr(voltages_v)
        if self.batch_invariant:
            i_ideal = batch_invariant_matmul(voltages_v, self.conductance_s)
        else:
            i_ideal = ideal_mvm(voltages_v, self.conductance_s)
        return i_ideal / fr


class GeniexEmulator:
    """User-facing wrapper around a trained :class:`GeniexNet`."""

    def __init__(self, model: GeniexNet):
        if model.normalizer is None:
            raise NotFittedError(
                "GeniexNet has no normalizer; train it (or attach one) "
                "before emulation")
        self.model = model
        self.normalizer = model.normalizer

    @property
    def rows(self) -> int:
        return self.model.rows

    @property
    def cols(self) -> int:
        return self.model.cols

    def _features(self, voltages_v, conductance_s) -> np.ndarray:
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        conductance_s = np.asarray(conductance_s, dtype=float)
        if conductance_s.ndim == 2:
            conductance_s = np.broadcast_to(
                conductance_s,
                (voltages_v.shape[0],) + conductance_s.shape)
        if voltages_v.shape[1] != self.rows or \
                conductance_s.shape[1:] != (self.rows, self.cols):
            raise ShapeError(
                f"expected V (B, {self.rows}) and G (B, {self.rows}, "
                f"{self.cols}); got {voltages_v.shape}, {conductance_s.shape}")
        v_norm = self.normalizer.normalize_v(voltages_v)
        g_norm = self.normalizer.normalize_g(conductance_s)
        return np.concatenate(
            [v_norm, g_norm.reshape(v_norm.shape[0], -1)],
            axis=1).astype(np.float32)

    def predict_fr(self, voltages_v, conductance_s) -> np.ndarray:
        """fR predictions for (batched) voltage vectors and G matrices."""
        features = self._features(voltages_v, conductance_s)
        fr_norm = self.model.predict_fr_norm(features)
        return self.normalizer.denormalize_fr(fr_norm)

    def predict_currents(self, voltages_v, conductance_s) -> np.ndarray:
        """Non-ideal output currents ``I_ideal / fR``."""
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        conductance_s = np.asarray(conductance_s, dtype=float)
        fr = self.predict_fr(voltages_v, conductance_s)
        if conductance_s.ndim == 2:
            i_ideal = ideal_mvm(voltages_v, conductance_s)
        else:
            i_ideal = np.einsum("ni,nij->nj", voltages_v, conductance_s)
        return i_ideal / fr

    def for_matrix(self, conductance_s,
                   batch_invariant: bool = False) -> MatrixEmulator:
        """Specialise to one programmed crossbar (precomputes the G term)."""
        conductance_s = np.asarray(conductance_s, dtype=float)
        if conductance_s.shape != (self.rows, self.cols):
            raise ShapeError(
                f"expected G of shape ({self.rows}, {self.cols}), "
                f"got {conductance_s.shape}")
        return MatrixEmulator(self, conductance_s,
                              batch_invariant=batch_invariant)
