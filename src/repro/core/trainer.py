"""Training loop for GENIEx models.

Masked-MSE regression with Adam, a held-out validation split, and
early stopping on validation RMSE (of the normalised fR). Deterministic for
a given :class:`TrainSpec` seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeniexDataset
from repro.core.model import GeniexNet, Normalizer
from repro.errors import ConfigError
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.rng import rng_from_seed


@dataclass(frozen=True)
class TrainSpec:
    """Hyper-parameters of a GENIEx fit.

    Defaults follow the paper where stated (hidden = 500, ReLU); the rest
    are sensible regression defaults validated by the Fig. 5 benchmark.
    """

    hidden: int = 500
    hidden_layers: int = 1
    epochs: int = 300
    batch_size: int = 64
    lr: float = 1e-3
    lr_decay: float = 0.3
    lr_milestones: tuple = (0.5, 0.8)
    weight_decay: float = 0.0
    val_fraction: float = 0.15
    patience: int = 30
    current_weighting: bool = True
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.val_fraction < 1.0:
            raise ConfigError("val_fraction must lie in (0, 1)")
        if self.epochs < 1 or self.batch_size < 1 or self.patience < 1:
            raise ConfigError("epochs, batch_size and patience must be >= 1")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ConfigError("lr_decay must lie in (0, 1]")
        if any(not 0.0 < m < 1.0 for m in self.lr_milestones):
            raise ConfigError("lr_milestones must lie in (0, 1)")

    def lr_at(self, epoch: int) -> float:
        """Step-decayed learning rate for a given epoch."""
        passed = sum(1 for m in self.lr_milestones
                     if epoch >= int(m * self.epochs))
        return self.lr * self.lr_decay ** passed


@dataclass
class TrainingHistory:
    """Per-epoch record of a fit."""

    train_loss: list = field(default_factory=list)
    val_rmse: list = field(default_factory=list)
    best_epoch: int = -1
    best_val_rmse: float = np.inf


def train_geniex(dataset: GeniexDataset,
                 spec: TrainSpec | None = None,
                 verbose: bool = False) -> tuple:
    """Fit a :class:`GeniexNet` to a dataset.

    Returns:
        ``(model, history)`` — the model with the best-validation weights
        restored and its training history.
    """
    spec = spec or TrainSpec()
    config = dataset.config
    rng = rng_from_seed(spec.seed)

    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(round(spec.val_fraction * n)))
    val_idx, train_idx = order[:n_val], order[n_val:]
    if train_idx.size == 0:
        raise ConfigError("dataset too small for the requested split")

    x_train = dataset.features(train_idx)
    y_train = dataset.labels(train_idx)
    w_train = dataset.weights(train_idx,
                              current_weighting=spec.current_weighting)
    x_val = dataset.features(val_idx)
    y_val = dataset.labels(val_idx)
    w_val = dataset.weights(val_idx,
                            current_weighting=spec.current_weighting)

    normalizer = Normalizer.from_config(config, dataset.fr_min,
                                        dataset.fr_max)
    model = GeniexNet(config.rows, config.cols, hidden=spec.hidden,
                      hidden_layers=spec.hidden_layers,
                      normalizer=normalizer, seed=spec.seed)
    optimizer = Adam(model.parameters(), lr=spec.lr,
                     weight_decay=spec.weight_decay)
    history = TrainingHistory()
    best_state = model.state_dict()
    since_best = 0

    n_train = x_train.shape[0]
    for epoch in range(spec.epochs):
        model.train()
        optimizer.lr = spec.lr_at(epoch)
        perm = rng.permutation(n_train)
        epoch_loss = 0.0
        for start in range(0, n_train, spec.batch_size):
            idx = perm[start:start + spec.batch_size]
            pred = model(Tensor(x_train[idx]))
            loss = mse_loss(pred, y_train[idx], weight=w_train[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item() * len(idx)
        history.train_loss.append(epoch_loss / n_train)

        model.eval()
        with no_grad():
            val_pred = model.predict_fr_norm(x_val)
        diff = (val_pred - y_val) * w_val
        denom = max(float(w_val.sum()), 1.0)
        val_rmse = float(np.sqrt((diff ** 2).sum() / denom))
        history.val_rmse.append(val_rmse)
        if val_rmse < history.best_val_rmse - 1e-7:
            history.best_val_rmse = val_rmse
            history.best_epoch = epoch
            best_state = model.state_dict()
            since_best = 0
        else:
            since_best += 1
        if verbose and (epoch % 10 == 0 or epoch == spec.epochs - 1):
            print(f"  [geniex-train] epoch {epoch:4d} "
                  f"loss {history.train_loss[-1]:.5f} "
                  f"val_rmse {val_rmse:.5f}", flush=True)
        if since_best >= spec.patience:
            break

    model.load_state_dict(best_state)
    model.eval()
    return model, history
