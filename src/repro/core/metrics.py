"""Non-ideality metrics: fR ratio, NF factor, and RMSE comparisons.

Definitions from the paper:

* ``NF = (I_ideal - I_nonideal) / I_ideal`` — the non-ideality factor used
  throughout Section 3 and Figure 5 (0 = ideal, larger = worse; can be
  negative when device non-linearity pushes currents above ideal).
* ``fR = I_ideal / I_nonideal`` — the distortion ratio GENIEx learns; chosen
  over raw currents so the network does not have to model the multiplicative
  V x G interaction (Section 4, "NN Formulation").

Columns whose ideal current is (numerically) zero carry no information about
distortion; both metrics treat them via an explicit validity mask.
"""

from __future__ import annotations

import numpy as np

# An ideal current below this fraction of 1 LSB-ish scale is "zero" for the
# purpose of ratio labels. Absolute threshold in Amperes: with g_off >= 1 uS /
# 10 and V >= mV-scale steps, genuine signals sit many orders above 1e-15.
DEFAULT_EPS_CURRENT_A = 1e-15


def valid_mask(i_ideal_a, eps_a: float = DEFAULT_EPS_CURRENT_A) -> np.ndarray:
    """Boolean mask of columns where ratio metrics are well defined."""
    return np.abs(np.asarray(i_ideal_a, dtype=float)) > eps_a


def ratio_fr(i_ideal_a, i_nonideal_a,
             eps_a: float = DEFAULT_EPS_CURRENT_A) -> np.ndarray:
    """Distortion ratio ``fR = I_ideal / I_nonideal``; 1.0 where undefined."""
    i_ideal_a = np.asarray(i_ideal_a, dtype=float)
    i_nonideal_a = np.asarray(i_nonideal_a, dtype=float)
    mask = valid_mask(i_ideal_a, eps_a) & (np.abs(i_nonideal_a) > eps_a)
    out = np.ones_like(i_ideal_a)
    np.divide(i_ideal_a, i_nonideal_a, out=out, where=mask)
    return out


def nonideality_factor(i_ideal_a, i_nonideal_a,
                       eps_a: float = DEFAULT_EPS_CURRENT_A) -> np.ndarray:
    """``NF = (I_ideal - I_nonideal) / I_ideal``; 0.0 where undefined."""
    i_ideal_a = np.asarray(i_ideal_a, dtype=float)
    i_nonideal_a = np.asarray(i_nonideal_a, dtype=float)
    mask = valid_mask(i_ideal_a, eps_a)
    out = np.zeros_like(i_ideal_a)
    np.divide(i_ideal_a - i_nonideal_a, i_ideal_a, out=out, where=mask)
    return out


def rmse(reference, value, mask=None) -> float:
    """Root-mean-square error, optionally restricted to ``mask``."""
    reference = np.asarray(reference, dtype=float)
    value = np.asarray(value, dtype=float)
    diff = reference - value
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            return 0.0
        diff = diff[mask]
    return float(np.sqrt(np.mean(diff ** 2)))


def rmse_of_nf(i_ideal_a, i_reference_a, i_model_a,
               eps_a: float = DEFAULT_EPS_CURRENT_A) -> float:
    """RMSE between reference and model *NF* values (Figure 5's metric).

    ``i_reference_a`` plays the role of HSPICE; ``i_model_a`` is the model
    under test (analytical or GENIEx). Only columns with meaningful ideal
    current contribute.
    """
    mask = valid_mask(i_ideal_a, eps_a)
    nf_ref = nonideality_factor(i_ideal_a, i_reference_a, eps_a)
    nf_model = nonideality_factor(i_ideal_a, i_model_a, eps_a)
    return rmse(nf_ref, nf_model, mask)
