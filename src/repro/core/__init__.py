"""GENIEx: the neural-network crossbar non-ideality model.

Workflow (paper Section 4): sample (V, G) operating points covering the
sparse distributions produced by bit-sliced DNN workloads, run the circuit
simulator (the HSPICE stand-in) to obtain non-ideal currents, form the
distortion-ratio labels ``fR = I_ideal / I_nonideal``, train the
``(N^2+N) x P x N`` MLP on normalised (V, G) -> fR pairs, then emulate any
crossbar by ``I_nonideal = I_ideal / fR_predicted``.
"""

from repro.core.metrics import (
    nonideality_factor,
    ratio_fr,
    rmse,
    rmse_of_nf,
)
from repro.core.sampling import SamplingSpec, VgSampler
from repro.core.dataset import GeniexDataset, build_geniex_dataset
from repro.core.model import GeniexNet, Normalizer
from repro.core.trainer import TrainSpec, TrainingHistory, train_geniex
from repro.core.emulator import GeniexEmulator
from repro.core.zoo import GeniexZoo

__all__ = [
    "nonideality_factor",
    "ratio_fr",
    "rmse",
    "rmse_of_nf",
    "SamplingSpec",
    "VgSampler",
    "GeniexDataset",
    "build_geniex_dataset",
    "GeniexNet",
    "Normalizer",
    "TrainSpec",
    "TrainingHistory",
    "train_geniex",
    "GeniexEmulator",
    "GeniexZoo",
]
