"""The GENIEx network: a two-layer MLP over concatenated (V, G).

Topology per the paper: for an ``rows x cols`` crossbar the network is
``(rows + rows*cols) -> hidden -> cols`` with ReLU in the hidden layer
(paper: 500 hidden neurons). Inputs are normalised to [0, 1]; the output is
the normalised distortion ratio fR.

The class also carries the :class:`Normalizer` mapping between physical
units and network space, so a saved model is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.modules import Linear, Module, ReLU, Sequential
from repro.xbar.config import CrossbarConfig


@dataclass(frozen=True)
class Normalizer:
    """Unit <-> network-space scaling for one trained GENIEx model.

    Attributes:
        v_supply_v: Voltage full scale (inputs divide by this).
        g_off_s / g_on_s: Conductance window (inputs map to [0, 1]).
        fr_min / fr_max: Label range seen in training; predictions are
            clipped back into it (the network should not extrapolate the
            distortion ratio beyond observed physics).
    """

    v_supply_v: float
    g_off_s: float
    g_on_s: float
    fr_min: float
    fr_max: float

    def normalize_v(self, voltages_v) -> np.ndarray:
        return np.asarray(voltages_v, dtype=np.float32) / np.float32(
            self.v_supply_v)

    def normalize_g(self, conductance_s) -> np.ndarray:
        g = np.asarray(conductance_s, dtype=np.float32)
        return (g - np.float32(self.g_off_s)) / np.float32(
            self.g_on_s - self.g_off_s)

    def denormalize_fr(self, fr_norm) -> np.ndarray:
        fr_norm = np.clip(np.asarray(fr_norm, dtype=np.float64), 0.0, 1.0)
        return self.fr_min + fr_norm * (self.fr_max - self.fr_min)

    def to_dict(self) -> dict:
        return {
            "v_supply_v": self.v_supply_v,
            "g_off_s": self.g_off_s,
            "g_on_s": self.g_on_s,
            "fr_min": self.fr_min,
            "fr_max": self.fr_max,
        }

    @classmethod
    def from_config(cls, config: CrossbarConfig, fr_min: float,
                    fr_max: float) -> "Normalizer":
        return cls(config.v_supply_v, config.g_off_s, config.g_on_s,
                   fr_min, fr_max)


class GeniexNet(Module):
    """Fully connected network ``(N*M + N) x P x ... x M``.

    ``hidden_layers=1`` is the paper's exact topology (one hidden ReLU
    layer). ``hidden_layers=2`` adds a second hidden layer, which captures
    the residual multiplicative V x G structure noticeably better; the
    ablation bench quantifies the difference.
    """

    def __init__(self, rows: int, cols: int, hidden: int = 500,
                 hidden_layers: int = 1,
                 normalizer: Normalizer | None = None, seed=0):
        super().__init__()
        if hidden < 1:
            raise ConfigError(f"hidden width must be >= 1, got {hidden}")
        if hidden_layers < 1:
            raise ConfigError(
                f"hidden_layers must be >= 1, got {hidden_layers}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.hidden = int(hidden)
        self.hidden_layers = int(hidden_layers)
        self.normalizer = normalizer
        in_features = rows + rows * cols
        layers = [Linear(in_features, hidden, seed=seed), ReLU()]
        for k in range(1, hidden_layers):
            layers += [Linear(hidden, hidden,
                              seed=None if seed is None else seed + k),
                       ReLU()]
        layers.append(Linear(hidden, cols,
                             seed=None if seed is None else seed + 100))
        self.body = Sequential(*layers)

    @property
    def in_features(self) -> int:
        return self.rows + self.rows * self.cols

    def forward(self, x):
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"GeniexNet expects {self.in_features} input features "
                f"(rows + rows*cols), got {x.shape[-1]}")
        return self.body(x)

    # ------------------------------------------------------------------
    # Fast inference paths (raw numpy, no autograd) used by the emulator
    # ------------------------------------------------------------------
    def first_layer_views(self):
        """Return ``(w1_v, w1_g, b1)`` with the first layer split into its
        voltage columns (``rows``) and conductance columns (``rows*cols``).

        The split makes the conductance contribution precomputable per
        programmed crossbar (see :mod:`repro.core.emulator`)."""
        first: Linear = self.body[0]
        w1 = first.weight.data
        return w1[:, :self.rows], w1[:, self.rows:], first.bias.data

    def forward_hidden(self, hidden: np.ndarray, matmul=None) -> np.ndarray:
        """Run the layers after the first ReLU on a raw hidden batch.

        ``matmul`` overrides the matrix product (default BLAS ``@``); the
        serving layer passes a batch-invariant kernel here so predictions
        do not depend on how requests were coalesced into the batch.
        """
        np.maximum(hidden, 0.0, out=hidden)
        layers = list(self.body)[2:]
        for layer in layers:
            if isinstance(layer, Linear):
                if matmul is None:
                    hidden = hidden @ layer.weight.data.T
                else:
                    hidden = matmul(hidden, layer.weight.data.T)
                hidden = hidden + layer.bias.data
            else:
                np.maximum(hidden, 0.0, out=hidden)
        return hidden

    def predict_fr_norm(self, features: np.ndarray) -> np.ndarray:
        """Normalised fR for a feature batch, without building a graph."""
        w1v, w1g, b1 = self.first_layer_views()
        v_part = features[:, :self.rows]
        g_part = features[:, self.rows:]
        hidden = v_part @ w1v.T + g_part @ w1g.T + b1
        return self.forward_hidden(hidden)
