"""Sparsity-stratified sampling of crossbar operating points.

Bit-slicing makes the voltage and conductance vectors seen by a physical
crossbar highly sparse and discrete (paper Section 4, "Dataset"): a t-bit
input stream takes one of 2^t levels, a s-bit weight slice one of 2^s levels,
and high-order slices of trained DNNs are mostly zero. The sampler therefore
draws each training example from a grid of sparsity degrees and quantised
levels, so the GENIEx training set covers exactly the distributions the
functional simulator will query at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed
from repro.xbar.config import CrossbarConfig
from repro.xbar.mapping import conductances_from_levels, voltages_from_levels

DEFAULT_SPARSITY_GRID = (0.0, 0.25, 0.5, 0.75, 0.9)
# Weight slices of trained fixed-point networks are often *entirely* zero
# (high-order slices of small weights), so the conductance grid must include
# fully-sparse matrices — every cell at g_off — or the emulator would
# extrapolate on exactly the tiles the functional simulator queries most.
DEFAULT_G_SPARSITY_GRID = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class SamplingSpec:
    """How to draw (V, G) pairs for dataset generation.

    Attributes:
        n_g_matrices: Number of distinct conductance matrices.
        n_v_per_g: Voltage vectors solved against each matrix (device
            programming cost is amortised within a group).
        v_levels: DAC resolution of sampled inputs (2^stream_bits); ``None``
            draws continuous uniform voltages instead.
        g_levels: Number of weight-slice levels (2^slice_bits); ``None``
            draws continuous uniform conductances.
        v_sparsity / g_sparsity: Grids of zero-fractions to stratify over.
        seed: RNG seed.
    """

    n_g_matrices: int = 40
    n_v_per_g: int = 25
    v_levels: int | None = 16
    g_levels: int | None = 16
    v_sparsity: tuple = DEFAULT_SPARSITY_GRID
    g_sparsity: tuple = DEFAULT_G_SPARSITY_GRID
    seed: int = 0

    def __post_init__(self):
        if self.n_g_matrices < 1 or self.n_v_per_g < 1:
            raise ConfigError("sample counts must be >= 1")
        for name, levels in (("v_levels", self.v_levels),
                             ("g_levels", self.g_levels)):
            if levels is not None and levels < 2:
                raise ConfigError(f"{name} must be >= 2 or None")
        if not self.v_sparsity or any(
                not 0.0 <= s < 1.0 for s in self.v_sparsity):
            raise ConfigError(
                f"v_sparsity entries must lie in [0, 1), got "
                f"{self.v_sparsity}")
        if not self.g_sparsity or any(
                not 0.0 <= s <= 1.0 for s in self.g_sparsity):
            raise ConfigError(
                f"g_sparsity entries must lie in [0, 1], got "
                f"{self.g_sparsity}")

    @property
    def n_samples(self) -> int:
        return self.n_g_matrices * self.n_v_per_g


class VgSampler:
    """Draws stratified voltage vectors and conductance matrices."""

    def __init__(self, config: CrossbarConfig, spec: SamplingSpec):
        self.config = config
        self.spec = spec

    def _sparse_levels(self, rng, shape, sparsity: float,
                       n_levels: int | None) -> np.ndarray:
        """Quantised (or continuous) non-negative values with given sparsity.

        Non-zero entries are drawn uniformly over the *non-zero* levels, so
        the sparsity knob is independent of the level distribution.
        """
        active = rng.random(shape) >= sparsity
        if n_levels is None:
            values = rng.uniform(0.0, 1.0, size=shape)
        else:
            values = rng.integers(1, n_levels, size=shape) / (n_levels - 1)
        return np.where(active, values, 0.0)

    def sample_voltages(self, rng, n: int) -> np.ndarray:
        """``(n, rows)`` input voltage vectors in Volts."""
        spec, cfg = self.spec, self.config
        out = np.empty((n, cfg.rows))
        sparsities = rng.choice(spec.v_sparsity, size=n)
        for k in range(n):
            frac = self._sparse_levels(rng, cfg.rows, sparsities[k],
                                       spec.v_levels)
            out[k] = frac * cfg.v_supply_v
        return out

    def sample_conductances(self, rng, n: int) -> np.ndarray:
        """``(n, rows, cols)`` conductance matrices in Siemens.

        A "zero" weight-slice cell still has conductance ``g_off`` — that is
        the physical floor of the device, exactly as the mapping in
        :mod:`repro.xbar.mapping` defines it.
        """
        spec, cfg = self.spec, self.config
        out = np.empty((n, cfg.rows, cfg.cols))
        sparsities = rng.choice(spec.g_sparsity, size=n)
        for k in range(n):
            frac = self._sparse_levels(rng, (cfg.rows, cfg.cols),
                                       sparsities[k], spec.g_levels)
            if spec.g_levels is None:
                out[k] = conductances_from_weights_frac(frac, cfg)
            else:
                levels = np.rint(frac * (spec.g_levels - 1)).astype(int)
                out[k] = conductances_from_levels(levels, spec.g_levels, cfg)
        return out

    def sample(self):
        """Full stratified draw.

        Returns:
            ``(voltages, conductances, group_index)`` where ``voltages`` has
            shape ``(n_samples, rows)``, ``conductances`` has shape
            ``(n_g_matrices, rows, cols)`` and ``group_index[k]`` maps sample
            ``k`` to its conductance matrix.
        """
        rng = rng_from_seed(self.spec.seed)
        n_total = self.spec.n_samples
        voltages = self.sample_voltages(rng, n_total)
        conductances = self.sample_conductances(rng, self.spec.n_g_matrices)
        group_index = np.repeat(np.arange(self.spec.n_g_matrices),
                                self.spec.n_v_per_g)
        return voltages, conductances, group_index


def conductances_from_weights_frac(frac: np.ndarray,
                                   config: CrossbarConfig) -> np.ndarray:
    """Continuous fraction [0, 1] -> conductance window (helper)."""
    return config.g_off_s + frac * (config.g_on_s - config.g_off_s)
