"""Disk-backed registry of trained GENIEx models.

Characterising a crossbar (circuit sweeps + MLP training) costs minutes;
every experiment that touches the same configuration should pay it once.
The zoo keys artifacts by a hash of (crossbar config, sampling spec, train
spec, label mode) and stores the model state dict plus the normaliser in a
single ``.npz``, so cached models reload in milliseconds and are fully
self-contained.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.core.dataset import build_geniex_dataset
from repro.core.emulator import GeniexEmulator
from repro.core.model import GeniexNet, Normalizer
from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec, train_geniex
from repro.errors import SerializationError
from repro.xbar.config import CrossbarConfig


def default_cache_dir() -> str:
    """Honour ``REPRO_CACHE_DIR``; fall back to ``~/.cache/repro/geniex``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "geniex")


class GeniexZoo:
    """Train-once cache of :class:`GeniexEmulator` instances."""

    def __init__(self, cache_dir: str | None = None, verbose: bool = False):
        self.cache_dir = cache_dir or default_cache_dir()
        self.verbose = verbose
        self._memory: dict[str, GeniexEmulator] = {}

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def artifact_key(config: CrossbarConfig, sampling: SamplingSpec,
                     training: TrainSpec, mode: str) -> str:
        payload = json.dumps({
            "config": config.cache_key(),
            "sampling": repr(sampling),
            "training": repr(training),
            "mode": mode,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:20]

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"geniex-{key}.npz")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def save_model(model: GeniexNet, path: str) -> None:
        if model.normalizer is None:
            raise SerializationError("cannot save a model without normalizer")
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        meta = {
            "rows": model.rows,
            "cols": model.cols,
            "hidden": model.hidden,
            "hidden_layers": model.hidden_layers,
            "normalizer": model.normalizer.to_dict(),
        }
        arrays = {f"param::{k}": v for k, v in model.state_dict().items()}
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **arrays)

    @staticmethod
    def load_model(path: str) -> GeniexNet:
        if not os.path.exists(path):
            raise SerializationError(f"no GENIEx artifact at {path}")
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta_json"]).decode())
            state = {k[len("param::"):]: archive[k]
                     for k in archive.files if k.startswith("param::")}
        model = GeniexNet(meta["rows"], meta["cols"], hidden=meta["hidden"],
                          hidden_layers=meta.get("hidden_layers", 1),
                          normalizer=Normalizer(**meta["normalizer"]))
        model.load_state_dict(state)
        model.eval()
        return model

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def get_or_train(self, config: CrossbarConfig,
                     sampling: SamplingSpec | None = None,
                     training: TrainSpec | None = None,
                     mode: str = "full",
                     progress: bool = False) -> GeniexEmulator:
        """Return a (possibly cached) emulator for a crossbar configuration."""
        sampling = sampling or SamplingSpec()
        training = training or TrainSpec()
        key = self.artifact_key(config, sampling, training, mode)
        if key in self._memory:
            return self._memory[key]
        path = self._path(key)
        if os.path.exists(path):
            emulator = GeniexEmulator(self.load_model(path))
            self._memory[key] = emulator
            return emulator
        if self.verbose or progress:
            print(f"[geniex-zoo] training model for "
                  f"{config.rows}x{config.cols} r_on={config.r_on_ohm:g} "
                  f"onoff={config.onoff_ratio:g} "
                  f"v={config.v_supply_v:g} (key {key})", flush=True)
        dataset = build_geniex_dataset(config, sampling, mode=mode,
                                       progress=progress)
        model, _ = train_geniex(dataset, training, verbose=progress)
        self.save_model(model, path)
        emulator = GeniexEmulator(model)
        self._memory[key] = emulator
        return emulator
