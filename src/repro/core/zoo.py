"""Disk-backed registry of trained GENIEx models.

Characterising a crossbar (circuit sweeps + MLP training) costs minutes;
every experiment that touches the same configuration should pay it once.
The zoo keys artifacts by a hash of (crossbar config, sampling spec, train
spec, label mode) and stores the model state dict plus the normaliser in a
single ``.npz``, so cached models reload in milliseconds and are fully
self-contained.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
import threading

try:
    import fcntl
except ImportError:   # non-POSIX: per-process locks only
    fcntl = None

import numpy as np

from repro.core.dataset import build_geniex_dataset
from repro.core.emulator import GeniexEmulator
from repro.core.model import GeniexNet, Normalizer
from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec, train_geniex
from repro.errors import SerializationError
from repro.utils.cache import LruDict
from repro.utils.npz import load_npz
from repro.xbar.config import CrossbarConfig

_log = logging.getLogger("repro.zoo")


def default_cache_dir() -> str:
    """Honour ``REPRO_CACHE_DIR``; fall back to ``~/.cache/repro/geniex``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "geniex")


class GeniexZoo:
    """Train-once cache of :class:`GeniexEmulator` instances."""

    def __init__(self, cache_dir: str | None = None, verbose: bool = False,
                 max_memory_entries: int = 32, mmap: bool = True):
        self.cache_dir = cache_dir or default_cache_dir()
        self.verbose = verbose
        # Zero-copy artifact loads (see repro.utils.npz): fleet workers
        # sharing one cache dir map weight blobs out of the page cache
        # instead of each holding a private copy. ``mmap=False`` (or
        # REPRO_ZOO_MMAP=0, honoured inside load_npz) restores copying
        # loads for callers that mutate loaded arrays in place.
        self.mmap = bool(mmap)
        # Bounded LRU: evicted emulators reload from disk in milliseconds,
        # while an unbounded dict would pin every trained network a
        # long-running process (e.g. the serving registry) ever touched.
        self._memory = LruDict(max_memory_entries)
        # ``_mutex`` guards the per-key lock table; per-key locks serialise
        # concurrent get-or-train calls for the same artifact so
        # characterisation + training runs at most once.
        self._mutex = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        # get-or-train outcome counters (guarded by ``_mutex``); exposed
        # via :meth:`counters` so the serving registry can federate them
        # into its metrics namespace.
        self._counters = {"calls": 0, "memory_hits": 0, "disk_loads": 0,
                          "trains": 0}

    def _count(self, outcome: str) -> None:
        with self._mutex:
            self._counters["calls"] += 1
            self._counters[outcome] += 1

    def counters(self) -> dict:
        """Snapshot of get-or-train outcome counts."""
        with self._mutex:
            return dict(self._counters)

    def _lock_for(self, key: str) -> threading.Lock:
        with self._mutex:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def artifact_key(config: CrossbarConfig, sampling: SamplingSpec,
                     training: TrainSpec, mode: str,
                     nonideality=None) -> str:
        """Content key of one trained artifact.

        Delegates to :meth:`repro.api.spec.EmulationSpec.model_key` so
        the zoo, the serving registry and session-resolved specs all
        agree on what "the same trained model" means — one digest
        scheme, stable across processes and spawn/fork boundaries.

        ``nonideality`` (a :class:`repro.nonideal.NonidealitySpec`, or
        ``None`` / identity for the historical clean key) participates
        whenever it is non-identity: a faulty crossbar's artifact is
        keyed apart from the clean design's, so the two can never alias
        in any cache built on this key. The characterisation sweep does
        not depend on the fault composition, so separated keys may hold
        identical weights — the cost of one redundant training run buys
        an unconditional no-aliasing guarantee.

        Note: this digest scheme replaced the pre-1.1 repr-based one, so
        artifacts trained by older versions key differently and are
        retrained on first use (the old ``.npz`` files are simply left
        unused on disk).
        """
        # Imported lazily: repro.api resolves sessions *through* the zoo.
        from repro.api.spec import EmulationSpec, EmulatorSpec, XbarSpec
        kwargs = {} if nonideality is None else {"nonideality": nonideality}
        spec = EmulationSpec(
            xbar=XbarSpec.from_config(config),
            emulator=EmulatorSpec(sampling=sampling, training=training,
                                  mode=mode),
            **kwargs)
        return spec.model_key()

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"geniex-{key}.npz")

    @contextlib.contextmanager
    def _file_lock(self, path: str):
        """Cross-process single-writer lock for one artifact path.

        Fleet workers share one cache directory; an ``flock`` on a
        sidecar ``.lock`` file extends the per-key thread lock across
        processes, so exactly one worker fleet-wide pays the training
        run while the others block briefly and then disk-load the
        persisted artifact. Degrades to the thread lock alone where
        ``fcntl`` is unavailable (the atomic-rename writer keeps even
        racing trainers safe there — just not single-writer).
        """
        if fcntl is None:
            yield
            return
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        handle = open(path + ".lock", "a+b")
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            # Unlock-then-close keeps the release explicit; the sidecar
            # file is left in place (deleting it would race a waiter that
            # already opened it, splitting the lock identity).
            fcntl.flock(handle, fcntl.LOCK_UN)
            handle.close()

    def _mitigated_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"mitigated-{key}.npz")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_savez(path: str, arrays: dict) -> None:
        """Atomically write an ``.npz`` archive.

        The archive is written to a temporary sibling file and moved into
        place with :func:`os.replace`, so readers either see the complete
        previous artifact or the complete new one — never a half-written
        ``.npz`` — and a crash mid-write leaves the target untouched.
        Concurrent writers race benignly: both produce identical,
        deterministic artifacts and the last rename wins.
        """
        path = os.path.abspath(path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            suffix=".npz", prefix=".tmp-", dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "wb") as handle:
                # savez would append ".npz" to a bare path; a file object
                # writes exactly where the temp file lives.
                np.savez(handle, **arrays)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def save_model(model: GeniexNet, path: str) -> None:
        """Atomically write a model artifact (see :meth:`_atomic_savez`)."""
        if model.normalizer is None:
            raise SerializationError("cannot save a model without normalizer")
        meta = {
            "rows": model.rows,
            "cols": model.cols,
            "hidden": model.hidden,
            "hidden_layers": model.hidden_layers,
            "normalizer": model.normalizer.to_dict(),
        }
        arrays = {f"param::{k}": v for k, v in model.state_dict().items()}
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        GeniexZoo._atomic_savez(path, arrays)

    @staticmethod
    def load_model(path: str, mmap: bool = True) -> GeniexNet:
        if not os.path.exists(path):
            raise SerializationError(f"no GENIEx artifact at {path}")
        try:
            # Memory-mapped state arrays are safe here: load_state_dict
            # copies into the model's own parameter storage.
            archive = load_npz(path, mmap=mmap)
            meta = json.loads(bytes(archive["meta_json"]).decode())
            state = {k[len("param::"):]: archive[k]
                     for k in archive if k.startswith("param::")}
            # Construction stays inside the wrapper: a schema-mismatched
            # artifact (missing meta key, wrong parameter shapes) is just
            # as unusable as a truncated one and must also surface as
            # SerializationError so get_or_train falls back to retraining.
            model = GeniexNet(meta["rows"], meta["cols"],
                              hidden=meta["hidden"],
                              hidden_layers=meta.get("hidden_layers", 1),
                              normalizer=Normalizer(**meta["normalizer"]))
            model.load_state_dict(state)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"corrupt, unreadable or schema-mismatched GENIEx "
                f"artifact at {path}: {exc}") from exc
        model.eval()
        return model

    # ------------------------------------------------------------------
    # Mitigated-model artifacts
    # ------------------------------------------------------------------
    def save_mitigated(self, key: str, state: dict, meta: dict) -> None:
        """Atomically persist one mitigated-model artifact.

        ``key`` is the mitigated-model digest (see
        :func:`repro.mitigation.runner.mitigated_key` — it folds in the
        full spec identity including the mitigation node, the dataset
        handle and the model architecture, so a mitigated artifact can
        never alias a raw model or a differently-mitigated one).
        ``state`` maps names to arrays (the trained state dict plus any
        fitted calibration buffers); ``meta`` is a small JSON-encodable
        record (sizes, metrics, handle) needed to rebuild and audit it.
        """
        arrays = {f"param::{k}": np.asarray(v) for k, v in state.items()}
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        self._atomic_savez(self._mitigated_path(key), arrays)

    def load_mitigated(self, key: str) -> tuple[dict, dict] | None:
        """Load a mitigated artifact as ``(state, meta)``; None if absent.

        An unreadable artifact (crashed legacy writer) behaves like a
        missing one — the caller simply re-runs mitigation and the
        atomic re-save repairs the file.
        """
        path = self._mitigated_path(key)
        if not os.path.exists(path):
            return None
        try:
            # Mitigated state is read-only downstream (loaded into model
            # parameters by copy); memory-mapping it is safe. Callers
            # that resume training should construct the zoo with
            # ``mmap=False`` (the copy-on-write escape hatch).
            archive = load_npz(path, mmap=self.mmap)
            meta = json.loads(bytes(archive["meta_json"]).decode())
            state = {k[len("param::"):]: archive[k]
                     for k in archive if k.startswith("param::")}
            return state, meta
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Compiled-network artifacts (model-level serving)
    # ------------------------------------------------------------------
    def _net_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"netprog-{key}.npz")

    def save_net_program(self, key: str, wire: dict, meta: dict) -> None:
        """Atomically persist one uploaded-network artifact.

        ``key`` is the warm-program key (net digest + serving-spec
        identity); ``wire`` is a ``repro-net/1`` layer-list dict (state
        entries may be JSON-encoded or raw arrays); ``meta`` is a small
        JSON record (spec dict, net digest, model key) that lets any
        fleet worker rebuild and recompile the network from disk without
        ever having seen the original upload.
        """
        from repro.nn.serialization import decode_state_array
        layers_meta = []
        arrays = {}
        for i, entry in enumerate(wire["layers"]):
            state = entry.get("state", {})
            layers_meta.append({"kind": entry["kind"],
                                "config": entry.get("config", {}),
                                "state": sorted(state)})
            for name, value in state.items():
                arrays[f"param::{i}::{name}"] = decode_state_array(value)
        record = {"format": wire["format"], "layers": layers_meta,
                  "input_shape": wire.get("input_shape"), "meta": meta}
        arrays["meta_json"] = np.frombuffer(
            json.dumps(record).encode(), dtype=np.uint8)
        path = self._net_path(key)
        with self._file_lock(path):
            # Artifacts are content-addressed: an existing file is the
            # same bytes re-uploaded, so the first writer wins fleet-wide.
            if not os.path.exists(path):
                self._atomic_savez(path, arrays)

    def load_net_program(self, key: str) -> tuple[dict, dict] | None:
        """Load an uploaded-network artifact as ``(wire, meta)``.

        Returns ``None`` when absent or unreadable (the caller answers
        404 / recompiles from a fresh upload). State arrays come back
        raw — memory-mapped when enabled — not JSON-encoded.
        """
        path = self._net_path(key)
        if not os.path.exists(path):
            return None
        try:
            arrays = load_npz(path, mmap=self.mmap)
            record = json.loads(bytes(arrays["meta_json"]).decode())
            layers = []
            for i, layer_meta in enumerate(record["layers"]):
                entry = {"kind": layer_meta["kind"],
                         "config": layer_meta["config"]}
                if layer_meta["state"]:
                    entry["state"] = {
                        name: arrays[f"param::{i}::{name}"]
                        for name in layer_meta["state"]}
                layers.append(entry)
            wire = {"format": record["format"], "layers": layers}
            if record.get("input_shape") is not None:
                wire["input_shape"] = record["input_shape"]
            return wire, record["meta"]
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def get_or_train(self, config: CrossbarConfig,
                     sampling: SamplingSpec | None = None,
                     training: TrainSpec | None = None,
                     mode: str = "full",
                     nonideality=None,
                     progress: bool = False) -> GeniexEmulator:
        """Return a (possibly cached) emulator for a crossbar configuration.

        ``nonideality`` only *keys* the artifact (see
        :meth:`artifact_key`); the characterisation sweep and training
        are fault-independent, so callers sweeping many fault points
        over one design should resolve the clean emulator once and hand
        it to sessions directly rather than paying one training run per
        grid point.
        """
        sampling = sampling or SamplingSpec()
        training = training or TrainSpec()
        key = self.artifact_key(config, sampling, training, mode,
                                nonideality=nonideality)
        cached = self._memory.get(key)
        if cached is not None:
            self._count("memory_hits")
            return cached
        try:
            with self._lock_for(key):
                # Re-check under the key lock: a concurrent caller may have
                # trained (or loaded) the artifact while we waited.
                cached = self._memory.get(key)
                if cached is not None:
                    self._count("memory_hits")
                    return cached
                path = self._path(key)
                with self._file_lock(path):
                    # Re-check under the *file* lock too: another process
                    # (a fleet worker sharing this cache dir) may have
                    # trained and persisted the artifact while we waited.
                    emulator = self._load_if_present(path)
                    if emulator is None:
                        _log.log(
                            logging.INFO if (self.verbose or progress)
                            else logging.DEBUG,
                            "training model for %dx%d r_on=%g onoff=%g "
                            "v=%g (key %s)", config.rows, config.cols,
                            config.r_on_ohm, config.onoff_ratio,
                            config.v_supply_v, key)
                        dataset = build_geniex_dataset(config, sampling,
                                                       mode=mode,
                                                       progress=progress)
                        model, _ = train_geniex(dataset, training,
                                                verbose=progress)
                        self.save_model(model, path)
                        emulator = GeniexEmulator(model)
                        self._count("trains")
                    else:
                        self._count("disk_loads")
                self._memory.put(key, emulator)
                return emulator
        finally:
            # Drop idle per-key locks so the table is bounded by in-flight
            # training runs, not by every key ever requested. A waiter that
            # raced the drop keeps its reference and at worst repeats the
            # (idempotent, atomically-saved) load/train.
            with self._mutex:
                lock = self._key_locks.get(key)
                if lock is not None and not lock.locked():
                    del self._key_locks[key]

    def _load_if_present(self, path: str) -> GeniexEmulator | None:
        """Load an artifact if it exists and is readable.

        A missing file means "train it"; so does an unreadable one (e.g.
        an artifact from an older, non-atomic writer that crashed mid-save)
        — retraining simply rewrites it atomically.
        """
        if not os.path.exists(path):
            return None
        try:
            return GeniexEmulator(self.load_model(path, mmap=self.mmap))
        except SerializationError:
            return None
