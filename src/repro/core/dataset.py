"""GENIEx training-set construction: run the simulator, label with fR.

``build_geniex_dataset`` drives the circuit simulator (the HSPICE stand-in)
over a stratified sample of operating points and packages normalised inputs
and labels. The dataset stores conductance matrices once per group and
expands them lazily, because the flattened G component dominates memory for
64x64 crossbars.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.circuit.simulator import CrossbarCircuitSimulator
from repro.core.metrics import DEFAULT_EPS_CURRENT_A, ratio_fr, valid_mask
from repro.core.sampling import SamplingSpec, VgSampler
from repro.errors import ConfigError
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.xbar.mapping import normalize_conductances, normalize_voltages


@dataclass
class GeniexDataset:
    """Normalised (V, G) -> fR dataset for one crossbar configuration.

    Attributes:
        config: The crossbar the data was generated for.
        voltages_v: ``(n, rows)`` raw input voltages.
        conductances_s: ``(n_groups, rows, cols)`` raw conductance matrices.
        group_index: ``(n,)`` map from sample to conductance group.
        i_ideal_a / i_nonideal_a: ``(n, cols)`` reference currents.
        fr: ``(n, cols)`` raw distortion-ratio labels.
        mask: ``(n, cols)`` True where fR is well defined (loss weighting).
        fr_min / fr_max: Label normalisation range (from the masked data).
    """

    config: CrossbarConfig
    voltages_v: np.ndarray
    conductances_s: np.ndarray
    group_index: np.ndarray
    i_ideal_a: np.ndarray
    i_nonideal_a: np.ndarray
    fr: np.ndarray
    mask: np.ndarray
    fr_min: float
    fr_max: float

    def __len__(self) -> int:
        return self.voltages_v.shape[0]

    def features(self, indices=None) -> np.ndarray:
        """Concatenated normalised inputs ``[V_norm | G_norm.ravel()]``.

        Shape ``(n, rows + rows*cols)`` float32 — the paper's NN input
        layout for an N x N crossbar: ``(N + N^2)``-dimensional.
        """
        if indices is None:
            indices = np.arange(len(self))
        indices = np.asarray(indices)
        v_norm = normalize_voltages(self.voltages_v[indices], self.config)
        g_norm = normalize_conductances(
            self.conductances_s[self.group_index[indices]], self.config)
        flat_g = g_norm.reshape(len(indices), -1)
        return np.concatenate([v_norm, flat_g], axis=1).astype(np.float32)

    def labels(self, indices=None) -> np.ndarray:
        """fR labels normalised to [0, 1] over the training range."""
        if indices is None:
            indices = np.arange(len(self))
        span = max(self.fr_max - self.fr_min, 1e-12)
        norm = (self.fr[indices] - self.fr_min) / span
        return np.clip(norm, 0.0, 1.0).astype(np.float32)

    def weights(self, indices=None, current_weighting: bool = False,
                floor: float = 0.1) -> np.ndarray:
        """Loss weights: 0 where fR is undefined, 1 elsewhere.

        With ``current_weighting`` the valid columns are additionally scaled
        by ``floor + (I_ideal / max I_ideal)^2``. An fR error translates to
        an *absolute* current error proportional to I_ideal, and the
        functional simulator's shift-and-add amplifies exactly those
        absolute errors — so weighting the fit by the squared normalised
        current minimises the error that actually reaches the application.
        (The paper trains unweighted; the ablation bench quantifies the
        difference.)
        """
        if indices is None:
            indices = np.arange(len(self))
        base = self.mask[indices].astype(np.float32)
        if not current_weighting:
            return base
        i_max = max(float(np.abs(self.i_ideal_a).max()), 1e-30)
        i_norm = (self.i_ideal_a[indices] / i_max).astype(np.float32)
        return base * (np.float32(floor) + i_norm ** 2)


def build_geniex_dataset(config: CrossbarConfig,
                         spec: SamplingSpec | None = None,
                         mode: str = "full",
                         eps_a: float = DEFAULT_EPS_CURRENT_A,
                         progress: bool = False) -> GeniexDataset:
    """Generate a labelled dataset by simulating every operating point.

    Args:
        config: Crossbar design to characterise.
        spec: Sampling strategy; defaults to :class:`SamplingSpec` defaults.
        mode: Simulator fidelity for the labels — ``full`` (non-linear,
            the HSPICE stand-in) or ``linear`` (for ablations).
        eps_a: Ideal-current threshold below which fR is masked out.
        progress: Print per-group timing (useful for 64x64 full runs).
    """
    if mode not in ("full", "linear"):
        raise ConfigError(f"label mode must be 'full' or 'linear', got {mode!r}")
    spec = spec or SamplingSpec()
    sampler = VgSampler(config, spec)
    voltages, conductances, group_index = sampler.sample()

    simulator = CrossbarCircuitSimulator(config)
    n = voltages.shape[0]
    i_nonideal = np.empty((n, config.cols))
    i_ideal = np.empty((n, config.cols))
    start = time.time()
    for group in range(spec.n_g_matrices):
        rows = np.nonzero(group_index == group)[0]
        i_ideal[rows] = ideal_mvm(voltages[rows], conductances[group])
        i_nonideal[rows] = simulator.solve_batch(
            voltages[rows], conductances[group], mode=mode)
        if progress:
            done = (group + 1) / spec.n_g_matrices
            elapsed = time.time() - start
            print(f"  [geniex-dataset] group {group + 1}/"
                  f"{spec.n_g_matrices} ({done:4.0%}) "
                  f"elapsed {elapsed:6.1f}s", flush=True)
    fr = ratio_fr(i_ideal, i_nonideal, eps_a)
    mask = valid_mask(i_ideal, eps_a)
    masked = fr[mask]
    if masked.size == 0:
        raise ConfigError(
            "dataset contains no valid fR labels; inputs may be all-zero")
    fr_min = float(masked.min())
    fr_max = float(masked.max())
    return GeniexDataset(config, voltages, conductances, group_index,
                         i_ideal, i_nonideal, fr, mask, fr_min, fr_max)
