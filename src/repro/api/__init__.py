"""Public API: declarative specs and the session facade.

This package is the single entry point for building emulation engines.
Describe a setup once as a frozen, JSON-serializable
:class:`EmulationSpec` (engine kind, crossbar design, digital precision,
emulator hyper-parameters, runtime policy), then resolve it with
:func:`open_session` — the CLI, the HTTP service, the experiment drivers
and the examples all go through exactly this path, so the same spec
always yields the same engine and hits the same caches.

Three ideas:

* **Spec** — :class:`EmulationSpec` and its nested nodes
  (:class:`DeviceSpec`, :class:`XbarSpec`, :class:`SimSpec`,
  :class:`EmulatorSpec`, :class:`NonidealitySpec`,
  :class:`MitigationSpec`, :class:`RuntimeSpec`) form a validated tree
  with a strict ``to_dict``/``from_dict`` JSON round-trip, named presets
  (:func:`get_preset`, e.g. ``"paper-64x64"``, ``"quick"``) and an
  :meth:`~EmulationSpec.evolve` builder for overrides.
* **Keys** — ``spec.model_key()`` / ``spec.key()`` /
  ``spec.weights_key(W)`` are stable content digests; the GENIEx zoo and
  the serving registry key their caches with them.
* **Session** — :func:`open_session` resolves the spec (get-or-train
  through the zoo), builds the engine and owns the runtime lifecycle;
  it exposes ``matmul``, ``solve_batch``, ``compile`` and ``stats``.

See the README's "Public API" section for a tour and migration notes.
"""

from repro.api.presets import PRESETS, get_preset, preset_names
from repro.api.session import (
    Session,
    build_engine,
    open_session,
    resolve_emulator,
)
from repro.api.spec import (
    DeviceSpec,
    EmulationSpec,
    EmulatorSpec,
    FleetSpec,
    RuntimeSpec,
    SimSpec,
    XbarSpec,
    engine_identity,
    mitigation_from_dict,
    nonideality_from_dict,
    supports_batch_invariance,
    weights_identity,
)
from repro.mitigation.spec import (
    CalibrationSpec,
    MitigationSpec,
    NoiseTrainSpec,
)
from repro.nonideal import NonidealitySpec

__all__ = [
    "EmulationSpec",
    "DeviceSpec",
    "XbarSpec",
    "SimSpec",
    "EmulatorSpec",
    "NonidealitySpec",
    "MitigationSpec",
    "NoiseTrainSpec",
    "CalibrationSpec",
    "FleetSpec",
    "RuntimeSpec",
    "Session",
    "open_session",
    "build_engine",
    "resolve_emulator",
    "PRESETS",
    "get_preset",
    "preset_names",
    "engine_identity",
    "weights_identity",
    "nonideality_from_dict",
    "mitigation_from_dict",
    "supports_batch_invariance",
]
