"""Declarative emulation specs: one serializable description of a setup.

:class:`EmulationSpec` is the canonical, frozen description of "an
emulation setup" — which engine kind runs, on which crossbar design, at
which digital precision, backed by which trained emulator, executed with
which runtime policy. Every surface of the repository (CLI, HTTP service,
experiment drivers, notebooks) resolves the same spec to the same engine,
and every cache (the GENIEx zoo, the serving registry's warm tiers) keys
artifacts by the same spec digests, so identical setups are recognised as
identical everywhere.

The spec tree::

    EmulationSpec
    ├── engine: str                  # ideal | exact | geniex | ...
    ├── xbar: XbarSpec               # crossbar design parameters
    │   └── rram: DeviceSpec         # RRAM compact-model constants
    ├── sim: SimSpec                 # digital bit widths (funcsim)
    ├── emulator: EmulatorSpec       # GENIEx characterisation + fit
    │   ├── sampling: SamplingSpec
    │   └── training: TrainSpec
    ├── nonideality: NonidealitySpec # device-fault composition
    │   ├── variation / drift / read_noise / temperature / stuck
    │   └── seed
    ├── mitigation: MitigationSpec   # fault-mitigation recipe
    │   ├── noise: NoiseTrainSpec    # noise-injection / HW-loop training
    │   ├── calibration: CalibrationSpec
    │   └── seed
    └── runtime: RuntimeSpec         # executor / workers / caches

The design-parameter nodes subclass the validated config dataclasses they
describe (:class:`XbarSpec` extends
:class:`~repro.xbar.config.CrossbarConfig`, :class:`SimSpec` extends
:class:`~repro.funcsim.config.FuncSimConfig`, :class:`DeviceSpec` extends
:class:`~repro.devices.rram.RramParameters`), so field sets, defaults and
validation can never drift apart; ``to_config()`` lowers each node back to
the plain config type the engines consume.

Serialisation is a strict JSON round-trip: ``from_dict(to_dict(s)) == s``,
unknown fields are rejected with a :class:`~repro.errors.ConfigError`
naming the offending dotted path, and ``evolve(**overrides)`` produces a
modified copy (nested dicts or dotted paths like ``"xbar.rows"``), with
evolve overrides taking precedence over preset values, which take
precedence over defaults.

Keys. ``spec.model_key()`` identifies the trained-emulator artifact (the
GENIEx zoo delegates here), ``spec.key()`` the resulting engine behaviour
(the serving registry keys warm engines on it) and
``spec.weights_key(W)`` one prepared weight matrix on that engine. All
are content digests built on :mod:`repro.utils.digest` — stable across
processes, pickling and spawn/fork boundaries.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec
from repro.devices.rram import RramParameters
from repro.errors import ConfigError
from repro.funcsim.config import FuncSimConfig
from repro.funcsim.engine import ENGINE_KINDS, INVARIANT_KINDS
from repro.funcsim.runtime.backends import BACKEND_KINDS, INTERPRETER_KINDS
from repro.mitigation.spec import (
    CalibrationSpec,
    MitigationSpec,
    NoiseTrainSpec,
)
from repro.nonideal.pipeline import NonidealitySpec
from repro.nonideal.transforms import (
    TRANSFORM_KINDS,
    DriftSpec,
    ReadNoiseSpec,
    StuckSpec,
    TemperatureSpec,
    VariationSpec,
)
from repro.utils.digest import content_key
from repro.xbar.config import CrossbarConfig

#: Runtime backends accepted by :class:`RuntimeSpec` (``None`` = inline).
EXECUTOR_KINDS = (None, "serial", "threads", "process")


def supports_batch_invariance(engine: str, sim) -> bool:
    """Whether ``engine`` under ``sim`` can run batch-invariantly.

    True for the closed-form tile models with a deterministic,
    zero-preserving ADC; converter offset or noise makes the per-batch
    zero-stream skip observable and rules invariance out (the serving
    registry uses this to decide how to build warm engines).
    """
    return (engine in INVARIANT_KINDS
            and sim.adc_offset_lsb == 0.0
            and sim.adc_noise_lsb == 0.0)


# ----------------------------------------------------------------------
# Spec nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceSpec(RramParameters):
    """RRAM compact-model constants as a spec node.

    Field-for-field identical to :class:`~repro.devices.rram.
    RramParameters` (it *is* one), so device validation lives in exactly
    one place; :meth:`to_params` lowers to the plain config type.
    """

    def to_params(self) -> RramParameters:
        return RramParameters(**_shallow_dict(self, RramParameters))

    @classmethod
    def from_params(cls, params: RramParameters) -> "DeviceSpec":
        return cls(**_shallow_dict(params, RramParameters))


@dataclass(frozen=True)
class XbarSpec(CrossbarConfig):
    """Crossbar design parameters as a spec node.

    Extends :class:`~repro.xbar.config.CrossbarConfig` with the spec
    codec; the nested device node is a :class:`DeviceSpec` so the whole
    tree serialises uniformly.
    """

    rram: DeviceSpec = field(default_factory=DeviceSpec)

    def to_config(self) -> CrossbarConfig:
        """Lower to the plain :class:`CrossbarConfig` the engines use."""
        kwargs = _shallow_dict(self, CrossbarConfig)
        kwargs["rram"] = self.rram.to_params() \
            if isinstance(self.rram, DeviceSpec) else self.rram
        return CrossbarConfig(**kwargs)

    @classmethod
    def from_config(cls, config: CrossbarConfig) -> "XbarSpec":
        kwargs = _shallow_dict(config, CrossbarConfig)
        kwargs["rram"] = DeviceSpec.from_params(config.rram)
        return cls(**kwargs)


@dataclass(frozen=True)
class SimSpec(FuncSimConfig):
    """Digital-precision parameters as a spec node.

    Field-for-field identical to :class:`~repro.funcsim.config.
    FuncSimConfig`; :meth:`to_config` lowers to the plain config type.
    """

    def to_config(self) -> FuncSimConfig:
        return FuncSimConfig(**_shallow_dict(self, FuncSimConfig))

    @classmethod
    def from_config(cls, config: FuncSimConfig) -> "SimSpec":
        return cls(**_shallow_dict(config, FuncSimConfig))


@dataclass(frozen=True)
class EmulatorSpec:
    """How the GENIEx emulator behind a ``geniex`` engine is obtained.

    ``sampling`` and ``training`` reuse the library's existing frozen
    spec dataclasses; ``mode`` selects the circuit fidelity of the
    characterisation labels (``"full"`` includes device non-linearity,
    ``"linear"`` parasitics only). Ignored by engines that need no
    trained model (``ideal``/``exact``/``analytical``/...).
    """

    sampling: SamplingSpec = SamplingSpec()
    training: TrainSpec = TrainSpec()
    mode: str = "full"

    def __post_init__(self):
        if self.mode not in ("full", "linear"):
            raise ConfigError(
                f"emulator mode must be 'full' or 'linear', "
                f"got {self.mode!r}")


@dataclass(frozen=True)
class FleetSpec:
    """Fleet routing policy for this spec when served behind a front-end.

    ``replication`` asks the fleet front-end to spread this model's
    traffic over that many distinct workers (capped by the fleet size);
    the front-end picks the least-loaded replica per request. Purely a
    routing hint: like every runtime knob except ``batch_invariant``, it
    never enters ``model_key()``/``key()`` or any cache digest, and a
    single-process server ignores it entirely.
    """

    replication: int = 1

    def __post_init__(self):
        if self.replication < 1:
            raise ConfigError(
                f"fleet replication must be >= 1, got {self.replication}")


@dataclass(frozen=True)
class RuntimeSpec:
    """Execution policy: how a resolved engine runs, not what it computes.

    Attributes:
        executor: Runtime backend (``None`` = inline on the calling
            thread, or ``"serial"``/``"threads"``/``"process"``).
        workers: Backend parallelism; ``workers > 1`` with no explicit
            executor selects the process backend (as ``make_engine``).
        tile_cache_size: Per-engine tile-result LRU entries (0 disables).
        chunk_rows: Conv-layer im2col chunking for converted models.
        batch_invariant: Route tile matmuls through the batch-invariant
            einsum kernel (bitwise row-independent results; required by
            the microbatching service). Only this field participates in
            ``spec.key()`` — every other runtime knob is value-neutral
            by the runtime's determinism contract.
        backend: Array backend of the compiled fused kernel (``None``
            resolves through ``$REPRO_BACKEND`` to ``"numpy"``;
            ``"interp"`` forces the interpreted reference kernel). All
            values are bit-identical, so — like every knob but
            ``batch_invariant`` — the choice never enters ``spec.key()``
            or cache digests.
        fleet: Fleet routing policy (:class:`FleetSpec`); a digest-
            neutral hint consumed only by the fleet front-end.
    """

    executor: str | None = None
    workers: int = 1
    tile_cache_size: int = 256
    chunk_rows: int | None = None
    batch_invariant: bool = False
    backend: str | None = None
    fleet: FleetSpec = FleetSpec()

    def __post_init__(self):
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTOR_KINDS}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.tile_cache_size < 0:
            raise ConfigError(
                f"tile_cache_size must be >= 0, got {self.tile_cache_size}")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ConfigError(
                f"chunk_rows must be >= 1 or None, got {self.chunk_rows}")
        if self.backend is not None \
                and self.backend not in BACKEND_KINDS + INTERPRETER_KINDS:
            raise ConfigError(
                f"unknown array backend {self.backend!r}; expected one of "
                f"{BACKEND_KINDS + INTERPRETER_KINDS}")


@dataclass(frozen=True)
class EmulationSpec:
    """The root spec: one complete, serializable emulation setup."""

    engine: str = "geniex"
    xbar: XbarSpec = XbarSpec()
    sim: SimSpec = SimSpec()
    emulator: EmulatorSpec = EmulatorSpec()
    nonideality: NonidealitySpec = NonidealitySpec()
    mitigation: MitigationSpec = MitigationSpec()
    runtime: RuntimeSpec = RuntimeSpec()

    def __post_init__(self):
        if self.engine not in ENGINE_KINDS:
            raise ConfigError(
                f"unknown engine kind {self.engine!r}; expected one of "
                f"{ENGINE_KINDS}")
        if self.engine == "ideal" and not self.nonideality.is_identity:
            # Fail at spec validation, not at engine build: the ideal
            # engine is the digital reference and has no programmed
            # conductances to perturb — a faulty "ideal" spec is a
            # contradiction, not a setup that silently runs clean.
            raise ConfigError(
                "spec.nonideality is active but spec.engine is 'ideal' "
                "(the digital fixed-point reference has no analog state "
                "to perturb); pick an analog engine kind or drop the "
                "nonideality node")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-encodable dict (tuples become lists)."""
        return _node_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EmulationSpec":
        """Strict inverse of :meth:`to_dict`.

        Unknown fields raise :class:`ConfigError` naming the dotted path
        (a typo silently falling back to a default would key a different
        artifact than the caller intended); lists become the tuples the
        frozen dataclasses expect; missing fields take their defaults.
        """
        return _node_from_dict(cls, payload, "spec")

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EmulationSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def preset(cls, name: str) -> "EmulationSpec":
        """A named preset spec (see :mod:`repro.api.presets`)."""
        from repro.api.presets import get_preset
        return get_preset(name)

    def evolve(self, **overrides) -> "EmulationSpec":
        """A copy with the given overrides applied.

        Accepts direct field values (``engine="exact"``), nested dicts
        (``xbar={"rows": 32}``) and dotted paths
        (``**{"xbar.rows": 32}``); lists are converted to tuples.
        Override precedence is outermost-wins: ``evolve`` beats the
        preset the spec came from, which beats the dataclass defaults.
        """
        tree: dict = {}
        for key, value in overrides.items():
            parts = key.split(".")
            node = tree
            for part in parts[:-1]:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):
                    raise ConfigError(
                        f"override {key!r} descends through a non-spec "
                        f"value at {part!r}")
            if isinstance(value, dict):
                _deep_merge(node.setdefault(parts[-1], {}), value)
            else:
                node[parts[-1]] = value
        return _evolve_node(self, tree, "spec")

    # ------------------------------------------------------------------
    # Content digests
    # ------------------------------------------------------------------
    def model_key(self) -> str:
        """Identity of the trained GENIEx artifact this spec resolves to.

        Depends on the crossbar design, the emulator node and — when one
        is active — the non-ideality composition; exactly what
        :meth:`repro.core.zoo.GeniexZoo.get_or_train` consumes; the
        zoo's ``artifact_key`` delegates here.

        The ``nonideality`` digest is folded in *only when the node is
        non-identity*: clean specs keep the exact pre-node byte digest
        (no spurious zoo/registry re-keying — regression-tested), while
        a faulty crossbar can never alias a clean one in the zoo, the
        serving registry or (via :meth:`key`/:meth:`weights_key`, which
        build on this digest) any warm-engine tier. The characterisation
        sweep itself is nonideality-independent, so the separation is a
        deliberately conservative no-aliasing guarantee, not a claim
        that the trained weights differ; drivers that sweep many fault
        points over one design pass the resolved emulator explicitly
        (``Session(..., emulator=...)``) to pay training once.

        The ``mitigation`` digest folds in under the same rule: a
        mitigated spec can never cache-alias its unmitigated twin at any
        digest level, while identity mitigation (the default) keeps every
        pre-node digest byte-for-byte. The characterisation emulator is
        mitigation-independent, so the zoo strips the node before keying
        its trained-emulator artifacts (``GeniexZoo.artifact_key``) —
        the no-aliasing applies to model/engine/weights/mitigated tiers,
        not to the shared physics characterisation.
        """
        payload = {"xbar": _node_to_dict(self.xbar),
                   "emulator": _node_to_dict(self.emulator)}
        if not self.nonideality.is_identity:
            payload["nonideality"] = self.nonideality.digest()
        if not self.mitigation.is_identity:
            payload["mitigation"] = self.mitigation.digest()
        return content_key("", payload)

    def key(self) -> str:
        """Identity of the engine *behaviour* this spec resolves to.

        Folds in the engine kind, the model identity (crossbar design +
        emulator node, via :meth:`model_key` — matching the legacy
        registry scheme, so non-learned kinds key conservatively on the
        emulator node too rather than risk ever sharing an engine across
        different crossbar designs), the sim precision and the
        batch-invariance flag. Deliberately excludes every other runtime
        knob: executor backend, worker count and cache sizes never change
        results (the runtime's determinism contract), so two specs that
        differ only there share warm engines.
        """
        return engine_identity(self.model_key(), self.engine, self.sim,
                               self.runtime.batch_invariant)

    def weights_key(self, weights) -> str:
        """Identity of one prepared weight matrix on this spec's engine."""
        return weights_identity(self.key(), weights)


# ----------------------------------------------------------------------
# Digest composition (shared with the serving registry's legacy shims)
# ----------------------------------------------------------------------
def engine_identity(model_key: str, engine: str, sim,
                    batch_invariant: bool) -> str:
    """Engine-behaviour digest from pre-resolved parts.

    ``model_key`` is the :meth:`EmulationSpec.model_key` digest and
    carries the crossbar design (every kind's values depend on it) plus
    the emulator node. ``sim`` may be a :class:`SimSpec` or a plain
    :class:`~repro.funcsim.config.FuncSimConfig` — both digest to the
    same key (identical field sets). :meth:`EmulationSpec.key` and the
    registry's deprecated ``engine_key`` shim both bottom out here.
    """
    return content_key("spec", model_key, engine,
                       {"sim": _node_to_dict(sim),
                        "batch_invariant": bool(batch_invariant)})


def weights_identity(engine_key: str, weights) -> str:
    """Prepared-weights digest on top of an engine-behaviour digest."""
    return content_key("eng", engine_key,
                       np.asarray(weights, dtype=np.float64))


# ----------------------------------------------------------------------
# Generic strict dataclass <-> dict codec
# ----------------------------------------------------------------------
def _shallow_dict(node, cls) -> dict:
    """Field values of ``node`` restricted to ``cls``'s field names."""
    return {f.name: getattr(node, f.name) for f in dataclasses.fields(cls)}


def _node_to_dict(node) -> dict:
    out = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if dataclasses.is_dataclass(value):
            out[f.name] = _node_to_dict(value)
        elif isinstance(value, tuple):
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out


def _node_from_dict(cls, payload, path: str):
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise ConfigError(
            f"{path} must be a JSON object, got {type(payload).__name__}")
    children = _SPEC_CHILDREN.get(cls, {})
    allowed = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key not in allowed:
            raise ConfigError(
                f"unknown spec field {path}.{key!r}; expected one of "
                f"{sorted(allowed)}")
        if key in children:
            value = _node_from_dict(children[key], value, f"{path}.{key}")
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        raise ConfigError(f"invalid {path}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"invalid {path}: {exc}") from exc


def _deep_merge(base: dict, extra: dict) -> None:
    for key, value in extra.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            _deep_merge(base[key], value)
        else:
            base[key] = value


def _evolve_node(node, tree: dict, path: str):
    allowed = {f.name for f in dataclasses.fields(node)}
    changes = {}
    for key, value in tree.items():
        if key not in allowed:
            raise ConfigError(
                f"unknown spec field {path}.{key!r}; expected one of "
                f"{sorted(allowed)}")
        current = getattr(node, key)
        if isinstance(value, dict):
            if not dataclasses.is_dataclass(current):
                raise ConfigError(
                    f"spec field {path}.{key!r} is a plain value and "
                    f"cannot take nested overrides")
            changes[key] = _evolve_node(current, value, f"{path}.{key}")
        elif isinstance(value, list):
            changes[key] = tuple(value)
        else:
            if dataclasses.is_dataclass(current) and \
                    not isinstance(value, type(current)):
                raise ConfigError(
                    f"spec field {path}.{key!r} is a nested spec node; "
                    f"override it with a dict (or a "
                    f"{type(current).__name__} instance), not "
                    f"{type(value).__name__}")
            changes[key] = value
    try:
        return dataclasses.replace(node, **changes)
    except ConfigError as exc:
        raise ConfigError(f"invalid {path}: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"invalid {path}: {exc}") from exc


#: Nested spec-node types per parent class, used by the strict decoder.
_SPEC_CHILDREN = {
    EmulationSpec: {"xbar": XbarSpec, "sim": SimSpec,
                    "emulator": EmulatorSpec, "runtime": RuntimeSpec,
                    "nonideality": NonidealitySpec,
                    "mitigation": MitigationSpec},
    XbarSpec: {"rram": DeviceSpec},
    RuntimeSpec: {"fleet": FleetSpec},
    EmulatorSpec: {"sampling": SamplingSpec, "training": TrainSpec},
    MitigationSpec: {"noise": NoiseTrainSpec,
                     "calibration": CalibrationSpec},
    NonidealitySpec: {"variation": VariationSpec, "drift": DriftSpec,
                      "read_noise": ReadNoiseSpec,
                      "temperature": TemperatureSpec, "stuck": StuckSpec},
}
assert set(_SPEC_CHILDREN[NonidealitySpec]) == set(TRANSFORM_KINDS)


def nonideality_from_dict(payload, path: str = "nonideality") \
        -> NonidealitySpec:
    """Strict decode of a bare non-ideality node (wire-format adapters).

    Same codec as :meth:`EmulationSpec.from_dict` restricted to the
    ``nonideality`` subtree — the serve protocol's flat ``model`` object
    uses this to accept a fault composition alongside the legacy fields.
    """
    return _node_from_dict(NonidealitySpec, payload, path)


def mitigation_from_dict(payload, path: str = "mitigation") \
        -> MitigationSpec:
    """Strict decode of a bare mitigation node (wire-format adapters)."""
    return _node_from_dict(MitigationSpec, payload, path)
