"""Session facade: resolve a spec into a live, managed engine.

:func:`open_session` is the single entry point for turning a declarative
:class:`~repro.api.spec.EmulationSpec` into something that computes:

* the GENIEx emulator is resolved through a
  :class:`~repro.core.zoo.GeniexZoo` (get-or-train, disk-cached, one
  training run per artifact key under the zoo's per-key locks);
* the engine is constructed by the same
  :func:`~repro.funcsim.engine.make_engine` factory every other surface
  uses, so a session is bit-identical to the hand-wired pipeline (tested);
* the session owns the runtime lifecycle: leaving the ``with`` block (or
  calling :meth:`Session.close`) releases sharded-runtime worker pools,
  after which the engine degrades to inline single-core execution rather
  than breaking — the same evict-degrade semantics the serving registry
  relies on.

Typical use::

    from repro.api import EmulationSpec, open_session

    spec = EmulationSpec.preset("quick").evolve(**{"xbar.rows": 32})
    with open_session(spec) as session:
        y = session.matmul(x, weights)          # bit-sliced crossbar MVM
        net = session.compile(model)            # whole-DNN conversion
        print(session.stats())
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import EmulationSpec
from repro.core.zoo import GeniexZoo
from repro.errors import ConfigError
from repro.funcsim.convert import convert_to_mvm
from repro.funcsim.engine import PreparedMatrix, make_engine
from repro.obs import span
from repro.utils.cache import LruDict

#: Prepared weight matrices memoised per session (keyed by content
#: digest, so re-submitting the same weights never re-programs tiles).
PREPARED_CACHE_ENTRIES = 32


def resolve_emulator(spec: EmulationSpec, zoo: GeniexZoo | None = None,
                     progress: bool = False):
    """Get-or-train the GENIEx emulator a spec's ``geniex`` engine needs.

    Goes through the zoo's per-key training locks and disk cache; the
    artifact key is ``spec.model_key()`` with the mitigation node
    stripped (the characterisation sweep is mitigation-independent — see
    ``GeniexZoo.artifact_key``), so every surface that resolves the same
    physics shares one trained model.
    """
    zoo = zoo or GeniexZoo()
    return zoo.get_or_train(spec.xbar.to_config(), spec.emulator.sampling,
                            spec.emulator.training, mode=spec.emulator.mode,
                            nonideality=spec.nonideality, progress=progress)


def build_engine(spec: EmulationSpec, emulator=None):
    """Construct the engine a spec describes (no zoo resolution).

    ``emulator`` must be supplied for ``geniex`` specs — use
    :func:`open_session` (or :func:`resolve_emulator`) to obtain it; the
    serving registry passes its warm-tier emulator here directly.
    """
    if spec.engine == "geniex" and emulator is None:
        raise ConfigError(
            "building a geniex engine requires a resolved emulator; "
            "open_session(spec) resolves one through the zoo")
    runtime = spec.runtime
    return make_engine(spec.engine, spec.xbar.to_config(),
                       spec.sim.to_config(), emulator=emulator,
                       tile_cache_size=runtime.tile_cache_size,
                       batch_invariant=runtime.batch_invariant,
                       executor=runtime.executor, workers=runtime.workers,
                       nonideality=spec.nonideality,
                       backend=runtime.backend)


class Session:
    """A live emulation setup: spec + resolved emulator + engine.

    Context-managed; closing releases runtime worker pools (the engine
    stays usable inline afterwards). Prefer :func:`open_session` over
    constructing directly.
    """

    def __init__(self, spec: EmulationSpec, *, zoo: GeniexZoo | None = None,
                 emulator=None, progress: bool = False):
        if not isinstance(spec, EmulationSpec):
            raise ConfigError(
                f"Session expects an EmulationSpec, got "
                f"{type(spec).__name__}; open_session also accepts preset "
                f"names and spec dicts")
        self.spec = spec
        self.zoo = zoo
        with span("session-build", engine=spec.engine):
            if spec.engine == "geniex" and emulator is None:
                emulator = resolve_emulator(spec, zoo=zoo, progress=progress)
            self.emulator = emulator
            self.engine = build_engine(spec, emulator=emulator)
        # Evicting a prepared matrix also drops its layer program from
        # the attached executor (if any), so a sharded session streaming
        # many distinct matrices stays bounded on both sides.
        self._prepared = LruDict(PREPARED_CACHE_ENTRIES,
                                 on_evict=self._on_evict_prepared)
        self._simulator = None
        self._closed = False

    def _on_evict_prepared(self, _key, prepared) -> None:
        executor = getattr(self.engine, "executor", None)
        if executor is not None and prepared.program is not None:
            executor.remove_layer(prepared.uid)

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def prepare(self, weights) -> PreparedMatrix:
        """Compile a weight matrix for this session's engine (memoised).

        Accepts a ready :class:`PreparedMatrix` (returned unchanged) or a
        ``(K, M)`` array; preparing is content-keyed, so resubmitting
        equal weights reuses the programmed tiles — and mutating an
        array in place correctly re-prepares it. The memoisation hash
        touches every byte of the array per call; for hot loops over
        huge matrices, call ``prepare`` once and pass the returned
        :class:`PreparedMatrix` to :meth:`matmul` directly.
        """
        if isinstance(weights, PreparedMatrix):
            return weights
        key = self.spec.weights_key(weights)
        prepared = self._prepared.get(key)
        if prepared is None:
            prepared = self.engine.prepare(np.asarray(weights))
            self._prepared.put(key, prepared)
        return prepared

    def matmul(self, x, weights) -> np.ndarray:
        """Bit-sliced crossbar product of ``x`` with ``weights``."""
        return self.engine.matmul(x, self.prepare(weights))

    def solve_batch(self, voltages_v, conductance_s,
                    mode: str = "full") -> np.ndarray:
        """Circuit-level ground truth for this spec's crossbar design.

        Solves the (batched) crossbar circuit at the spec's design
        parameters — the oracle GENIEx emulates — independent of the
        engine kind, so any session can check its own fidelity.
        """
        if self._simulator is None:
            from repro.circuit.simulator import CrossbarCircuitSimulator
            self._simulator = CrossbarCircuitSimulator(
                self.spec.xbar.to_config())
        return self._simulator.solve_batch(voltages_v, conductance_s,
                                           mode=mode)

    def compile(self, model, chunk_rows: int | None = None):
        """An MVM copy of ``model`` running on this session's engine.

        Wraps :func:`~repro.funcsim.convert.convert_to_mvm`; the
        converted layers dispatch through the session's runtime (sharded
        when the spec configures workers), and the session — not the
        returned model — owns the worker lifecycle.
        """
        if chunk_rows is None:
            chunk_rows = self.spec.runtime.chunk_rows
        return convert_to_mvm(model, self.engine, chunk_rows=chunk_rows)

    def mitigate(self, data, *, hidden=(32,), model_seed: int = 0,
                 model=None, baseline: bool = True,
                 progress: bool = False):
        """Run this spec's ``mitigation`` recipe against its engine.

        Wraps :func:`repro.mitigation.runner.run_mitigation` with this
        session (its engine, zoo and runtime policy). ``data`` is a
        dataset handle (name or dict — see
        :mod:`repro.datasets.handles`) or raw ``(x_train, y_train,
        x_test, y_test)`` arrays. Returns a
        :class:`~repro.mitigation.runner.MitigationResult` whose
        ``serving`` model runs on this session's engine; the artifact is
        persisted in (and on re-runs reloaded from) the zoo under its
        mitigated-model digest.
        """
        from repro.mitigation.runner import run_mitigation
        return run_mitigation(self.spec, data, hidden=hidden,
                              model_seed=model_seed, model=model,
                              zoo=self.zoo, session=self,
                              baseline=baseline, progress=progress)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Unified observability snapshot of this session.

        Always carries ``spec_key`` and the engine's event counters
        (``engine``); adds ``tile_cache`` counters when the engine keeps
        a tile-result cache, and ``runtime`` — the attached executor's
        cumulative per-stage span timings (``{stage: {count, total_s}}``,
        folded in from every shard worker) — when the session runs on a
        sharded executor. Reading the snapshot never perturbs caches or
        counters.
        """
        out = {"spec_key": self.spec.key(),
               "engine": self.engine.stats.snapshot()
               if hasattr(self.engine, "stats") else {}}
        cache = getattr(self.engine, "tile_cache", None)
        if cache is not None:
            hits, misses = cache.counters()
            out["tile_cache"] = {"hits": hits, "misses": misses,
                                 "size": len(cache)}
        executor = getattr(self.engine, "executor", None)
        if executor is not None:
            out["runtime"] = {
                "backend": executor.name,
                "workers": executor.workers,
                "span_timings": executor.span_timings.snapshot(),
            }
        return out

    def close(self, wait: bool = True) -> None:
        """Release runtime workers; the engine degrades to inline.

        Idempotent. Matmuls issued after ``close()`` still complete
        (single-core), mirroring the serving registry's evict-degrade
        contract, so a session handed to background work cannot strand
        queued calls.
        """
        if not self._closed:
            self._closed = True
            self.engine.close(wait=wait)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self):
        return (f"Session(engine={self.spec.engine!r}, "
                f"xbar={self.spec.xbar.rows}x{self.spec.xbar.cols}, "
                f"key={self.spec.key()!r}, closed={self._closed})")


def open_session(spec, *, zoo: GeniexZoo | None = None, emulator=None,
                 progress: bool = False) -> Session:
    """Open a :class:`Session` for a spec, preset name or spec dict.

    ``spec`` may be an :class:`EmulationSpec`, a preset name
    (``"quick"``, ``"paper-64x64"``, ...) or a ``to_dict()``-shaped
    dict (e.g. parsed from a ``--spec file.json``). ``zoo`` defaults to
    the shared disk-backed zoo; ``emulator`` overrides resolution with a
    ready-made instance (the experiment drivers pass their pre-trained
    models through here).
    """
    if isinstance(spec, str):
        spec = EmulationSpec.preset(spec)
    elif isinstance(spec, dict):
        spec = EmulationSpec.from_dict(spec)
    return Session(spec, zoo=zoo, emulator=emulator, progress=progress)
