"""Named :class:`~repro.api.spec.EmulationSpec` presets.

Presets are complete, validated specs — starting points that
``spec.evolve(**overrides)`` refines. The precedence contract is
outermost-wins: evolve overrides beat preset values beat dataclass
defaults (tested in ``tests/api/test_spec.py``).

=================  =====================================================
``paper-64x64``    The paper's nominal setup (Section 6): 64x64 crossbar,
                   R_on 100k, ON/OFF 6, 0.25 V supply, GENIEx with 500
                   hidden units over a 150x30 characterisation sweep.
``paper-32x32``    Same recipe at 32x32 — the quick profile's headline
                   fit, minutes instead of hours to characterise.
``quick``          16x16 GENIEx small enough for CI and notebooks: a
                   12x10 sweep and a 64-unit MLP train in about a minute.
``quick-exact``    The ``quick`` crossbar with ideality-oracle tiles —
                   no training at all; isolates digital quantisation.
``quick-analytical``  The ``quick`` crossbar under the linear parasitic
                   model — no training; the paper's baseline.
``paper-64x64-variation``  The paper setup on a *faulty* crossbar: 10%
                   lognormal programming variation plus 1%/1% stuck-at
                   faults (seeded), exercising the ``nonideality`` spec
                   node — keyed apart from ``paper-64x64`` at every
                   cache tier.
``quick-mitigated``  A faulty ``quick-analytical`` crossbar (30%
                   variation, 2%/2% stuck-at) with the ``mitigation``
                   node active: 8 epochs of noise-injection training
                   (sigma 0.15) plus a 96-sample output calibration —
                   the CI smoke recipe, and keyed apart from its
                   unmitigated twin at every cache tier.
=================  =====================================================
"""

from __future__ import annotations

import difflib

from repro.api.spec import EmulationSpec, EmulatorSpec, XbarSpec
from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec
from repro.errors import ConfigError

_QUICK = EmulationSpec(
    engine="geniex",
    xbar=XbarSpec(rows=16, cols=16),
    emulator=EmulatorSpec(
        sampling=SamplingSpec(n_g_matrices=12, n_v_per_g=10, seed=0),
        training=TrainSpec(hidden=64, hidden_layers=2, epochs=60,
                           batch_size=128, lr=2e-3, patience=20, seed=0)))

_PAPER = EmulationSpec(
    engine="geniex",
    xbar=XbarSpec(rows=64, cols=64),
    emulator=EmulatorSpec(
        sampling=SamplingSpec(n_g_matrices=150, n_v_per_g=30, seed=0),
        training=TrainSpec(hidden=500, hidden_layers=2, epochs=300,
                           batch_size=128, lr=2e-3, patience=60, seed=0)))

PRESETS = {
    "paper-64x64": _PAPER,
    "paper-32x32": _PAPER.evolve(
        xbar={"rows": 32, "cols": 32},
        emulator={"sampling": {"n_g_matrices": 60, "n_v_per_g": 20},
                  "training": {"hidden": 256, "epochs": 180,
                               "patience": 50}}),
    "paper-64x64-variation": _PAPER.evolve(
        nonideality={"seed": 0,
                     "variation": {"sigma": 0.1},
                     "stuck": {"p_on": 0.01, "p_off": 0.01}}),
    "quick": _QUICK,
    "quick-exact": _QUICK.evolve(engine="exact"),
    "quick-analytical": _QUICK.evolve(engine="analytical"),
    "quick-mitigated": _QUICK.evolve(
        engine="analytical",
        nonideality={"seed": 5,
                     "variation": {"sigma": 0.3},
                     "stuck": {"p_on": 0.02, "p_off": 0.02}},
        mitigation={"noise": {"epochs": 8, "weight_sigma": 0.15},
                    "calibration": {"samples": 96}}),
}


def preset_names() -> list:
    """Sorted preset names (the CLI's ``spec --list``)."""
    return sorted(PRESETS)


def get_preset(name: str) -> EmulationSpec:
    """Resolve a preset by name.

    Unknown names list every available preset and, when the name is a
    near-miss (``"papr-64x64"``), single out the closest match — the
    error is the documentation at the moment a typo happens.
    """
    try:
        return PRESETS[name]
    except KeyError:
        close = difflib.get_close_matches(name, PRESETS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigError(
            f"unknown preset {name!r}{hint}; available presets: "
            f"{preset_names()}")
