"""Digital <-> analog mapping for crossbar operands.

Weight slices (integers) are mapped linearly onto the programmable
conductance window ``[g_off, g_on]``; input streams (integers) are mapped
linearly onto ``[0, v_supply]``. The inverse maps and the [0, 1]
normalisations used by GENIEx live here too, so every component of the stack
shares one definition of the mapping.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.xbar.config import CrossbarConfig


def _check_levels(levels, n_levels: int) -> np.ndarray:
    if n_levels < 2:
        raise ConfigError(f"n_levels must be >= 2, got {n_levels}")
    levels = np.asarray(levels)
    if np.any(levels < 0) or np.any(levels > n_levels - 1):
        raise ConfigError(
            f"levels must lie in [0, {n_levels - 1}]")
    return levels.astype(float)


def conductances_from_levels(levels, n_levels: int,
                             config: CrossbarConfig) -> np.ndarray:
    """Map integer levels ``0..n_levels-1`` linearly to ``[g_off, g_on]``."""
    levels = _check_levels(levels, n_levels)
    frac = levels / (n_levels - 1)
    return config.g_off_s + frac * (config.g_on_s - config.g_off_s)


def conductances_from_weights(weights01, config: CrossbarConfig) -> np.ndarray:
    """Map continuous weights in ``[0, 1]`` linearly to ``[g_off, g_on]``."""
    weights01 = np.asarray(weights01, dtype=float)
    if np.any(weights01 < 0) or np.any(weights01 > 1):
        raise ConfigError("weights01 must lie in [0, 1]")
    return config.g_off_s + weights01 * (config.g_on_s - config.g_off_s)


def weights_from_conductances(conductance_s, config: CrossbarConfig) -> np.ndarray:
    """Inverse of :func:`conductances_from_weights` (values in [0, 1])."""
    g = np.asarray(conductance_s, dtype=float)
    return (g - config.g_off_s) / (config.g_on_s - config.g_off_s)


def levels_from_conductances(conductance_s, n_levels: int,
                             config: CrossbarConfig) -> np.ndarray:
    """Nearest integer level for each conductance (inverse mapping)."""
    frac = weights_from_conductances(conductance_s, config)
    return np.clip(np.rint(frac * (n_levels - 1)), 0, n_levels - 1).astype(int)


def voltages_from_levels(levels, n_levels: int,
                         config: CrossbarConfig) -> np.ndarray:
    """Map integer input levels ``0..n_levels-1`` linearly to ``[0, Vsupply]``."""
    levels = _check_levels(levels, n_levels)
    return levels / (n_levels - 1) * config.v_supply_v


def normalize_voltages(voltages_v, config: CrossbarConfig) -> np.ndarray:
    """Scale voltages to [0, 1] by the supply voltage (GENIEx input norm)."""
    return np.asarray(voltages_v, dtype=float) / config.v_supply_v


def normalize_conductances(conductance_s, config: CrossbarConfig) -> np.ndarray:
    """Scale conductances to [0, 1] over the programmable window."""
    return weights_from_conductances(conductance_s, config)
