"""Crossbar abstraction: configuration, analog mapping, ideal MVM."""

from repro.xbar.config import CrossbarConfig
from repro.xbar.mapping import (
    conductances_from_levels,
    conductances_from_weights,
    levels_from_conductances,
    normalize_conductances,
    normalize_voltages,
    voltages_from_levels,
    weights_from_conductances,
)
from repro.xbar.ideal import ideal_mvm

__all__ = [
    "CrossbarConfig",
    "conductances_from_levels",
    "conductances_from_weights",
    "levels_from_conductances",
    "normalize_conductances",
    "normalize_voltages",
    "voltages_from_levels",
    "weights_from_conductances",
    "ideal_mvm",
]
