"""Crossbar configuration.

:class:`CrossbarConfig` bundles every design parameter the paper sweeps
(Table 3, "GENIEx" row): crossbar size, ON resistance, conductance ON/OFF
ratio, the three parasitic resistances, the RRAM device constants and the
supply voltage. Defaults are the paper's nominal values (Section 6):
``R_source = 500 Ohm``, ``R_sink = 100 Ohm``, ``R_wire = 2.5 Ohm`` per cell,
``d0 = 0.25 nm``, ``V0 = 0.25 V``, ``I0 = 0.1 mA``, 64x64 cells, ``R_on =
100 kOhm``, ON/OFF ratio 6, ``V_supply = 0.25 V``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace, asdict

from repro.devices.rram import RramParameters
from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CrossbarConfig:
    """All design and non-ideality parameters of one crossbar instance.

    Attributes:
        rows / cols: Crossbar dimensions (paper sweeps 16, 32, 64).
        r_on_ohm: LRS (ON) resistance; ``g_on = 1/r_on`` is the maximum
            programmable conductance (paper sweeps 50k, 100k, 300k Ohm).
        onoff_ratio: Conductance ON/OFF ratio ``g_on / g_off`` (paper sweeps
            2, 6, 10).
        r_source_ohm / r_sink_ohm: Driver and sense-path parasitics.
        r_wire_ohm: Metal-line resistance per cell segment.
        v_supply_v: Full-scale DAC output voltage applied to the word lines.
        rram: Fitting constants of the RRAM compact model.
        with_access_transistor: Include the series access transistor in the
            full (non-linear) simulation mode.
        access_r_on_ohm / access_v_ov_v: Transistor on-resistance and gate
            overdrive with the word line asserted.
        gmin_s: SPICE-style minimum conductance for numerical robustness.
        programming_v_ref_v: Reference voltage of the program-and-verify
            loop; 0 means small-signal programming.
    """

    rows: int = 64
    cols: int = 64
    r_on_ohm: float = 100e3
    onoff_ratio: float = 6.0
    r_source_ohm: float = 500.0
    r_sink_ohm: float = 100.0
    r_wire_ohm: float = 2.5
    v_supply_v: float = 0.25
    rram: RramParameters = field(default_factory=RramParameters)
    with_access_transistor: bool = True
    access_r_on_ohm: float = 5e3
    access_v_ov_v: float = 0.75
    gmin_s: float = 1e-9
    programming_v_ref_v: float = 0.0

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ConfigError(
                f"crossbar must have at least 1 row and 1 column, got "
                f"{self.rows}x{self.cols}")
        check_positive("r_on_ohm", self.r_on_ohm)
        if self.onoff_ratio <= 1.0:
            raise ConfigError(
                f"onoff_ratio must exceed 1, got {self.onoff_ratio}")
        check_positive("r_source_ohm", self.r_source_ohm)
        check_positive("r_sink_ohm", self.r_sink_ohm)
        if self.r_wire_ohm < 0:
            raise ConfigError(
                f"r_wire_ohm must be >= 0, got {self.r_wire_ohm}")
        check_positive("v_supply_v", self.v_supply_v)
        check_positive("access_r_on_ohm", self.access_r_on_ohm)
        check_positive("access_v_ov_v", self.access_v_ov_v)
        check_positive("gmin_s", self.gmin_s)
        if self.programming_v_ref_v < 0:
            raise ConfigError("programming_v_ref_v must be >= 0")

    @property
    def g_on_s(self) -> float:
        """Maximum programmable conductance (LRS), in Siemens."""
        return 1.0 / self.r_on_ohm

    @property
    def g_off_s(self) -> float:
        """Minimum programmable conductance (HRS), in Siemens."""
        return self.g_on_s / self.onoff_ratio

    @property
    def shape(self) -> tuple:
        return (self.rows, self.cols)

    def replace(self, **changes) -> "CrossbarConfig":
        """Return a copy with the given fields changed (dataclass replace)."""
        return replace(self, **changes)

    def cache_key(self) -> str:
        """Deterministic short hash identifying this configuration.

        Used by the GENIEx model zoo to key trained emulators on disk.
        """
        payload = repr(sorted(asdict(self).items(), key=lambda kv: kv[0]))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
