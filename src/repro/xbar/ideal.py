"""Ideal (non-ideality-free) analog MVM reference.

``I_j = sum_i V_i * G_ij`` — the textbook crossbar equation the paper uses as
the numerator of the distortion ratio ``fR = I_ideal / I_nonideal``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def ideal_mvm(voltages_v, conductance_s) -> np.ndarray:
    """Ideal crossbar output currents.

    Args:
        voltages_v: shape ``(rows,)`` or ``(batch, rows)`` word-line voltages.
        conductance_s: shape ``(rows, cols)`` conductance matrix.

    Returns:
        Bit-line currents of shape ``(cols,)`` or ``(batch, cols)``.
    """
    v = np.asarray(voltages_v, dtype=float)
    g = np.asarray(conductance_s, dtype=float)
    if g.ndim != 2:
        raise ShapeError(f"conductance_s must be 2-D, got shape {g.shape}")
    if v.ndim not in (1, 2) or v.shape[-1] != g.shape[0]:
        raise ShapeError(
            f"voltages_v last dimension must equal rows={g.shape[0]}, "
            f"got shape {v.shape}")
    return v @ g
