"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape or dimensionality."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical solver failed to converge."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used before being trained / fitted."""


class SerializationError(ReproError, RuntimeError):
    """A model or dataset artifact could not be saved or loaded."""
