"""Device-to-device variation and defect helpers (legacy functional API).

The variation models migrated to :mod:`repro.nonideal`, where they are
composable, seeded spec nodes wired through the whole stack (spec →
programming → runtime → serve). These free functions remain as the thin
ad-hoc API for perturbing a conductance matrix directly with an explicit
RNG — they delegate to the same transform implementations, so a given
``(values, rng state)`` pair produces identical results on either path.
"""

from __future__ import annotations

import numpy as np

from repro.nonideal.transforms import StuckSpec, VariationSpec
from repro.utils.rng import SeedLike, rng_from_seed


def apply_lognormal_variation(conductance_s, sigma: float,
                              rng: SeedLike = None,
                              g_min_s: float | None = None,
                              g_max_s: float | None = None) -> np.ndarray:
    """Multiply conductances by lognormal noise with log-std ``sigma``.

    The perturbed values are clipped back into ``[g_min_s, g_max_s]`` when
    bounds are given, mirroring program-and-verify write loops that cannot
    exceed the device's physical conductance range.
    """
    transform = VariationSpec(sigma=sigma)
    conductance_s = np.asarray(conductance_s, dtype=float)
    if transform.is_identity:
        return conductance_s.copy()
    return transform.apply(
        conductance_s, rng_from_seed(rng),
        g_min_s if g_min_s is not None else -np.inf,
        g_max_s if g_max_s is not None else np.inf)


def apply_stuck_faults(conductance_s, p_stuck_on: float, p_stuck_off: float,
                       g_on_s: float, g_off_s: float,
                       rng: SeedLike = None) -> np.ndarray:
    """Force a random subset of cells to the ON or OFF conductance.

    Stuck-at faults are drawn independently per cell; a cell can be selected
    by at most one fault type (ON takes precedence, matching the convention
    that a shorted filament dominates).
    """
    transform = StuckSpec(p_on=p_stuck_on, p_off=p_stuck_off)
    conductance_s = np.asarray(conductance_s, dtype=float)
    return transform.apply(conductance_s, rng_from_seed(rng),
                           g_min_s=g_off_s, g_max_s=g_on_s)
