"""Device-to-device variation and defect models.

The paper notes that non-ideality effects "get exacerbated further due to the
device variations". These helpers perturb a programmed conductance matrix the
way fabrication variation and hard faults would, and are used by the
variation-robustness tests and the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed


def apply_lognormal_variation(conductance_s, sigma: float, rng=None,
                              g_min_s: float | None = None,
                              g_max_s: float | None = None) -> np.ndarray:
    """Multiply conductances by lognormal noise with log-std ``sigma``.

    The perturbed values are clipped back into ``[g_min_s, g_max_s]`` when
    bounds are given, mirroring program-and-verify write loops that cannot
    exceed the device's physical conductance range.
    """
    if sigma < 0:
        raise ConfigError(f"sigma must be >= 0, got {sigma}")
    conductance_s = np.asarray(conductance_s, dtype=float)
    if sigma == 0:
        return conductance_s.copy()
    rng = rng_from_seed(rng)
    noisy = conductance_s * rng.lognormal(mean=0.0, sigma=sigma,
                                          size=conductance_s.shape)
    lo = g_min_s if g_min_s is not None else -np.inf
    hi = g_max_s if g_max_s is not None else np.inf
    return np.clip(noisy, lo, hi)


def apply_stuck_faults(conductance_s, p_stuck_on: float, p_stuck_off: float,
                       g_on_s: float, g_off_s: float, rng=None) -> np.ndarray:
    """Force a random subset of cells to the ON or OFF conductance.

    Stuck-at faults are drawn independently per cell; a cell can be selected
    by at most one fault type (ON takes precedence, matching the convention
    that a shorted filament dominates).
    """
    for name, p in (("p_stuck_on", p_stuck_on), ("p_stuck_off", p_stuck_off)):
        if not 0.0 <= p <= 1.0:
            raise ConfigError(f"{name} must lie in [0, 1], got {p}")
    if p_stuck_on + p_stuck_off > 1.0:
        raise ConfigError("p_stuck_on + p_stuck_off must not exceed 1")
    conductance_s = np.asarray(conductance_s, dtype=float)
    rng = rng_from_seed(rng)
    u = rng.random(conductance_s.shape)
    out = conductance_s.copy()
    out[u < p_stuck_on] = g_on_s
    out[(u >= p_stuck_on) & (u < p_stuck_on + p_stuck_off)] = g_off_s
    return out
