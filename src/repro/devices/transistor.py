"""Access-transistor model for 1T1R crossbar cells.

During MVM compute all word lines are activated, so the access transistor is
fully on and acts as a voltage-dependent series resistance. We model it with
the standard long-channel square law in the triode region,

    I = beta * (V_ov * V_ds - V_ds^2 / 2),      0 <= V_ds < V_ov
    I = beta * V_ov^2 / 2,                      V_ds >= V_ov (saturation)

made antisymmetric for negative drain-source voltage (pass-device
approximation), plus a GMIN-style minimum parallel conductance that keeps the
Newton Jacobian non-singular when the transistor saturates — the same trick
SPICE uses. The model is C^1 across the triode/saturation boundary.

This is the *non-linear, data-dependent* access-device effect the paper calls
out: the transistor's effective resistance rises with the voltage across it,
compressing large cell currents more than small ones.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import TwoTerminalDevice
from repro.utils.validation import check_positive


class AccessTransistor(TwoTerminalDevice):
    """Square-law on-state access transistor.

    Args:
        r_on_ohm: Small-signal on-resistance at V_ds = 0; beta is derived as
            ``1 / (r_on_ohm * v_ov_v)``. Typical values are a few kOhm for a
            65 nm minimum-width device.
        v_ov_v: Gate overdrive ``V_gs - V_th`` with the word line asserted.
        gmin_s: Minimum parallel conductance (SPICE GMIN), default 1e-9 S.
    """

    def __init__(self, r_on_ohm: float = 5e3, v_ov_v: float = 0.75,
                 gmin_s: float = 1e-9):
        check_positive("r_on_ohm", r_on_ohm)
        check_positive("v_ov_v", v_ov_v)
        check_positive("gmin_s", gmin_s)
        self.r_on_ohm = float(r_on_ohm)
        self.v_ov_v = float(v_ov_v)
        self.gmin_s = float(gmin_s)
        self.beta = 1.0 / (r_on_ohm * v_ov_v)

    def _core_current(self, vmag):
        vov = self.v_ov_v
        triode = self.beta * (vov * vmag - 0.5 * vmag ** 2)
        sat = self.beta * 0.5 * vov ** 2
        return np.where(vmag < vov, triode, sat)

    def _core_conductance(self, vmag):
        vov = self.v_ov_v
        return np.where(vmag < vov, self.beta * (vov - vmag), 0.0)

    def current(self, v):
        v = np.asarray(v, dtype=float)
        vmag = np.abs(v)
        return np.sign(v) * self._core_current(vmag) + self.gmin_s * v

    def conductance(self, v):
        v = np.asarray(v, dtype=float)
        return self._core_conductance(np.abs(v)) + self.gmin_s

    def small_signal_conductance(self):
        return self.beta * self.v_ov_v + self.gmin_s

    def __repr__(self):
        return (f"AccessTransistor(r_on_ohm={self.r_on_ohm}, "
                f"v_ov_v={self.v_ov_v}, gmin_s={self.gmin_s})")
