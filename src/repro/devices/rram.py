"""Filamentary RRAM compact model.

The paper adopts the compact model of Guan et al. (IEEE EDL 2012) in the form

    I(d, V) = I0 * exp(d / d0) * sinh(V / V0)

where ``d`` is the filament gap parameter and ``I0``, ``d0``, ``V0`` are
fitting constants (paper values: I0 = 0.1 mA, d0 = 0.25 nm, V0 = 0.25 V).
The ``sinh`` term is the data-dependent non-linearity GENIEx is built to
capture: the device conducts super-linearly at voltages comparable to V0.

Programming: a target conductance ``g`` is written by choosing the gap so the
device's *secant* conductance at the programming reference voltage matches
``g``. With reference voltage -> 0 this reduces to matching the small-signal
slope ``I0 * exp(d/d0) / V0 = g``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.base import TwoTerminalDevice
from repro.errors import ConfigError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RramParameters:
    """Fitting constants of the filamentary RRAM compact model.

    Attributes:
        i0_a: Pre-factor current ``I0`` in Amperes (paper: 0.1 mA).
        d0_nm: Gap scale ``d0`` in nanometres (paper: 0.25 nm).
        v0_v: Voltage scale ``V0`` in Volts (paper: 0.25 V).
    """

    i0_a: float = 1e-4
    d0_nm: float = 0.25
    v0_v: float = 0.25

    def __post_init__(self):
        check_positive("i0_a", self.i0_a)
        check_positive("d0_nm", self.d0_nm)
        check_positive("v0_v", self.v0_v)


class FilamentaryRram(TwoTerminalDevice):
    """Vectorised filamentary RRAM with per-cell gap parameters.

    The per-cell prefactor ``a = I0 * exp(d/d0)`` is precomputed so the hot
    path only evaluates ``a * sinh(V/V0)``.
    """

    def __init__(self, params: RramParameters, gap_nm):
        self.params = params
        self.gap_nm = np.asarray(gap_nm, dtype=float)
        self._prefactor_a = params.i0_a * np.exp(self.gap_nm / params.d0_nm)

    @classmethod
    def from_conductance(cls, conductance_s, params: RramParameters,
                         v_ref: float = 0.0) -> "FilamentaryRram":
        """Program devices so their conductance at ``v_ref`` equals the target.

        ``v_ref = 0`` matches the small-signal slope at zero bias. A non-zero
        ``v_ref`` matches the secant conductance ``I(v_ref)/v_ref`` instead,
        emulating a program-and-verify loop performed at read voltage.
        """
        conductance_s = np.asarray(conductance_s, dtype=float)
        if np.any(conductance_s <= 0):
            raise ConfigError("target conductances must be strictly positive")
        if v_ref < 0:
            raise ConfigError(f"v_ref must be >= 0, got {v_ref}")
        if v_ref == 0.0:
            prefactor = conductance_s * params.v0_v
        else:
            prefactor = conductance_s * v_ref / np.sinh(v_ref / params.v0_v)
        gap_nm = params.d0_nm * np.log(prefactor / params.i0_a)
        return cls(params, gap_nm)

    def current(self, v):
        v = np.asarray(v, dtype=float)
        return self._prefactor_a * np.sinh(v / self.params.v0_v)

    def conductance(self, v):
        v = np.asarray(v, dtype=float)
        return self._prefactor_a * np.cosh(v / self.params.v0_v) / self.params.v0_v

    def current_and_conductance(self, v):
        v = np.asarray(v, dtype=float)
        ratio = v / self.params.v0_v
        i = self._prefactor_a * np.sinh(ratio)
        g = self._prefactor_a * np.cosh(ratio) / self.params.v0_v
        return i, g

    def small_signal_conductance(self):
        return self._prefactor_a / self.params.v0_v

    def nonlinearity_gain(self, v):
        """Ratio of actual to small-signal-extrapolated current at ``v``.

        Equals ``sinh(v/V0) / (v/V0)``; 1 at v -> 0, grows super-linearly.
        Useful for quantifying how much the device departs from ohmic
        behaviour at a given operating voltage.
        """
        v = np.asarray(v, dtype=float)
        ratio = np.where(v == 0.0, 1e-300, v) / self.params.v0_v
        gain = np.sinh(ratio) / ratio
        return np.where(v == 0.0, 1.0, gain)

    def __repr__(self):
        return (f"FilamentaryRram(params={self.params!r}, "
                f"n_cells={self.gap_nm.size})")
