"""Series composition of two-terminal devices.

The 1T1R cell is an access transistor in series with an RRAM device. Rather
than carrying one extra circuit node per cell through the crossbar solver, we
reduce the stack to an *effective* two-terminal device: for a total cell
voltage ``v`` we solve the scalar current-continuity equation

    I_first(x) = I_second(v - x)

for the internal split ``x`` (voltage across the first device). Both device
currents are strictly increasing in their own voltage, so the residual
``f(x) = I_first(x) - I_second(v - x)`` is strictly increasing and has a
unique root bracketed by ``[min(0, v), max(0, v)]``. We run a vectorised,
bracket-safeguarded Newton iteration over all cells simultaneously; steps
that would leave the bracket fall back to bisection. This mirrors how SPICE
handles series non-linear elements, but without growing the outer system.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import TwoTerminalDevice
from repro.errors import ConvergenceError


class SeriesStack(TwoTerminalDevice):
    """Effective device for ``first`` in series with ``second``.

    The instance caches the last internal-node solution and reuses it as the
    warm start for the next call, which makes the outer crossbar Newton loop
    converge in very few inner iterations.
    """

    def __init__(self, first: TwoTerminalDevice, second: TwoTerminalDevice,
                 max_iter: int = 60, tol_a: float = 1e-15):
        self.first = first
        self.second = second
        self.max_iter = int(max_iter)
        self.tol_a = float(tol_a)
        self._warm_x = None

    def _solve_internal(self, v: np.ndarray) -> np.ndarray:
        """Solve I_first(x) = I_second(v - x) for each element of ``v``."""
        lo = np.minimum(0.0, v)
        hi = np.maximum(0.0, v)

        g1 = np.broadcast_to(self.first.small_signal_conductance(), v.shape)
        g2 = np.broadcast_to(self.second.small_signal_conductance(), v.shape)
        if self._warm_x is not None and self._warm_x.shape == v.shape:
            x = np.clip(self._warm_x, lo, hi)
        else:
            # Linear divider as initial guess: x = v * g2 / (g1 + g2).
            x = v * g2 / (g1 + g2)

        scale = np.maximum(np.abs(self.first.current(hi)), 1.0e-12)
        converged = False
        for _ in range(self.max_iter):
            i1, c1 = self.first.current_and_conductance(x)
            i2, c2 = self.second.current_and_conductance(v - x)
            f = i1 - i2
            if np.all(np.abs(f) <= self.tol_a + 1e-9 * scale):
                converged = True
                break
            deriv = c1 + c2
            step = f / np.maximum(deriv, 1e-30)
            x_new = x - step
            # Maintain the bracket: f is increasing in x, so the root lies
            # below x where f > 0 and above it where f < 0.
            hi = np.where(f > 0, np.minimum(hi, x), hi)
            lo = np.where(f < 0, np.maximum(lo, x), lo)
            outside = (x_new < lo) | (x_new > hi)
            x = np.where(outside, 0.5 * (lo + hi), x_new)
        if not converged:
            i1 = self.first.current(x)
            i2 = self.second.current(v - x)
            worst = float(np.max(np.abs(i1 - i2)))
            raise ConvergenceError(
                f"series internal-node solve did not converge "
                f"(max residual {worst:.3e} A after {self.max_iter} iters)")
        self._warm_x = x
        return x

    def current(self, v):
        return self.current_and_conductance(v)[0]

    def conductance(self, v):
        return self.current_and_conductance(v)[1]

    def current_and_conductance(self, v):
        v = np.asarray(v, dtype=float)
        scalar = v.ndim == 0
        v = np.atleast_1d(v)
        # Broadcast the voltage against per-cell device parameters so a
        # scalar bias can be applied to a whole vectorised stack.
        param_shape = np.broadcast_shapes(
            np.shape(self.first.small_signal_conductance()),
            np.shape(self.second.small_signal_conductance()))
        common = np.broadcast_shapes(v.shape, param_shape)
        v = np.broadcast_to(v, common).astype(float, copy=True)
        x = self._solve_internal(v)
        i, c1 = self.first.current_and_conductance(x)
        c2 = self.second.conductance(v - x)
        # Series combination of differential conductances.
        g = c1 * c2 / np.maximum(c1 + c2, 1e-30)
        if scalar:
            return i[0], g[0]
        return i, g

    def small_signal_conductance(self):
        g1 = self.first.small_signal_conductance()
        g2 = self.second.small_signal_conductance()
        return g1 * g2 / (g1 + g2)

    def __repr__(self):
        return f"SeriesStack(first={self.first!r}, second={self.second!r})"
