"""Device protocol and the trivial linear resistor.

A *device* here is a (possibly vectorised) two-terminal element: it maps an
array of terminal voltage differences to an array of currents, together with
the differential conductance ``dI/dV`` needed by Newton's method. Per-cell
parameters (for example the programmed RRAM gap) are bound into the device
instance as arrays that broadcast against the voltage argument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class TwoTerminalDevice(ABC):
    """Abstract two-terminal device with vectorised I(V) and dI/dV."""

    @abstractmethod
    def current(self, v) -> np.ndarray:
        """Current through the device for voltage difference ``v`` (array)."""

    @abstractmethod
    def conductance(self, v) -> np.ndarray:
        """Differential conductance ``dI/dV`` at voltage ``v`` (array)."""

    def current_and_conductance(self, v):
        """Return ``(I, dI/dV)`` in one call.

        Subclasses override this when the two quantities share intermediate
        results (e.g. the series stack solves its internal node only once).
        """
        return self.current(v), self.conductance(v)

    def small_signal_conductance(self) -> np.ndarray:
        """Conductance at zero bias; used to seed Newton's initial guess."""
        return self.conductance(np.zeros(1))[0] * np.ones_like(self.conductance(0.0))


class LinearResistor(TwoTerminalDevice):
    """Ideal ohmic element ``I = G * V``.

    ``conductance_s`` may be a scalar or an array of per-cell conductances in
    Siemens. Used both for parasitic elements and as the *linear* device model
    in the analytical-baseline simulation mode.
    """

    def __init__(self, conductance_s):
        conductance_s = np.asarray(conductance_s, dtype=float)
        if np.any(conductance_s < 0):
            raise ValueError("conductance_s must be non-negative")
        self.conductance_s = conductance_s

    def current(self, v):
        return self.conductance_s * np.asarray(v, dtype=float)

    def conductance(self, v):
        v = np.asarray(v, dtype=float)
        return np.broadcast_to(self.conductance_s, np.broadcast_shapes(
            self.conductance_s.shape, v.shape)).copy()

    def small_signal_conductance(self):
        return self.conductance_s

    def __repr__(self):
        return f"LinearResistor(conductance_s={self.conductance_s!r})"
