"""Two-terminal device models used inside the crossbar circuit simulator.

The cell stack at every crossbar junction is an access transistor in series
with a filamentary RRAM device, following the paper's setup (TSMC-65nm-class
access transistors, Guan-style RRAM compact model). All models are vectorised:
they evaluate currents and differential conductances for whole arrays of
device voltages at once, which is what makes the Newton solver in
:mod:`repro.circuit` fast enough to generate training data for GENIEx.
"""

from repro.devices.base import LinearResistor, TwoTerminalDevice
from repro.devices.rram import FilamentaryRram, RramParameters
from repro.devices.transistor import AccessTransistor
from repro.devices.series import SeriesStack
from repro.devices.variations import (
    apply_lognormal_variation,
    apply_stuck_faults,
)

__all__ = [
    "TwoTerminalDevice",
    "LinearResistor",
    "FilamentaryRram",
    "RramParameters",
    "AccessTransistor",
    "SeriesStack",
    "apply_lognormal_variation",
    "apply_stuck_faults",
]
