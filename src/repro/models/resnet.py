"""Scalable ResNet for small images (the paper's ResNet-20/18 stand-in).

The paper evaluates ResNet-20 (CIFAR-100) and ResNet-18 (ImageNet subset).
This module implements the CIFAR-style ResNet family — a 3x3 stem followed by
three stages of residual basic blocks with widths ``w, 2w, 4w`` and stride-2
transitions, global average pooling and a linear classifier. Depth
``6n + 2``: ``resnet8`` (n=1), ``resnet14`` (n=2), ``resnet20`` (n=3, the
paper's CIFAR-100 network). Width and input channels scale down for the
reduced procedural datasets (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.modules import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
)
from repro.utils.rng import spawn_rngs


class BasicBlock(Module):
    """Two 3x3 conv/BN pairs with an identity or 1x1-projected skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 seed=0):
        super().__init__()
        rngs = spawn_rngs(seed, 3)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, bias=False, seed=rngs[0])
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1,
                            bias=False, seed=rngs[1])
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.projection = Conv2d(in_channels, out_channels, 1,
                                     stride=stride, bias=False, seed=rngs[2])
            self.projection_bn = BatchNorm2d(out_channels)
        else:
            self.projection = None
            self.projection_bn = None

    def forward(self, x):
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.projection is not None:
            shortcut = self.projection_bn(self.projection(x))
        else:
            shortcut = x
        return F.relu(out + shortcut)


class ResNet(Module):
    """CIFAR-style residual network of depth ``6 * blocks_per_stage + 2``."""

    def __init__(self, blocks_per_stage: int, num_classes: int,
                 in_channels: int = 3, width: int = 16, seed=0):
        super().__init__()
        if blocks_per_stage < 1:
            raise ConfigError("blocks_per_stage must be >= 1")
        rngs = spawn_rngs(seed, 2 + 3 * blocks_per_stage)
        next_rng = iter(rngs)

        self.stem = Conv2d(in_channels, width, 3, padding=1, bias=False,
                           seed=next(next_rng))
        self.stem_bn = BatchNorm2d(width)

        stages = []
        channels = width
        for stage_index in range(3):
            out_channels = width * (2 ** stage_index)
            blocks = []
            for block_index in range(blocks_per_stage):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                blocks.append(BasicBlock(channels, out_channels,
                                         stride=stride, seed=next(next_rng)))
                channels = out_channels
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages

        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes, seed=next(next_rng))
        self.depth = 6 * blocks_per_stage + 2
        self.num_classes = num_classes

    def forward(self, x):
        out = F.relu(self.stem_bn(self.stem(x)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.classifier(out)

    def __repr__(self):
        return (f"ResNet(depth={self.depth}, classes={self.num_classes})")


def resnet8(num_classes: int, in_channels: int = 1, width: int = 8,
            seed=0) -> ResNet:
    """Depth-8 variant for the quick experiment profile."""
    return ResNet(1, num_classes, in_channels=in_channels, width=width,
                  seed=seed)


def resnet14(num_classes: int, in_channels: int = 1, width: int = 8,
             seed=0) -> ResNet:
    """Depth-14 variant."""
    return ResNet(2, num_classes, in_channels=in_channels, width=width,
                  seed=seed)


def resnet20(num_classes: int, in_channels: int = 3, width: int = 16,
             seed=0) -> ResNet:
    """The paper's CIFAR-100 architecture (depth 20)."""
    return ResNet(3, num_classes, in_channels=in_channels, width=width,
                  seed=seed)
