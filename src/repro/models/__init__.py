"""Reference network architectures for the accuracy experiments."""

from repro.models.mlp import MLP
from repro.models.lenet import LeNet
from repro.models.resnet import BasicBlock, ResNet, resnet8, resnet14, resnet20

__all__ = [
    "MLP",
    "LeNet",
    "BasicBlock",
    "ResNet",
    "resnet8",
    "resnet14",
    "resnet20",
]
