"""Configurable multi-layer perceptron."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.modules import Linear, Module, ReLU, Sequential
from repro.utils.rng import spawn_rngs


class MLP(Module):
    """Fully connected ReLU network.

    Args:
        sizes: Layer widths including input and output, e.g.
            ``(64, 128, 10)``.
        seed: Weight-init seed.
    """

    def __init__(self, sizes, seed=0):
        super().__init__()
        sizes = tuple(int(s) for s in sizes)
        if len(sizes) < 2:
            raise ConfigError("MLP needs at least input and output sizes")
        rngs = spawn_rngs(seed, len(sizes) - 1)
        layers = []
        for k in range(len(sizes) - 1):
            layers.append(Linear(sizes[k], sizes[k + 1], seed=rngs[k]))
            if k < len(sizes) - 2:
                layers.append(ReLU())
        self.body = Sequential(*layers)
        self.sizes = sizes

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.body(x)

    def __repr__(self):
        return f"MLP(sizes={self.sizes})"
