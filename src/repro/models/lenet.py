"""LeNet-style small CNN baseline."""

from __future__ import annotations

from repro.nn.modules import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.imops import conv2d_output_shape
from repro.utils.rng import spawn_rngs


class LeNet(Module):
    """conv-pool-conv-pool-fc classifier for small images.

    Args:
        in_channels: Input image channels.
        num_classes: Output classes.
        image_size: Input spatial size (square); used to size the classifier.
        width: Channels of the first conv stage (second stage doubles it).
    """

    def __init__(self, in_channels: int = 1, num_classes: int = 10,
                 image_size: int = 12, width: int = 8, seed=0):
        super().__init__()
        rngs = spawn_rngs(seed, 3)
        c1, c2 = width, 2 * width
        h1, _ = conv2d_output_shape(image_size, image_size, (3, 3), (1, 1),
                                    (1, 1))
        h1 //= 2  # pool
        h2, _ = conv2d_output_shape(h1, h1, (3, 3), (1, 1), (1, 1))
        h2 //= 2  # pool
        self.features = Sequential(
            Conv2d(in_channels, c1, 3, padding=1, seed=rngs[0]),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, 3, padding=1, seed=rngs[1]),
            ReLU(),
            MaxPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(c2 * h2 * h2, num_classes, seed=rngs[2]),
        )
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))
