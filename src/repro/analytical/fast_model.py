"""Cheaper analytical approximations, for the ablation studies.

Two classic approximations from the mitigation literature are provided so the
benchmark harness can quantify the fidelity/cost trade-off against the exact
linear solve and against GENIEx:

* :class:`DecoupledIrDropModel` — first-order Born-style approximation: cell
  currents are estimated from the ideal operating point, the resulting IR
  drops along each word line and bit line are accumulated independently, and
  cell currents are re-evaluated at the corrected voltages. Optionally
  iterated to a fixed point.
* :class:`ScalarAlphaModel` — the crudest useful model: a single calibrated
  scalar ``alpha`` such that ``I_nonideal ~= alpha * I_ideal`` (cf.
  technology-aware-training style column-scaling corrections).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.utils.validation import check_matrix
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm


class DecoupledIrDropModel:
    """Row/column-decoupled IR-drop estimate of non-ideal currents.

    ``n_sweeps`` fixed-point refinements re-estimate the drops from the
    previously corrected cell currents; one sweep is the classic first-order
    model, and 2-3 sweeps close most of the gap to the exact linear solve at
    a fraction of its cost (no sparse factorisation).
    """

    name = "analytical-decoupled"

    def __init__(self, config: CrossbarConfig, n_sweeps: int = 2):
        if n_sweeps < 1:
            raise ValueError(f"n_sweeps must be >= 1, got {n_sweeps}")
        self.config = config
        self.n_sweeps = int(n_sweeps)

    def predict_currents(self, voltages_v, conductance_s) -> np.ndarray:
        g = check_matrix("conductance_s", conductance_s, self.config.shape)
        v_in = np.asarray(voltages_v, dtype=float)
        squeeze = v_in.ndim == 1
        v_in = np.atleast_2d(v_in)  # (B, rows)
        cfg = self.config

        # Cell currents at the ideal operating point: (B, rows, cols).
        i_cell = v_in[:, :, None] * g[None, :, :]
        for _ in range(self.n_sweeps):
            # Word line i: segment before column j carries the sum of cell
            # currents at columns >= j; the source resistor carries them all.
            row_total = i_cell.sum(axis=2)  # (B, rows)
            downstream = (i_cell[:, :, ::-1].cumsum(axis=2))[:, :, ::-1]
            wire_drop_row = cfg.r_wire_ohm * np.cumsum(downstream, axis=2)
            v_row = (v_in - cfg.r_source_ohm * row_total)[:, :, None] \
                - wire_drop_row
            # Bit line j: segment below row i carries cell currents from
            # rows <= i; the sink resistor carries the column total.
            col_total = i_cell.sum(axis=1)  # (B, cols)
            upstream = np.cumsum(i_cell, axis=1)
            # Potential of the bit-line rail at row i: sink drop plus the
            # wire drops of the segments between row i and the sink.
            segs_below = (upstream[:, ::-1, :].cumsum(axis=1))[:, ::-1, :]
            v_col = cfg.r_sink_ohm * col_total[:, None, :] \
                + cfg.r_wire_ohm * segs_below
            i_cell = np.clip(v_row - v_col, 0.0, None) * g[None, :, :]
        out = i_cell.sum(axis=1)
        return out[0] if squeeze else out

    def predict_currents_batch(self, voltages_v, conductance_s) -> np.ndarray:
        """Batched prediction, always shaped ``(batch, cols)``.

        The sweeps are fully vectorised over the batch dimension (one set of
        cumulative-sum passes for all vectors), so cost grows sub-linearly
        with batch size; ``batch = 0`` returns an empty array.
        """
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        return self.predict_currents(voltages_v, conductance_s)


class ScalarAlphaModel:
    """Single-scalar degradation model ``I_nonideal ~= alpha * I_ideal``."""

    name = "analytical-alpha"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self.alpha = None

    def fit(self, voltages_v, conductance_s, currents_a) -> "ScalarAlphaModel":
        """Calibrate alpha by least squares on reference (V, G, I) samples."""
        i_ideal = ideal_mvm(voltages_v, conductance_s).ravel()
        i_ref = np.asarray(currents_a, dtype=float).ravel()
        denom = float(i_ideal @ i_ideal)
        if denom == 0.0:
            raise ValueError("calibration samples have all-zero ideal currents")
        self.alpha = float(i_ideal @ i_ref) / denom
        return self

    def predict_currents(self, voltages_v, conductance_s) -> np.ndarray:
        if self.alpha is None:
            raise NotFittedError("ScalarAlphaModel.fit must be called first")
        return self.alpha * ideal_mvm(voltages_v, conductance_s)

    def predict_currents_batch(self, voltages_v, conductance_s) -> np.ndarray:
        """Batched prediction, always shaped ``(batch, cols)``."""
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        return self.predict_currents(voltages_v, conductance_s)
