"""The paper's analytical baseline: exact linear parasitic model.

Jain et al. (CxDNN) model crossbar parasitics by solving the linear resistive
network with matrix-inversion techniques. That is exactly the ``linear`` mode
of our circuit simulator, so this class is a thin, intention-revealing
wrapper: it predicts non-ideal output currents under the assumption that
every cell is a perfect ohmic conductance — i.e. it knows about IR drops but
not about the transistor/RRAM non-linearities.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm


class AnalyticalLinearModel:
    """Linear-non-ideality-only crossbar model (the paper's baseline)."""

    name = "analytical-linear"

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self._solver = LinearCrossbarSolver(config)

    def predict_currents(self, voltages_v, conductance_s) -> np.ndarray:
        """Non-ideal bit-line currents for a vector or batch of inputs."""
        return self._solver.solve(voltages_v, conductance_s)

    def predict_currents_batch(self, voltages_v, conductance_s) -> np.ndarray:
        """Batched prediction, always shaped ``(batch, cols)``.

        One cached LU factorisation of the parasitic network answers the
        whole batch via multi-RHS back-substitution.
        """
        return self._solver.solve_batch(voltages_v, conductance_s)

    def predict_ratio(self, voltages_v, conductance_s,
                      eps_a: float = 1e-18) -> np.ndarray:
        """Predicted distortion ratio fR = I_ideal / I_nonideal."""
        i_ideal = ideal_mvm(voltages_v, conductance_s)
        i_pred = self.predict_currents(voltages_v, conductance_s)
        safe = np.where(np.abs(i_pred) > eps_a, i_pred, np.inf)
        return np.where(np.abs(i_pred) > eps_a, i_ideal / safe, 1.0)
