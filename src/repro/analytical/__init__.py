"""Analytical (non-data-dependent) crossbar models.

These capture only the *linear* non-idealities — parasitic source, sink and
wire resistances — exactly like the baseline the paper compares GENIEx
against. They cannot represent the data-dependent access-transistor and RRAM
I-V effects, which is precisely the modelling gap GENIEx closes.
"""

from repro.analytical.linear_model import AnalyticalLinearModel
from repro.analytical.fast_model import DecoupledIrDropModel, ScalarAlphaModel

__all__ = [
    "AnalyticalLinearModel",
    "DecoupledIrDropModel",
    "ScalarAlphaModel",
]
