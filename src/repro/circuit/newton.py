"""Damped Newton-Raphson for sparse nonlinear nodal systems.

The solver accepts a callback returning the residual vector and the sparse
Jacobian at the current iterate and performs Newton steps with a backtracking
(Armijo-style) line search on the infinity norm of the residual. This is the
same class of algorithm a SPICE DC operating-point analysis uses, minus the
continuation heuristics, which the mild non-linearities of on-state 1T1R
cells do not require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import splu

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class NewtonOptions:
    """Termination and damping controls for :func:`solve_newton`.

    Attributes:
        max_iter: Maximum number of Newton iterations.
        tol_residual: Absolute convergence threshold on ``max(|F(x)|)``. For
            nodal analysis F is a current residual in Amperes; the default of
            1e-12 A is ~1e-6 relative to the micro-ampere cell currents.
        tol_relative: Additional tolerance proportional to the caller-supplied
            problem scale (largest source current); guards against demanding
            more accuracy than float64 LU can deliver on badly scaled systems.
        max_backtracks: Number of step halvings tried by the line search.
        raise_on_failure: Raise :class:`ConvergenceError` when not converged
            (otherwise return the best iterate with ``converged=False``).
    """

    max_iter: int = 60
    tol_residual: float = 1e-12
    tol_relative: float = 1e-12
    max_backtracks: int = 12
    raise_on_failure: bool = True


@dataclass
class NewtonResult:
    """Outcome of a Newton solve."""

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


def solve_newton(residual_and_jacobian, x0: np.ndarray,
                 options: NewtonOptions | None = None,
                 scale: float = 0.0) -> NewtonResult:
    """Solve ``F(x) = 0`` by damped Newton iteration.

    Args:
        residual_and_jacobian: Callable ``x -> (F, J)`` with ``F`` a dense
            vector and ``J`` a scipy sparse matrix in a format convertible
            to CSC.
        x0: Initial iterate (a good linearised guess matters; the crossbar
            simulator seeds with the small-signal linear solution).
        options: See :class:`NewtonOptions`.
        scale: Characteristic magnitude of the residual entries (e.g. the
            largest source current); multiplied by ``tol_relative`` and added
            to the absolute tolerance.

    Returns:
        :class:`NewtonResult` with the final iterate and statistics.
    """
    opts = options or NewtonOptions()
    tol = opts.tol_residual + opts.tol_relative * abs(scale)
    x = np.array(x0, dtype=float, copy=True)
    f, jac = residual_and_jacobian(x)
    norm = float(np.max(np.abs(f))) if f.size else 0.0
    stalled = 0

    for iteration in range(1, opts.max_iter + 1):
        if norm <= tol:
            return NewtonResult(x, iteration - 1, norm, True)
        lu = splu(jac.tocsc())
        step = lu.solve(-f)

        # Backtracking line search on the residual infinity norm.
        t = 1.0
        best = None
        for _ in range(opts.max_backtracks + 1):
            x_try = x + t * step
            f_try, jac_try = residual_and_jacobian(x_try)
            norm_try = float(np.max(np.abs(f_try)))
            if best is None or norm_try < best[0]:
                best = (norm_try, x_try, f_try, jac_try)
            if norm_try <= (1.0 - 1e-4 * t) * norm:
                break
            t *= 0.5
        # Stop early when the residual has hit the float64 floor for this
        # system: three consecutive iterations without meaningful progress.
        stalled = stalled + 1 if best[0] > 0.999 * norm else 0
        norm, x, f, jac = best
        if stalled >= 3:
            break

    if norm <= tol:
        return NewtonResult(x, opts.max_iter, norm, True)
    if opts.raise_on_failure:
        raise ConvergenceError(
            f"Newton failed to converge: residual {norm:.3e} A after "
            f"{opts.max_iter} iterations (tol {tol:.1e} A)")
    return NewtonResult(x, opts.max_iter, norm, False)
