"""Damped Newton-Raphson for sparse nonlinear nodal systems.

The solver accepts a callback returning the residual vector and the sparse
Jacobian at the current iterate and performs Newton steps with a backtracking
(Armijo-style) line search on the infinity norm of the residual. This is the
same class of algorithm a SPICE DC operating-point analysis uses, minus the
continuation heuristics, which the mild non-linearities of on-state 1T1R
cells do not require.

Two drivers share the algorithm:

* :func:`solve_newton` — one system, residual and Jacobian from one callback.
* :func:`solve_newton_batch` — B independent systems iterated
  *simultaneously* with a per-system convergence mask. Residual evaluation
  (the device-model-heavy part) is vectorised across the whole batch, the
  line search shrinks its working set as systems accept their steps, and
  converged or stalled systems drop out of subsequent iterations entirely.
  Only the per-system sparse LU factorisation remains sequential, because
  each system has its own Jacobian values (the sparsity pattern is shared).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import splu

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class NewtonOptions:
    """Termination and damping controls for :func:`solve_newton`.

    Attributes:
        max_iter: Maximum number of Newton iterations.
        tol_residual: Absolute convergence threshold on ``max(|F(x)|)``. For
            nodal analysis F is a current residual in Amperes; the default of
            1e-12 A is ~1e-6 relative to the micro-ampere cell currents.
        tol_relative: Additional tolerance proportional to the caller-supplied
            problem scale (largest source current); guards against demanding
            more accuracy than float64 LU can deliver on badly scaled systems.
        max_backtracks: Number of step halvings tried by the line search.
        raise_on_failure: Raise :class:`ConvergenceError` when not converged
            (otherwise return the best iterate with ``converged=False``).
    """

    max_iter: int = 60
    tol_residual: float = 1e-12
    tol_relative: float = 1e-12
    max_backtracks: int = 12
    raise_on_failure: bool = True


@dataclass
class NewtonResult:
    """Outcome of a Newton solve."""

    x: np.ndarray
    iterations: int
    residual: float
    converged: bool


@dataclass
class NewtonBatchResult:
    """Outcome of a batched Newton solve over B independent systems.

    Attributes:
        x: Final iterates, shape ``(B, n)``.
        iterations: Newton steps taken per system, shape ``(B,)``.
        residual: Final residual infinity norms, shape ``(B,)``.
        converged: Per-system convergence flags, shape ``(B,)``.
    """

    x: np.ndarray
    iterations: np.ndarray
    residual: np.ndarray
    converged: np.ndarray


def solve_newton(residual_and_jacobian, x0: np.ndarray,
                 options: NewtonOptions | None = None,
                 scale: float = 0.0) -> NewtonResult:
    """Solve ``F(x) = 0`` by damped Newton iteration.

    Args:
        residual_and_jacobian: Callable ``x -> (F, J)`` with ``F`` a dense
            vector and ``J`` a scipy sparse matrix in a format convertible
            to CSC.
        x0: Initial iterate (a good linearised guess matters; the crossbar
            simulator seeds with the small-signal linear solution).
        options: See :class:`NewtonOptions`.
        scale: Characteristic magnitude of the residual entries (e.g. the
            largest source current); multiplied by ``tol_relative`` and added
            to the absolute tolerance.

    Returns:
        :class:`NewtonResult` with the final iterate and statistics.
    """
    opts = options or NewtonOptions()
    tol = opts.tol_residual + opts.tol_relative * abs(scale)
    x = np.array(x0, dtype=float, copy=True)
    f, jac = residual_and_jacobian(x)
    norm = float(np.max(np.abs(f))) if f.size else 0.0
    stalled = 0

    for iteration in range(1, opts.max_iter + 1):
        if norm <= tol:
            return NewtonResult(x, iteration - 1, norm, True)
        lu = splu(jac.tocsc())
        step = lu.solve(-f)

        # Backtracking line search on the residual infinity norm.
        t = 1.0
        best = None
        for _ in range(opts.max_backtracks + 1):
            x_try = x + t * step
            f_try, jac_try = residual_and_jacobian(x_try)
            norm_try = float(np.max(np.abs(f_try)))
            if best is None or norm_try < best[0]:
                best = (norm_try, x_try, f_try, jac_try)
            if norm_try <= (1.0 - 1e-4 * t) * norm:
                break
            t *= 0.5
        # Stop early when the residual has hit the float64 floor for this
        # system: three consecutive iterations without meaningful progress.
        stalled = stalled + 1 if best[0] > 0.999 * norm else 0
        norm, x, f, jac = best
        if stalled >= 3:
            break

    if norm <= tol:
        return NewtonResult(x, opts.max_iter, norm, True)
    if opts.raise_on_failure:
        raise ConvergenceError(
            f"Newton failed to converge: residual {norm:.3e} A after "
            f"{opts.max_iter} iterations (tol {tol:.1e} A)")
    return NewtonResult(x, opts.max_iter, norm, False)


def solve_newton_batch(residual_batch, jacobian_batch, x0: np.ndarray,
                       options: NewtonOptions | None = None,
                       scale=0.0) -> NewtonBatchResult:
    """Solve B independent systems ``F_k(x_k) = 0`` simultaneously.

    The iteration is algorithmically identical to :func:`solve_newton`
    applied per system (same step, damping rule and stall detection), so the
    two agree to solver tolerance; the batched form exists because residual
    evaluation vectorises across systems and converged systems stop paying
    for further iterations.

    Args:
        residual_batch: Callable ``(x, idx) -> F`` mapping iterates of shape
            ``(M, n)`` for the systems listed in ``idx`` (an int array of
            original batch positions, used to select per-system constants
            such as RHS vectors) to residuals of shape ``(M, n)``.
        jacobian_batch: Callable ``(x, idx) -> iterable of M sparse
            matrices`` (each convertible to CSC) — the Jacobians at the
            given iterates. Only called at accepted iterates, never inside
            the line search.
        x0: Initial iterates, shape ``(B, n)``; the crossbar simulator seeds
            with the batched linear solution. ``B = 0`` is allowed and
            returns immediately.
        options: See :class:`NewtonOptions`.
        scale: Characteristic residual magnitude, scalar or shape ``(B,)``.

    Returns:
        :class:`NewtonBatchResult` with per-system iterates and statistics.
    """
    opts = options or NewtonOptions()
    x = np.array(x0, dtype=float, copy=True)
    if x.ndim != 2:
        raise ValueError(f"x0 must have shape (B, n), got {x.shape}")
    n_sys, n = x.shape
    tol = opts.tol_residual + opts.tol_relative * np.abs(
        np.broadcast_to(np.asarray(scale, dtype=float), (n_sys,)))
    if n_sys == 0:
        return NewtonBatchResult(x, np.zeros(0, dtype=int), np.zeros(0),
                                 np.ones(0, dtype=bool))

    f = np.asarray(residual_batch(x, np.arange(n_sys)), dtype=float)
    norm = np.max(np.abs(f), axis=1)
    stalled = np.zeros(n_sys, dtype=int)
    iterations = np.zeros(n_sys, dtype=int)
    converged = norm <= tol
    active = ~converged

    for _ in range(opts.max_iter):
        if not active.any():
            break
        idx = np.nonzero(active)[0]
        step = np.empty((idx.size, n))
        for j, jac in enumerate(jacobian_batch(x[idx], idx)):
            step[j] = splu(jac.tocsc()).solve(-f[idx[j]])

        # Backtracking line search with a per-system step length; systems
        # leave the working set as soon as their Armijo condition holds.
        t = np.ones(idx.size)
        searching = np.ones(idx.size, dtype=bool)
        base_norm = norm[idx]
        best_norm = np.full(idx.size, np.inf)
        best_x = np.empty((idx.size, n))
        best_f = np.empty((idx.size, n))
        has_best = np.zeros(idx.size, dtype=bool)
        for _backtrack in range(opts.max_backtracks + 1):
            sub = np.nonzero(searching)[0]
            x_try = x[idx[sub]] + t[sub, None] * step[sub]
            f_try = np.asarray(residual_batch(x_try, idx[sub]), dtype=float)
            norm_try = np.max(np.abs(f_try), axis=1)
            # A system's first trial is always kept (even a NaN residual,
            # matching solve_newton's `best is None` rule) so the iterate
            # update below never reads uninitialised storage.
            improved = ~has_best[sub] | (norm_try < best_norm[sub])
            has_best[sub] = True
            upd = sub[improved]
            best_norm[upd] = norm_try[improved]
            best_x[upd] = x_try[improved]
            best_f[upd] = f_try[improved]
            accepted = norm_try <= (1.0 - 1e-4 * t[sub]) * base_norm[sub]
            searching[sub[accepted]] = False
            t[sub[~accepted]] *= 0.5
            if not searching.any():
                break

        stalled[idx] = np.where(best_norm > 0.999 * base_norm,
                                stalled[idx] + 1, 0)
        x[idx] = best_x
        f[idx] = best_f
        norm[idx] = best_norm
        iterations[idx] += 1
        now_converged = norm[idx] <= tol[idx]
        converged[idx] |= now_converged
        active[idx] = ~now_converged & (stalled[idx] < 3)

    if opts.raise_on_failure and not converged.all():
        n_bad = int(np.count_nonzero(~converged))
        worst = float(norm[~converged].max())
        raise ConvergenceError(
            f"Newton failed to converge on {n_bad}/{n_sys} batched systems: "
            f"worst residual {worst:.3e} A (tol {tol.max():.1e} A)")
    return NewtonBatchResult(x, iterations, norm, converged)
