"""Exact linear solve of the parasitic crossbar with ohmic cells.

With every cell reduced to a fixed conductance the nodal system is linear, so
a single sparse LU factorisation per conductance matrix answers any number of
input-voltage vectors. This is simultaneously:

* the *linear simulation mode* of the circuit simulator ("case (i): only
  linear non-idealities" in the paper's Section 3 analysis), and
* the paper's *analytical baseline model* (matrix-inversion modelling of
  parasitic resistances, cf. Jain et al., CxDNN), wrapped with a friendlier
  API in :mod:`repro.analytical.linear_model`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.utils.validation import check_matrix
from repro.xbar.config import CrossbarConfig
from repro.circuit.topology import CrossbarTopology


class LinearCrossbarSolver:
    """Sparse direct solver for the linear parasitic crossbar."""

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self.topology = CrossbarTopology(config)

    def system_matrix(self, conductance_s: np.ndarray) -> sparse.csc_matrix:
        """Nodal matrix with the given ohmic cell conductances stamped in."""
        topo = self.topology
        g = np.asarray(conductance_s, dtype=float).ravel()
        an, bn = topo.cell_row_nodes, topo.cell_col_nodes
        rows = np.concatenate([topo.parasitic_rows, an, bn, an, bn])
        cols = np.concatenate([topo.parasitic_cols, an, bn, bn, an])
        vals = np.concatenate([topo.parasitic_vals, g, g, -g, -g])
        shape = (topo.n_nodes, topo.n_nodes)
        return sparse.coo_matrix((vals, (rows, cols)), shape=shape).tocsc()

    def solve_node_voltages(self, voltages_v, conductance_s) -> np.ndarray:
        """Full nodal solution; accepts a single vector or a batch.

        Returns shape ``(n_nodes,)`` for 1-D input or ``(batch, n_nodes)``
        for 2-D input. The factorisation is shared across the batch.
        """
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        voltages_v = np.asarray(voltages_v, dtype=float)
        lu = splu(self.system_matrix(conductance_s))
        rhs = self.topology.rhs_for_inputs(voltages_v)
        if rhs.ndim == 1:
            return lu.solve(rhs)
        # splu solves column-wise: stack the batch as columns.
        return lu.solve(rhs.T).T

    def solve(self, voltages_v, conductance_s) -> np.ndarray:
        """Bit-line output currents for one voltage vector or a batch."""
        node_v = self.solve_node_voltages(voltages_v, conductance_s)
        return self.topology.output_currents(node_v)

    def transfer_matrix(self, conductance_s) -> np.ndarray:
        """The linear map ``I = V @ T`` of the parasitic network.

        Because the network is linear, solving one unit-voltage problem per
        input row yields a ``(rows, cols)`` transfer matrix ``T`` that
        answers any number of input vectors with a plain matmul — this is
        the "matrix inversion" formulation of the analytical baseline
        (CxDNN) and what makes the analytical MVM engine fast.
        """
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        topo = self.topology
        lu = splu(self.system_matrix(conductance_s))
        rhs = np.zeros((topo.n_nodes, self.config.rows))
        rhs[topo.source_nodes, np.arange(self.config.rows)] = \
            topo.g_source_s
        node_v = lu.solve(rhs)  # (n_nodes, rows)
        return (topo.g_sink_s * node_v[topo.sink_nodes, :]).T
