"""Exact linear solve of the parasitic crossbar with ohmic cells.

With every cell reduced to a fixed conductance the nodal system is linear, so
a single sparse LU factorisation per conductance matrix answers any number of
input-voltage vectors. This is simultaneously:

* the *linear simulation mode* of the circuit simulator ("case (i): only
  linear non-idealities" in the paper's Section 3 analysis), and
* the paper's *analytical baseline model* (matrix-inversion modelling of
  parasitic resistances, cf. Jain et al., CxDNN), wrapped with a friendlier
  API in :mod:`repro.analytical.linear_model`.

The factorisation is memoised per conductance matrix (a small LRU keyed by
the matrix bytes), so repeated solves against the same programmed crossbar —
the access pattern of both dataset generation and the functional simulator —
pay the LU cost once and back-substitute whole voltage batches afterwards.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.utils.cache import LruDict
from repro.utils.validation import check_matrix
from repro.xbar.config import CrossbarConfig
from repro.circuit.topology import CrossbarTopology


class LinearCrossbarSolver:
    """Sparse direct solver for the linear parasitic crossbar.

    ``lu_cache_size`` bounds the number of retained LU factorisations;
    each cache entry is keyed by the conductance matrix *values*, so a hit
    is always numerically exact.
    """

    def __init__(self, config: CrossbarConfig, lu_cache_size: int = 8):
        self.config = config
        self.topology = CrossbarTopology(config)
        self._lu_cache = LruDict(lu_cache_size)

    @property
    def lu_cache_size(self) -> int:
        return self._lu_cache.max_entries

    @lu_cache_size.setter
    def lu_cache_size(self, n: int) -> None:
        self._lu_cache.max_entries = int(n)

    def system_matrix(self, conductance_s: np.ndarray) -> sparse.csc_matrix:
        """Nodal matrix with the given ohmic cell conductances stamped in."""
        topo = self.topology
        g = np.asarray(conductance_s, dtype=float).ravel()
        an, bn = topo.cell_row_nodes, topo.cell_col_nodes
        rows = np.concatenate([topo.parasitic_rows, an, bn, an, bn])
        cols = np.concatenate([topo.parasitic_cols, an, bn, bn, an])
        vals = np.concatenate([topo.parasitic_vals, g, g, -g, -g])
        shape = (topo.n_nodes, topo.n_nodes)
        return sparse.coo_matrix((vals, (rows, cols)), shape=shape).tocsc()

    def factorization(self, conductance_s):
        """Cached sparse LU of the nodal system for this conductance matrix.

        The cache is an LRU of ``lu_cache_size`` factorisations keyed by the
        matrix bytes; every distinct programmed crossbar is factorised once
        and all subsequent (batched) solves reuse the factors.
        """
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        key = conductance_s.tobytes()
        lu = self._lu_cache.get(key)
        if lu is None:
            lu = splu(self.system_matrix(conductance_s))
            self._lu_cache.put(key, lu)
        return lu

    def solve_node_voltages(self, voltages_v, conductance_s) -> np.ndarray:
        """Full nodal solution; accepts a single vector or a batch.

        Returns shape ``(n_nodes,)`` for 1-D input or ``(batch, n_nodes)``
        for 2-D input (including ``batch = 0``). The cached factorisation is
        shared across the batch: one LU, one multi-RHS back-substitution.
        """
        voltages_v = np.asarray(voltages_v, dtype=float)
        rhs = self.topology.rhs_for_inputs(voltages_v)
        if rhs.ndim == 2 and rhs.shape[0] == 0:
            # Still validate G so an empty batch raises the same errors a
            # non-empty one would (no factorisation is needed, though).
            check_matrix("conductance_s", conductance_s, self.config.shape)
            return np.zeros_like(rhs)
        lu = self.factorization(conductance_s)
        if rhs.ndim == 1:
            return lu.solve(rhs)
        # splu solves column-wise: stack the batch as columns.
        return lu.solve(rhs.T).T

    def solve(self, voltages_v, conductance_s) -> np.ndarray:
        """Bit-line output currents for one voltage vector or a batch."""
        node_v = self.solve_node_voltages(voltages_v, conductance_s)
        return self.topology.output_currents(node_v)

    def solve_batch(self, voltages_v, conductance_s) -> np.ndarray:
        """Batched bit-line currents, always shaped ``(batch, cols)``.

        Accepts ``(rows,)`` or ``(batch, rows)`` voltages (``batch = 0``
        included); one cached factorisation answers the whole batch.
        """
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        return self.solve(voltages_v, conductance_s)

    def transfer_matrix(self, conductance_s) -> np.ndarray:
        """The linear map ``I = V @ T`` of the parasitic network.

        Because the network is linear, solving one unit-voltage problem per
        input row yields a ``(rows, cols)`` transfer matrix ``T`` that
        answers any number of input vectors with a plain matmul — this is
        the "matrix inversion" formulation of the analytical baseline
        (CxDNN) and what makes the analytical MVM engine fast.

        The factorisation is deliberately *not* cached: callers keep the
        transfer matrix, not the LU, so inserting these one-shot factors
        would only evict entries the repeated-solve paths still reuse.
        """
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        topo = self.topology
        lu = splu(self.system_matrix(conductance_s))
        rhs = np.zeros((topo.n_nodes, self.config.rows))
        rhs[topo.source_nodes, np.arange(self.config.rows)] = \
            topo.g_source_s
        node_v = lu.solve(rhs)  # (n_nodes, rows)
        return (topo.g_sink_s * node_v[topo.sink_nodes, :]).T
