"""Circuit-level crossbar simulation (the HSPICE substitute).

This package solves the DC operating point of the full parasitic crossbar
network: source/sink/wire resistances plus the non-linear 1T1R cell stack at
every junction. It exposes three simulation modes:

* ``ideal``  — no non-idealities, plain MVM (reference numerator for fR);
* ``linear`` — parasitic resistances with ohmic cells: the *exact linear
  model*, equivalent to the matrix-inversion analytical baseline (CxDNN);
* ``full``   — parasitics plus the non-linear access transistor and RRAM
  I-V, solved with damped Newton-Raphson on the sparse nodal system. This is
  the ground truth that stands in for the paper's HSPICE runs.
"""

from repro.circuit.topology import CrossbarTopology
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.newton import NewtonOptions, NewtonResult, solve_newton
from repro.circuit.simulator import CrossbarCircuitSimulator, CrossbarSolution

__all__ = [
    "CrossbarTopology",
    "LinearCrossbarSolver",
    "NewtonOptions",
    "NewtonResult",
    "solve_newton",
    "CrossbarCircuitSimulator",
    "CrossbarSolution",
]
