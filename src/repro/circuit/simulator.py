"""Full non-linear crossbar DC simulator (the HSPICE stand-in).

For a given conductance matrix the simulator programs a filamentary RRAM
device per cell (optionally behind an access transistor), assembles the
parasitic nodal system, and solves the non-linear DC operating point with
damped Newton-Raphson, seeded from the exact linear solution. The public API
deliberately mirrors what the paper extracts from HSPICE: bit-line output
currents for (V, G) pairs, in ``ideal``, ``linear`` and ``full`` modes.

:meth:`CrossbarCircuitSimulator.solve_batch` is the high-throughput path:
whole voltage batches share one cached LU factorisation in linear mode and
one batched Newton run (per-system convergence mask, vectorised device
evaluation, precomputed Jacobian sparsity) in full mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.devices import (
    AccessTransistor,
    FilamentaryRram,
    SeriesStack,
    TwoTerminalDevice,
)
from repro.errors import ConfigError
from repro.utils.validation import check_matrix, check_vector
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.newton import (
    NewtonOptions,
    solve_newton,
    solve_newton_batch,
)
from repro.circuit.topology import CrossbarTopology

MODES = ("ideal", "linear", "full")


class _StampPattern:
    """Precomputed CSC sparsity pattern for parasitics + device stamps.

    Assembling the Jacobian from COO triplets costs a sort and a duplicate
    reduction on every Newton iteration of every system. The pattern of the
    nodal matrix never changes for a given topology, so this helper computes
    the CSC structure (and where every COO entry lands in it) once; per
    system, assembly reduces to one ``bincount`` over the device stamp
    values plus the constant parasitic contribution.
    """

    def __init__(self, topology: CrossbarTopology):
        an, bn = topology.cell_row_nodes, topology.cell_col_nodes
        rows = np.concatenate([topology.parasitic_rows, an, bn, an, bn])
        cols = np.concatenate([topology.parasitic_cols, an, bn, bn, an])
        n = topology.n_nodes
        order = np.lexsort((rows, cols))
        rows_sorted, cols_sorted = rows[order], cols[order]
        keys = cols_sorted.astype(np.int64) * n + rows_sorted
        first = np.ones(keys.size, dtype=bool)
        first[1:] = keys[1:] != keys[:-1]
        positions_sorted = np.cumsum(first) - 1
        positions = np.empty(order.size, dtype=np.int64)
        positions[order] = positions_sorted
        self.nnz = int(positions_sorted[-1]) + 1
        self.shape = (n, n)
        self.indices = rows_sorted[first].astype(np.int32)
        self.indptr = np.concatenate(
            [[0], np.cumsum(np.bincount(cols_sorted[first], minlength=n))]
        ).astype(np.int64)
        n_parasitic = topology.parasitic_vals.size
        self._parasitic_data = np.bincount(
            positions[:n_parasitic], weights=topology.parasitic_vals,
            minlength=self.nnz)
        self._stamp_positions = positions[n_parasitic:]

    def assemble(self, g_dev: np.ndarray) -> sparse.csc_matrix:
        """CSC nodal Jacobian for per-cell device conductances ``g_dev``."""
        vals = np.concatenate([g_dev, g_dev, -g_dev, -g_dev])
        data = self._parasitic_data + np.bincount(
            self._stamp_positions, weights=vals, minlength=self.nnz)
        return sparse.csc_matrix((data, self.indices, self.indptr),
                                 shape=self.shape)


@dataclass
class CrossbarSolution:
    """Result of one non-ideal crossbar solve.

    Attributes:
        currents_a: Bit-line output currents, shape ``(cols,)``.
        node_voltages_v: Full nodal solution (``None`` in ideal mode).
        iterations: Newton iterations used (0 for linear/ideal modes).
        mode: Simulation mode that produced this solution.
    """

    currents_a: np.ndarray
    node_voltages_v: np.ndarray | None
    iterations: int
    mode: str


class CrossbarCircuitSimulator:
    """DC operating-point simulator for one crossbar configuration."""

    def __init__(self, config: CrossbarConfig,
                 newton_options: NewtonOptions | None = None):
        self.config = config
        self.topology = CrossbarTopology(config)
        self.linear_solver = LinearCrossbarSolver(config)
        self.newton_options = newton_options or NewtonOptions()
        self._stamp_pattern = _StampPattern(self.topology)
        topo = self.topology
        self._parasitic_csr = sparse.coo_matrix(
            (topo.parasitic_vals, (topo.parasitic_rows, topo.parasitic_cols)),
            shape=(topo.n_nodes, topo.n_nodes)).tocsr()

    # ------------------------------------------------------------------
    # Device construction
    # ------------------------------------------------------------------
    def make_cell_device(self, conductance_s: np.ndarray) -> TwoTerminalDevice:
        """Build the vectorised per-cell device stack for a G matrix."""
        g_flat = np.asarray(conductance_s, dtype=float).ravel()
        cfg = self.config
        if not cfg.with_access_transistor:
            return FilamentaryRram.from_conductance(
                g_flat, cfg.rram, v_ref=cfg.programming_v_ref_v)
        # With an access transistor the program-and-verify loop sees the
        # *stack* conductance; compensate so the stack's small-signal
        # conductance equals the target (series g: 1/g = 1/g_t + 1/g_r).
        transistor = AccessTransistor(r_on_ohm=cfg.access_r_on_ohm,
                                      v_ov_v=cfg.access_v_ov_v,
                                      gmin_s=cfg.gmin_s)
        g_t = transistor.small_signal_conductance()
        if np.any(g_flat >= g_t):
            raise ConfigError(
                "target cell conductance exceeds the access transistor's "
                "on-conductance; lower g_on or the transistor resistance")
        g_rram = g_flat * g_t / (g_t - g_flat)
        rram = FilamentaryRram.from_conductance(
            g_rram, cfg.rram, v_ref=cfg.programming_v_ref_v)
        return SeriesStack(transistor, rram)

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def solve(self, voltages_v, conductance_s,
              mode: str = "full") -> CrossbarSolution:
        """Solve one (V, G) operating point in the requested mode."""
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        voltages_v = check_vector("voltages_v", voltages_v, self.config.rows)

        if mode == "ideal":
            return CrossbarSolution(ideal_mvm(voltages_v, conductance_s),
                                    None, 0, mode)
        if mode == "linear":
            node_v = self.linear_solver.solve_node_voltages(voltages_v,
                                                            conductance_s)
            return CrossbarSolution(self.topology.output_currents(node_v),
                                    node_v, 0, mode)
        return self._solve_full(voltages_v, conductance_s)

    def solve_batch(self, voltages_v, conductance_s,
                    mode: str = "full") -> np.ndarray:
        """Output currents for a batch of voltage vectors, shape (B, cols).

        The conductance matrix is shared across the batch, as it is during
        inference on a programmed crossbar. Linear and ideal modes share one
        (cached) factorisation / one matmul; full mode runs one *batched*
        damped-Newton solve that iterates every operating point
        simultaneously, seeded from the batched linear solution. Empty
        batches (``B = 0``) return an empty ``(0, cols)`` array.
        """
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        voltages_v = np.atleast_2d(np.asarray(voltages_v, dtype=float))
        if mode == "ideal":
            return ideal_mvm(voltages_v, conductance_s)
        if mode == "linear":
            return self.linear_solver.solve(voltages_v, conductance_s)
        return self._solve_full_batch(voltages_v, conductance_s)

    def cell_voltage_matrix(self, solution: CrossbarSolution) -> np.ndarray:
        """Per-cell voltage differences ``V_a(i,j) - V_b(i,j)``.

        The (rows, cols) map of effective device drive after IR drops —
        the spatial signature of the linear non-idealities (cells far from
        the driver and the sink see the least voltage).
        """
        if solution.node_voltages_v is None:
            raise ConfigError(
                "ideal-mode solutions carry no node voltages")
        x = solution.node_voltages_v
        topo = self.topology
        return (x[topo.cell_row_nodes]
                - x[topo.cell_col_nodes]).reshape(self.config.shape)

    def _residual_and_jacobian_factory(self, device, rhs):
        topo = self.topology
        an, bn = topo.cell_row_nodes, topo.cell_col_nodes
        shape = (topo.n_nodes, topo.n_nodes)
        para = self._parasitic_csr
        stamp_rows = np.concatenate([an, bn, an, bn])
        stamp_cols = np.concatenate([an, bn, bn, an])

        def residual_and_jacobian(x):
            vd = x[an] - x[bn]
            i_dev, g_dev = device.current_and_conductance(vd)
            f = para @ x - rhs
            f[an] += i_dev
            f[bn] -= i_dev
            vals = np.concatenate([g_dev, g_dev, -g_dev, -g_dev])
            jac = para + sparse.coo_matrix(
                (vals, (stamp_rows, stamp_cols)), shape=shape).tocsr()
            return f, jac

        return residual_and_jacobian

    def _batched_callbacks(self, device, rhs):
        """Residual / Jacobian callbacks for :func:`solve_newton_batch`.

        ``rhs`` has shape ``(B, n_nodes)``; the callbacks receive the
        original batch indices so per-system RHS rows line up with the
        (shrinking) active working set. Device evaluation is vectorised over
        ``(M, n_cells)`` voltage-difference arrays and happens once per
        iterate: the residual computes I and dI/dV together (the 1T1R
        series stack solves its internal node once for both) and memoises
        the conductances, which the Jacobian callback — always invoked at
        iterates the line search just evaluated — picks up by value.
        """
        topo = self.topology
        an, bn = topo.cell_row_nodes, topo.cell_col_nodes
        para = self._parasitic_csr
        pattern = self._stamp_pattern
        # vd-bytes -> per-cell conductance rows seen since the last
        # Jacobian assembly (one outer Newton iteration's line search).
        g_memo: dict = {}

        def residual(x, idx):
            vd = x[:, an] - x[:, bn]
            i_dev, g_dev = device.current_and_conductance(vd)
            for k in range(x.shape[0]):
                g_memo[vd[k].tobytes()] = g_dev[k]
            f = (para @ x.T).T - rhs[idx]
            f[:, an] += i_dev
            f[:, bn] -= i_dev
            return f

        def jacobian(x, idx):
            vd = x[:, an] - x[:, bn]
            jacs = []
            for k in range(x.shape[0]):
                g_row = g_memo.get(vd[k].tobytes())
                if g_row is None:  # never hit in practice; stay correct
                    g_row = device.conductance(vd[k])
                jacs.append(pattern.assemble(g_row))
            g_memo.clear()
            return jacs

        return residual, jacobian

    def _solve_full_batch(self, voltages_v, conductance_s) -> np.ndarray:
        """Batched non-linear solve; one Newton run for the whole batch."""
        if voltages_v.shape[0] == 0:
            return np.zeros((0, self.config.cols))
        device = self.make_cell_device(conductance_s)
        x0 = self.linear_solver.solve_node_voltages(voltages_v, conductance_s)
        rhs = self.topology.rhs_for_inputs(voltages_v)
        scale = np.max(np.abs(rhs), axis=1) if rhs.size else \
            np.zeros(rhs.shape[0])
        residual, jacobian = self._batched_callbacks(device, rhs)
        result = solve_newton_batch(residual, jacobian, x0,
                                    self.newton_options, scale=scale)
        return self.topology.output_currents(result.x)

    def _solve_full(self, voltages_v, conductance_s,
                    device: TwoTerminalDevice | None = None) -> CrossbarSolution:
        if device is None:
            device = self.make_cell_device(conductance_s)
        # Seed Newton with the exact solution of the small-signal linear
        # network; for on-state 1T1R stacks this is already very close.
        x0 = self.linear_solver.solve_node_voltages(voltages_v, conductance_s)
        rhs = self.topology.rhs_for_inputs(voltages_v)
        fn = self._residual_and_jacobian_factory(device, rhs)
        scale = float(np.max(np.abs(rhs))) if rhs.size else 0.0
        result = solve_newton(fn, x0, self.newton_options, scale=scale)
        currents = self.topology.output_currents(result.x)
        return CrossbarSolution(currents, result.x, result.iterations, "full")
