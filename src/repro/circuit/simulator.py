"""Full non-linear crossbar DC simulator (the HSPICE stand-in).

For a given conductance matrix the simulator programs a filamentary RRAM
device per cell (optionally behind an access transistor), assembles the
parasitic nodal system, and solves the non-linear DC operating point with
damped Newton-Raphson, seeded from the exact linear solution. The public API
deliberately mirrors what the paper extracts from HSPICE: bit-line output
currents for (V, G) pairs, in ``ideal``, ``linear`` and ``full`` modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.devices import (
    AccessTransistor,
    FilamentaryRram,
    SeriesStack,
    TwoTerminalDevice,
)
from repro.errors import ConfigError
from repro.utils.validation import check_matrix, check_vector
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm
from repro.circuit.linear_solver import LinearCrossbarSolver
from repro.circuit.newton import NewtonOptions, solve_newton
from repro.circuit.topology import CrossbarTopology

MODES = ("ideal", "linear", "full")


@dataclass
class CrossbarSolution:
    """Result of one non-ideal crossbar solve.

    Attributes:
        currents_a: Bit-line output currents, shape ``(cols,)``.
        node_voltages_v: Full nodal solution (``None`` in ideal mode).
        iterations: Newton iterations used (0 for linear/ideal modes).
        mode: Simulation mode that produced this solution.
    """

    currents_a: np.ndarray
    node_voltages_v: np.ndarray | None
    iterations: int
    mode: str


class CrossbarCircuitSimulator:
    """DC operating-point simulator for one crossbar configuration."""

    def __init__(self, config: CrossbarConfig,
                 newton_options: NewtonOptions | None = None):
        self.config = config
        self.topology = CrossbarTopology(config)
        self.linear_solver = LinearCrossbarSolver(config)
        self.newton_options = newton_options or NewtonOptions()

    # ------------------------------------------------------------------
    # Device construction
    # ------------------------------------------------------------------
    def make_cell_device(self, conductance_s: np.ndarray) -> TwoTerminalDevice:
        """Build the vectorised per-cell device stack for a G matrix."""
        g_flat = np.asarray(conductance_s, dtype=float).ravel()
        cfg = self.config
        if not cfg.with_access_transistor:
            return FilamentaryRram.from_conductance(
                g_flat, cfg.rram, v_ref=cfg.programming_v_ref_v)
        # With an access transistor the program-and-verify loop sees the
        # *stack* conductance; compensate so the stack's small-signal
        # conductance equals the target (series g: 1/g = 1/g_t + 1/g_r).
        transistor = AccessTransistor(r_on_ohm=cfg.access_r_on_ohm,
                                      v_ov_v=cfg.access_v_ov_v,
                                      gmin_s=cfg.gmin_s)
        g_t = transistor.small_signal_conductance()
        if np.any(g_flat >= g_t):
            raise ConfigError(
                "target cell conductance exceeds the access transistor's "
                "on-conductance; lower g_on or the transistor resistance")
        g_rram = g_flat * g_t / (g_t - g_flat)
        rram = FilamentaryRram.from_conductance(
            g_rram, cfg.rram, v_ref=cfg.programming_v_ref_v)
        return SeriesStack(transistor, rram)

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def solve(self, voltages_v, conductance_s,
              mode: str = "full") -> CrossbarSolution:
        """Solve one (V, G) operating point in the requested mode."""
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        voltages_v = check_vector("voltages_v", voltages_v, self.config.rows)

        if mode == "ideal":
            return CrossbarSolution(ideal_mvm(voltages_v, conductance_s),
                                    None, 0, mode)
        if mode == "linear":
            node_v = self.linear_solver.solve_node_voltages(voltages_v,
                                                            conductance_s)
            return CrossbarSolution(self.topology.output_currents(node_v),
                                    node_v, 0, mode)
        return self._solve_full(voltages_v, conductance_s)

    def solve_batch(self, voltages_v, conductance_s,
                    mode: str = "full") -> np.ndarray:
        """Output currents for a batch of voltage vectors, shape (B, cols).

        The conductance matrix is shared across the batch, as it is during
        inference on a programmed crossbar. Linear and ideal modes share one
        factorisation / one matmul; full mode solves each operating point.
        """
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        conductance_s = check_matrix("conductance_s", conductance_s,
                                     self.config.shape)
        voltages_v = np.asarray(voltages_v, dtype=float)
        if voltages_v.ndim == 1:
            voltages_v = voltages_v[None, :]
        if mode == "ideal":
            return ideal_mvm(voltages_v, conductance_s)
        if mode == "linear":
            return self.linear_solver.solve(voltages_v, conductance_s)
        device = self.make_cell_device(conductance_s)
        out = np.empty((voltages_v.shape[0], self.config.cols))
        for k, v in enumerate(voltages_v):
            out[k] = self._solve_full(v, conductance_s, device=device).currents_a
        return out

    def cell_voltage_matrix(self, solution: CrossbarSolution) -> np.ndarray:
        """Per-cell voltage differences ``V_a(i,j) - V_b(i,j)``.

        The (rows, cols) map of effective device drive after IR drops —
        the spatial signature of the linear non-idealities (cells far from
        the driver and the sink see the least voltage).
        """
        if solution.node_voltages_v is None:
            raise ConfigError(
                "ideal-mode solutions carry no node voltages")
        x = solution.node_voltages_v
        topo = self.topology
        return (x[topo.cell_row_nodes]
                - x[topo.cell_col_nodes]).reshape(self.config.shape)

    def _residual_and_jacobian_factory(self, device, rhs):
        topo = self.topology
        an, bn = topo.cell_row_nodes, topo.cell_col_nodes
        shape = (topo.n_nodes, topo.n_nodes)
        para = sparse.coo_matrix(
            (topo.parasitic_vals, (topo.parasitic_rows, topo.parasitic_cols)),
            shape=shape).tocsr()
        stamp_rows = np.concatenate([an, bn, an, bn])
        stamp_cols = np.concatenate([an, bn, bn, an])

        def residual_and_jacobian(x):
            vd = x[an] - x[bn]
            i_dev, g_dev = device.current_and_conductance(vd)
            f = para @ x - rhs
            f[an] += i_dev
            f[bn] -= i_dev
            vals = np.concatenate([g_dev, g_dev, -g_dev, -g_dev])
            jac = para + sparse.coo_matrix(
                (vals, (stamp_rows, stamp_cols)), shape=shape).tocsr()
            return f, jac

        return residual_and_jacobian

    def _solve_full(self, voltages_v, conductance_s,
                    device: TwoTerminalDevice | None = None) -> CrossbarSolution:
        if device is None:
            device = self.make_cell_device(conductance_s)
        # Seed Newton with the exact solution of the small-signal linear
        # network; for on-state 1T1R stacks this is already very close.
        x0 = self.linear_solver.solve_node_voltages(voltages_v, conductance_s)
        rhs = self.topology.rhs_for_inputs(voltages_v)
        fn = self._residual_and_jacobian_factory(device, rhs)
        scale = float(np.max(np.abs(rhs))) if rhs.size else 0.0
        result = solve_newton(fn, x0, self.newton_options, scale=scale)
        currents = self.topology.output_currents(result.x)
        return CrossbarSolution(currents, result.x, result.iterations, "full")
