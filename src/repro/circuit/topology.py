"""Node numbering and parasitic netlist of the crossbar grid.

Every cell (i, j) contributes two rail nodes: ``a(i, j)`` on the word line
(row rail) and ``b(i, j)`` on the bit line (column rail). The parasitic
network is:

* word-line segments ``a(i, j) -- a(i, j+1)`` with resistance ``R_wire``;
* bit-line segments ``b(i, j) -- b(i+1, j)`` with resistance ``R_wire``;
* the input driver ``V_i --R_source-- a(i, 0)``;
* the sense path ``b(rows-1, j) --R_sink-- ground``.

The cell device itself connects ``a(i, j)`` to ``b(i, j)`` and is stamped by
the solvers, not here. The class precomputes COO index/value arrays for the
constant parasitic part of the nodal matrix so solvers can assemble systems
with a single concatenation.
"""

from __future__ import annotations

import numpy as np

from repro.xbar.config import CrossbarConfig

# Wire conductance is clamped so r_wire_ohm = 0 ("no wire resistance") stays
# numerically well-posed; 1e9 S is > 13 orders of magnitude above g_on.
_MAX_WIRE_CONDUCTANCE_S = 1e9


class CrossbarTopology:
    """Indexing and constant parasitic stamps for one crossbar geometry."""

    def __init__(self, config: CrossbarConfig):
        self.config = config
        self.rows = config.rows
        self.cols = config.cols
        self.n_nodes = 2 * self.rows * self.cols

        ii, jj = np.meshgrid(np.arange(self.rows), np.arange(self.cols),
                             indexing="ij")
        self.cell_row_nodes = self.row_node(ii, jj).ravel()
        self.cell_col_nodes = self.col_node(ii, jj).ravel()
        self.source_nodes = self.row_node(np.arange(self.rows), 0)
        self.sink_nodes = self.col_node(self.rows - 1, np.arange(self.cols))

        self.g_source_s = 1.0 / config.r_source_ohm
        self.g_sink_s = 1.0 / config.r_sink_ohm
        if config.r_wire_ohm > 0:
            self.g_wire_s = min(1.0 / config.r_wire_ohm,
                                _MAX_WIRE_CONDUCTANCE_S)
        else:
            self.g_wire_s = _MAX_WIRE_CONDUCTANCE_S

        self._build_parasitic_stamps()

    def row_node(self, i, j):
        """Nodal index of the word-line rail at cell (i, j)."""
        return np.asarray(i) * self.cols + np.asarray(j)

    def col_node(self, i, j):
        """Nodal index of the bit-line rail at cell (i, j)."""
        return self.rows * self.cols + np.asarray(i) * self.cols + np.asarray(j)

    @staticmethod
    def _two_terminal_stamp(n1, n2, g):
        """COO entries for a conductance g between nodes n1 and n2."""
        n1 = np.asarray(n1).ravel()
        n2 = np.asarray(n2).ravel()
        g = np.broadcast_to(np.asarray(g, dtype=float), n1.shape).ravel()
        rows = np.concatenate([n1, n2, n1, n2])
        cols = np.concatenate([n1, n2, n2, n1])
        vals = np.concatenate([g, g, -g, -g])
        return rows, cols, vals

    def _build_parasitic_stamps(self):
        rows_list, cols_list, vals_list = [], [], []

        if self.cols > 1:
            ii, jj = np.meshgrid(np.arange(self.rows),
                                 np.arange(self.cols - 1), indexing="ij")
            r, c, v = self._two_terminal_stamp(
                self.row_node(ii, jj), self.row_node(ii, jj + 1),
                self.g_wire_s)
            rows_list.append(r)
            cols_list.append(c)
            vals_list.append(v)

        if self.rows > 1:
            ii, jj = np.meshgrid(np.arange(self.rows - 1),
                                 np.arange(self.cols), indexing="ij")
            r, c, v = self._two_terminal_stamp(
                self.col_node(ii, jj), self.col_node(ii + 1, jj),
                self.g_wire_s)
            rows_list.append(r)
            cols_list.append(c)
            vals_list.append(v)

        # Grounded one-terminal stamps only touch the diagonal: the source
        # resistor's far terminal is the ideal voltage source (handled via
        # the RHS) and the sink resistor's far terminal is ground.
        rows_list.append(self.source_nodes)
        cols_list.append(self.source_nodes)
        vals_list.append(np.full(self.rows, self.g_source_s))

        rows_list.append(self.sink_nodes)
        cols_list.append(self.sink_nodes)
        vals_list.append(np.full(self.cols, self.g_sink_s))

        self.parasitic_rows = np.concatenate(rows_list)
        self.parasitic_cols = np.concatenate(cols_list)
        self.parasitic_vals = np.concatenate(vals_list)

    def rhs_for_inputs(self, voltages_v: np.ndarray) -> np.ndarray:
        """Right-hand side vector(s) for input voltages.

        Accepts shape ``(rows,)`` or ``(batch, rows)``; returns shape
        ``(n_nodes,)`` or ``(batch, n_nodes)``.
        """
        voltages_v = np.asarray(voltages_v, dtype=float)
        if voltages_v.ndim == 1:
            rhs = np.zeros(self.n_nodes)
            rhs[self.source_nodes] = self.g_source_s * voltages_v
            return rhs
        rhs = np.zeros((voltages_v.shape[0], self.n_nodes))
        rhs[:, self.source_nodes] = self.g_source_s * voltages_v
        return rhs

    def output_currents(self, node_voltages: np.ndarray) -> np.ndarray:
        """Bit-line currents flowing through the sink resistors."""
        return self.g_sink_s * node_voltages[..., self.sink_nodes]
