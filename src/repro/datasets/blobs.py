"""Gaussian-cluster vector dataset for fast MLP tests."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed


def make_blobs(n: int, num_features: int = 16, num_classes: int = 4,
               spread: float = 1.0, seed=0) -> tuple:
    """Balanced Gaussian clusters on a random simplex of centres.

    Returns ``(x, y)`` with ``x`` float32 of shape ``(n, num_features)``.
    ``spread`` scales the within-class standard deviation relative to the
    unit inter-centre distance (1.0 is moderately hard, 0.3 nearly
    separable).
    """
    if num_classes < 2 or num_features < 1:
        raise ConfigError("need num_classes >= 2 and num_features >= 1")
    rng = rng_from_seed(seed)
    centers = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    centers *= 2.0
    labels = (np.arange(n) % num_classes).astype(np.int64)
    rng.shuffle(labels)
    x = centers[labels] + rng.normal(0.0, spread * 0.5,
                                     size=(n, num_features))
    return x.astype(np.float32), labels


def make_blobs_split(n_train: int, n_test: int, **kwargs) -> tuple:
    """Train/test draws sharing the same cluster centres."""
    seed = kwargs.pop("seed", 0)
    x_all, y_all = make_blobs(n_train + n_test, seed=seed, **kwargs)
    return (x_all[:n_train], y_all[:n_train],
            x_all[n_train:], y_all[n_train:])
