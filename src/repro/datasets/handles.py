"""Content-addressable dataset handles.

A *handle* is a small JSON object naming one procedural dataset split —
``{"name": "blobs", "n_train": 256, "n_test": 128, "seed": 0, ...}`` —
that any process can resolve to the exact same arrays, because every
generator in :mod:`repro.datasets` is a pure function of its seed. That
makes datasets wire-safe (the serve ``/mitigate`` endpoint takes a handle
instead of shipping arrays) and digest-safe (a handle folds into
mitigated-artifact keys the same way specs do).

``normalise_handle`` canonicalises a handle — fills every generator
default explicitly and rejects unknown names/fields with the dotted path,
the same strictness contract as the spec codec — so two handles that
resolve to the same arrays always digest identically.
"""

from __future__ import annotations

import inspect

from repro.datasets.blobs import make_blobs, make_blobs_split
from repro.datasets.shapes import make_shapes, make_shapes_split
from repro.datasets.textures import make_textures, make_textures_split
from repro.errors import ConfigError
from repro.utils.digest import content_key

#: Resolvable dataset names -> (split function, base generator). The base
#: generator's signature (minus ``n``) defines the legal handle kwargs.
DATASET_SPLITS = {
    "blobs": (make_blobs_split, make_blobs),
    "shapes": (make_shapes_split, make_shapes),
    "textures": (make_textures_split, make_textures),
}

_DEFAULT_N_TRAIN = 256
_DEFAULT_N_TEST = 128


def _generator_params(base_fn) -> dict:
    """Name -> default for every tunable of a base generator (sans n)."""
    params = {}
    for name, param in inspect.signature(base_fn).parameters.items():
        if name == "n":
            continue
        params[name] = param.default
    return params


def normalise_handle(handle) -> dict:
    """Canonical form of a dataset handle.

    Accepts a bare name string or a dict with at least ``"name"``.
    Returns a dict with every field explicit (split sizes and all
    generator kwargs, defaults filled in), so the canonical form — and
    therefore :func:`handle_digest` — is independent of which defaults
    the caller spelled out. Unknown names and fields raise
    :class:`ConfigError` naming the offending path.
    """
    if isinstance(handle, str):
        handle = {"name": handle}
    if not isinstance(handle, dict):
        raise ConfigError(
            f"dataset handle must be a name or JSON object, got "
            f"{type(handle).__name__}")
    payload = dict(handle)
    name = payload.pop("name", None)
    if name not in DATASET_SPLITS:
        raise ConfigError(
            f"unknown dataset {name!r}; expected one of "
            f"{sorted(DATASET_SPLITS)}")
    _, base_fn = DATASET_SPLITS[name]
    out = {"name": name,
           "n_train": payload.pop("n_train", _DEFAULT_N_TRAIN),
           "n_test": payload.pop("n_test", _DEFAULT_N_TEST)}
    for split in ("n_train", "n_test"):
        value = out[split]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            raise ConfigError(
                f"dataset.{split} must be a positive integer, got "
                f"{value!r}")
    params = _generator_params(base_fn)
    for key, value in payload.items():
        if key not in params:
            raise ConfigError(
                f"unknown dataset field dataset.{key!r} for {name!r}; "
                f"expected one of {sorted(params)}")
        params[key] = value
    out.update(params)
    return out


def handle_digest(handle) -> str:
    """Stable content digest of a (normalised) dataset handle."""
    return content_key("ds", normalise_handle(handle))


def resolve_handle(handle) -> tuple:
    """Materialise ``(x_train, y_train, x_test, y_test)`` for a handle.

    Deterministic: the same handle resolves to bit-identical arrays in
    every process (the generators are pure functions of their seeds).
    """
    normalised = normalise_handle(handle)
    split_fn, _ = DATASET_SPLITS[normalised["name"]]
    kwargs = {k: v for k, v in normalised.items() if k != "name"}
    n_train = kwargs.pop("n_train")
    n_test = kwargs.pop("n_test")
    try:
        return split_fn(n_train, n_test, **kwargs)
    except ConfigError as exc:
        raise ConfigError(f"invalid dataset handle: {exc}") from exc
