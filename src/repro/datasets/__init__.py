"""Procedural datasets standing in for CIFAR-100 / ImageNet.

The paper's accuracy experiments compare *relative* degradation between
ideal fixed-point inference and non-ideal crossbar inference of the same
trained network, so any non-trivial image-classification task that pushes
real activations and weights through the pipeline reproduces the orderings.
Two visually distinct generators are provided:

* :mod:`repro.datasets.shapes` — rendered geometric glyphs with pose /
  scale / noise jitter (the "CIFAR-100" slot);
* :mod:`repro.datasets.textures` — class-conditioned oriented sinusoidal
  textures with frequency jitter (the "ImageNet subset" slot);
* :mod:`repro.datasets.blobs` — Gaussian clusters for fast MLP tests.
"""

from repro.datasets.shapes import make_shapes, make_shapes_split, SHAPE_NAMES
from repro.datasets.textures import make_textures, make_textures_split
from repro.datasets.blobs import make_blobs, make_blobs_split
from repro.datasets.handles import (
    DATASET_SPLITS,
    handle_digest,
    normalise_handle,
    resolve_handle,
)

__all__ = [
    "make_shapes",
    "make_shapes_split",
    "SHAPE_NAMES",
    "make_textures",
    "make_textures_split",
    "make_blobs",
    "make_blobs_split",
    "DATASET_SPLITS",
    "handle_digest",
    "normalise_handle",
    "resolve_handle",
]
