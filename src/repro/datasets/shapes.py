"""Rendered geometric-glyph classification (the CIFAR-100 stand-in).

Each class is a parametric binary glyph (circle, ring, square, diamond,
cross, triangle, stripes, checker, ...) rendered at a jittered position and
scale, corrupted with additive Gaussian noise and a random brightness/
contrast transform. With default settings the task is learnable to ~90%+ by
a small CNN but far from trivial at high noise — the regime where crossbar
non-ideality visibly moves accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed

SHAPE_NAMES = (
    "circle", "ring", "square", "diamond", "cross", "triangle",
    "hstripes", "vstripes", "checker", "dot_grid",
)


def _glyph_mask(name: str, xx, yy, cx, cy, size, rng) -> np.ndarray:
    """Binary mask of one glyph on the coordinate grids ``xx, yy``."""
    dx, dy = xx - cx, yy - cy
    if name == "circle":
        return dx ** 2 + dy ** 2 <= size ** 2
    if name == "ring":
        r2 = dx ** 2 + dy ** 2
        return (r2 <= size ** 2) & (r2 >= (0.55 * size) ** 2)
    if name == "square":
        return (np.abs(dx) <= size) & (np.abs(dy) <= size)
    if name == "diamond":
        return np.abs(dx) + np.abs(dy) <= 1.3 * size
    if name == "cross":
        bar = 0.45 * size
        inside = (np.abs(dx) <= size) & (np.abs(dy) <= size)
        return inside & ((np.abs(dx) <= bar) | (np.abs(dy) <= bar))
    if name == "triangle":
        # Upward triangle: widens linearly from the apex.
        height = 2.0 * size
        rel = (dy + size) / max(height, 1e-6)
        return (rel >= 0) & (rel <= 1) & (np.abs(dx) <= rel * size)
    if name == "hstripes":
        period = max(2.2, 0.9 * size)
        return np.sin(2 * np.pi * yy / period + rng.uniform(0, np.pi)) > 0.15
    if name == "vstripes":
        period = max(2.2, 0.9 * size)
        return np.sin(2 * np.pi * xx / period + rng.uniform(0, np.pi)) > 0.15
    if name == "checker":
        period = max(2.2, 0.9 * size)
        phase = rng.uniform(0, np.pi)
        return (np.sin(2 * np.pi * xx / period + phase)
                * np.sin(2 * np.pi * yy / period + phase)) > 0.0
    if name == "dot_grid":
        period = max(2.5, size)
        gx = (xx + rng.uniform(0, period)) % period - period / 2
        gy = (yy + rng.uniform(0, period)) % period - period / 2
        return gx ** 2 + gy ** 2 <= (0.32 * period) ** 2
    raise ConfigError(f"unknown shape {name!r}")


def make_shapes(n: int, image_size: int = 12, num_classes: int = 8,
                noise: float = 0.20, channels: int = 1,
                seed=0) -> tuple:
    """Generate a balanced shape-classification set.

    Returns:
        ``(images, labels)`` with images of shape
        ``(n, channels, image_size, image_size)`` float32, roughly
        zero-centred, and integer labels in ``[0, num_classes)``.
    """
    if not 2 <= num_classes <= len(SHAPE_NAMES):
        raise ConfigError(
            f"num_classes must lie in [2, {len(SHAPE_NAMES)}]")
    if image_size < 6:
        raise ConfigError("image_size must be >= 6")
    rng = rng_from_seed(seed)
    yy, xx = np.meshgrid(np.arange(image_size), np.arange(image_size),
                         indexing="ij")
    xx = xx.astype(float)
    yy = yy.astype(float)

    images = np.empty((n, channels, image_size, image_size),
                      dtype=np.float32)
    labels = (np.arange(n) % num_classes).astype(np.int64)
    rng.shuffle(labels)

    half = image_size / 2.0
    for k in range(n):
        name = SHAPE_NAMES[labels[k]]
        size = rng.uniform(0.28, 0.40) * image_size
        cx = half + rng.uniform(-0.12, 0.12) * image_size
        cy = half + rng.uniform(-0.12, 0.12) * image_size
        mask = _glyph_mask(name, xx, yy, cx, cy, size, rng).astype(float)
        brightness = rng.uniform(0.75, 1.0)
        background = rng.uniform(0.0, 0.15)
        img = background + (brightness - background) * mask
        img = img + rng.normal(0.0, noise, size=img.shape)
        img -= img.mean()
        for c in range(channels):
            jitter = 1.0 if channels == 1 else rng.uniform(0.85, 1.15)
            images[k, c] = (img * jitter).astype(np.float32)
    return images, labels


def make_shapes_split(n_train: int, n_test: int, **kwargs) -> tuple:
    """Disjoint train/test draws (different derived seeds).

    Returns ``(x_train, y_train, x_test, y_test)``.
    """
    seed = kwargs.pop("seed", 0)
    x_train, y_train = make_shapes(n_train, seed=(seed, 0xA), **kwargs)
    x_test, y_test = make_shapes(n_test, seed=(seed, 0xB), **kwargs)
    return x_train, y_train, x_test, y_test
