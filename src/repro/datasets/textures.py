"""Oriented-texture classification (the ImageNet-subset stand-in).

Each class is a family of two-component sinusoidal gratings with a
class-specific pair of (orientation, frequency) modes; samples jitter the
phase, frequency and relative component weights and add Gaussian noise.
Texture statistics (rather than glyph geometry) make this set complementary
to :mod:`repro.datasets.shapes` and give the second dataset required by the
paper's two-dataset evaluation (Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import rng_from_seed


def _class_modes(num_classes: int, rng) -> list:
    """Two (orientation, frequency) modes per class, well separated."""
    modes = []
    for k in range(num_classes):
        theta1 = np.pi * k / num_classes
        theta2 = np.pi * ((k + 0.5) % num_classes) / num_classes
        freq1 = 0.12 + 0.05 * (k % 3)
        freq2 = 0.20 + 0.04 * ((k + 1) % 3)
        modes.append(((theta1, freq1), (theta2, freq2)))
    _ = rng  # reserved for future randomised mode placement
    return modes


def make_textures(n: int, image_size: int = 12, num_classes: int = 6,
                  noise: float = 0.35, channels: int = 1, seed=0) -> tuple:
    """Generate a balanced oriented-texture set.

    Returns:
        ``(images, labels)`` — images ``(n, channels, H, W)`` float32,
        zero-mean; labels int64.
    """
    if num_classes < 2:
        raise ConfigError("num_classes must be >= 2")
    if image_size < 6:
        raise ConfigError("image_size must be >= 6")
    rng = rng_from_seed(seed)
    modes = _class_modes(num_classes, rng)
    yy, xx = np.meshgrid(np.arange(image_size), np.arange(image_size),
                         indexing="ij")

    images = np.empty((n, channels, image_size, image_size),
                      dtype=np.float32)
    labels = (np.arange(n) % num_classes).astype(np.int64)
    rng.shuffle(labels)

    for k in range(n):
        (theta1, freq1), (theta2, freq2) = modes[labels[k]]
        img = np.zeros((image_size, image_size))
        for theta, freq, weight in (
                (theta1, freq1, rng.uniform(0.6, 1.0)),
                (theta2, freq2, rng.uniform(0.2, 0.6))):
            theta = theta + rng.normal(0.0, 0.06)
            freq = freq * rng.uniform(0.9, 1.1)
            phase = rng.uniform(0, 2 * np.pi)
            proj = np.cos(theta) * xx + np.sin(theta) * yy
            img += weight * np.sin(2 * np.pi * freq * proj + phase)
        img += rng.normal(0.0, noise, size=img.shape)
        img -= img.mean()
        img /= max(img.std(), 1e-6)
        for c in range(channels):
            jitter = 1.0 if channels == 1 else rng.uniform(0.9, 1.1)
            images[k, c] = (0.5 * img * jitter).astype(np.float32)
    return images, labels


def make_textures_split(n_train: int, n_test: int, **kwargs) -> tuple:
    """Disjoint train/test draws. Returns ``(x_tr, y_tr, x_te, y_te)``."""
    seed = kwargs.pop("seed", 0)
    x_train, y_train = make_textures(n_train, seed=(seed, 0xC), **kwargs)
    x_test, y_test = make_textures(n_test, seed=(seed, 0xD), **kwargs)
    return x_train, y_train, x_test, y_test
