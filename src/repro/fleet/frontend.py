"""The fleet front-end: one asyncio process routing to N serve workers.

Accepts the existing ``repro.serve`` wire protocol unchanged (a
:class:`~repro.serve.client.ServeClient` pointed at the front-end works
as-is) and forwards each request — body bytes verbatim — to a worker
chosen by consistent-hashing its resolved routing key
(:func:`repro.fleet.routing.routing_key`). Responses come back byte-
identical to a single-process server because workers *are* the existing
serve stack and the proxy never re-encodes a payload.

Robustness is built in, not bolted on:

* **replication** — hot keys can run with ``replication > 1`` (front-end
  default or per-request ``spec.runtime.fleet.replication``); among the
  key's replica set the least-loaded worker (front-end-tracked in-flight
  forwards) takes the request;
* **retry-once-on-peer-failure** — a connection-level failure marks the
  worker dead, re-hashes the ring and retries the request once on the
  next replica (safe: every endpoint is content-addressed and
  idempotent); timeouts are *not* retried — the work may be executing;
* **health checks** — a background loop probes ``/healthz`` per worker;
  two consecutive failures evict it from the ring, a later success
  re-admits it (the supervisor's respawns re-register explicitly);
* **load shedding** — a global in-flight bound answers 429 before the
  front-end melts, and optional per-tenant token buckets (keyed by the
  ``X-Repro-Tenant`` header) enforce quotas;
* **graceful drain** — SIGTERM stops the listener, lets in-flight
  requests finish, then closes worker connections.

Observability: ``repro_fleet_*`` counter/gauge/histogram families live on
the front-end's own :class:`~repro.obs.MetricsRegistry`; ``GET /metrics``
federates every worker's families (scraped from ``/v1/debug/obs``) into
the Prometheus exposition under a ``worker=<id>`` label, and the JSON
shape carries a per-worker summary (queue depths, warm tiers, latency,
zoo counters) that ``repro obs --fleet`` renders as a table. Each routed
request records a trace with ``route`` and ``forward`` spans.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from time import perf_counter

from repro.fleet.ring import HashRing
from repro.fleet.routing import (
    KEY_FIELDS,
    LEARN_ENDPOINTS,
    ROUTED_ENDPOINTS,
    TokenBucket,
    fallback_key,
    requested_replication,
    routing_key,
)
from repro.obs import MetricsRegistry, Trace, TraceBuffer, activate, \
    current_trace, deactivate
from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.serve.httpio import (
    PayloadTooLarge,
    encode_request,
    encode_response,
    read_request,
    read_response,
)
from repro.serve.metrics import ServeMetrics
from repro.utils.cache import LruDict

_log = logging.getLogger("repro.fleet")


class _WorkerUnreachable(Exception):
    """A worker could not be reached on a fresh connection."""


class _ForwardTimeout(Exception):
    """A forwarded request timed out (NOT safe to retry elsewhere)."""


class WorkerState:
    """Front-end bookkeeping for one worker process."""

    __slots__ = ("wid", "host", "port", "healthy", "fails", "inflight")

    def __init__(self, wid: str, host: str, port: int):
        self.wid = wid
        self.host = host
        self.port = int(port)
        self.healthy = True
        self.fails = 0
        self.inflight = 0

    def describe(self) -> dict:
        return {"host": self.host, "port": self.port,
                "healthy": self.healthy, "fails": self.fails,
                "inflight": self.inflight}


class FleetMetrics:
    """``repro_fleet_*`` instrument families for one front-end."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "repro_fleet_requests_total",
            "Requests accepted by the fleet front-end, by endpoint.",
            labelnames=("endpoint",))
        self._responses = reg.counter(
            "repro_fleet_responses_total",
            "Responses sent by the fleet front-end, by status code.",
            labelnames=("status",))
        self._forwards = reg.counter(
            "repro_fleet_forwards_total",
            "Requests forwarded to a worker, by worker id.",
            labelnames=("worker",))
        self._retries = reg.counter(
            "repro_fleet_retries_total",
            "Requests retried on a replica after a peer failure.")
        self._rehashes = reg.counter(
            "repro_fleet_rehashes_total",
            "Ring re-hashes after a worker was marked dead.")
        self._shed = reg.counter(
            "repro_fleet_shed_total",
            "Requests shed with 429, by reason (queue | quota).",
            labelnames=("reason",))
        self._workers = reg.gauge(
            "repro_fleet_workers", "Workers currently in the hash ring.")
        self._inflight = reg.gauge(
            "repro_fleet_inflight",
            "Requests currently forwarded and awaiting a worker.")
        self._request_seconds = reg.histogram(
            "repro_fleet_request_duration_seconds",
            "End-to-end front-end latency, by endpoint.",
            labelnames=("endpoint",))
        self._forward_seconds = reg.histogram(
            "repro_fleet_forward_duration_seconds",
            "Worker round-trip latency per forward attempt.")
        self._by_endpoint: dict = {}
        self._by_status: dict = {}
        self._by_worker: dict = {}
        self._by_reason: dict = {}
        self._lat_by_endpoint: dict = {}

    def record_request(self, endpoint: str) -> None:
        child = self._by_endpoint.get(endpoint)
        if child is None:
            child = self._by_endpoint[endpoint] = \
                self._requests.labels(endpoint=endpoint)
        child.inc()

    def record_response(self, status: int) -> None:
        child = self._by_status.get(status)
        if child is None:
            child = self._by_status[status] = \
                self._responses.labels(status=status)
        child.inc()

    def record_forward(self, worker: str, duration_s: float) -> None:
        child = self._by_worker.get(worker)
        if child is None:
            child = self._by_worker[worker] = \
                self._forwards.labels(worker=worker)
        child.inc()
        self._forward_seconds.observe(duration_s)

    def record_shed(self, reason: str) -> None:
        child = self._by_reason.get(reason)
        if child is None:
            child = self._by_reason[reason] = \
                self._shed.labels(reason=reason)
        child.inc()

    def record_retry(self) -> None:
        self._retries.inc()

    def record_rehash(self) -> None:
        self._rehashes.inc()

    def set_workers(self, n: int) -> None:
        self._workers.set(n)

    def set_inflight(self, n: int) -> None:
        self._inflight.set(n)

    def observe_request(self, endpoint: str, duration_s: float) -> None:
        child = self._lat_by_endpoint.get(endpoint)
        if child is None:
            child = self._lat_by_endpoint[endpoint] = \
                self._request_seconds.labels(endpoint=endpoint)
        child.observe(duration_s)

    def summary(self) -> dict:
        """The ``"fleet"`` section of the JSON ``/metrics`` shape."""
        return {
            "requests": ServeMetrics._sum_family(self._requests),
            "responses": ServeMetrics._sum_family(self._responses),
            "forwards": ServeMetrics._sum_family(self._forwards),
            "shed": ServeMetrics._sum_family(self._shed),
            "retries": self._retries._default.value,
            "rehashes": self._rehashes._default.value,
            "inflight": self._inflight._default.value,
            "workers": self._workers._default.value,
            "latency": {
                "request": ServeMetrics._latency_summary(
                    self._request_seconds),
                "forward": ServeMetrics._latency_summary(
                    self._forward_seconds),
            },
        }


class FleetFrontend:
    """Consistent-hash routing proxy over a fleet of serve workers."""

    # Bodies above this size have their JSON parse (for routing only)
    # offloaded to the executor, mirroring the server's policy.
    OFFLOAD_BYTES = 256 * 1024

    def __init__(self, *, replication: int = 1, vnodes: int = 64,
                 max_inflight: int = 256,
                 quota_rate: float | None = None,
                 quota_burst: float | None = None,
                 health_interval_s: float = 2.0,
                 health_timeout_s: float = 2.0,
                 connect_timeout_s: float = 5.0,
                 forward_timeout_s: float = 300.0,
                 max_body_bytes: int = 32 * 1024 * 1024,
                 idle_timeout_s: float = 120.0,
                 tracing: bool = True, trace_buffer_size: int = 256,
                 learned_keys: int = 4096, max_tenants: int = 1024):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = int(replication)
        self.max_inflight = int(max_inflight)
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst if quota_burst is not None \
            else (max(1.0, quota_rate) if quota_rate else None)
        self.health_interval_s = float(health_interval_s)
        self.health_timeout_s = float(health_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.forward_timeout_s = float(forward_timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self.idle_timeout_s = float(idle_timeout_s)
        self.tracing = bool(tracing)
        self.metrics = FleetMetrics()
        self.traces = TraceBuffer(trace_buffer_size)
        self.ring = HashRing(vnodes)
        self.workers: dict = {}          # wid -> WorkerState
        self._pools: dict = {}           # wid -> [(reader, writer), ...]
        self._learned = LruDict(learned_keys)   # derived key -> route key
        self._tenants = LruDict(max_tenants)    # tenant -> TokenBucket
        self._request_ids = itertools.count(1)
        self.host = None
        self.port = None
        self._server = None
        self._health_task = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._routed = set(ROUTED_ENDPOINTS)
        self._local_get = {"/healthz", "/metrics", "/v1/fleet",
                           "/v1/debug/traces", "/v1/models"}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_worker(self, wid: str, host: str, port: int) -> None:
        """Register (or re-register, e.g. after a respawn) a worker."""
        if wid in self.workers:
            self._close_pool(wid)
        self.workers[wid] = WorkerState(wid, host, port)
        self.ring.add(wid)
        self.metrics.set_workers(len(self.ring))
        _log.info("worker %s joined at %s:%d (ring size %d)",
                  wid, host, port, len(self.ring))

    def forget_worker(self, wid: str) -> None:
        """Drop a worker entirely (supervisor shutdown path)."""
        self.workers.pop(wid, None)
        self.ring.remove(wid)
        self._close_pool(wid)
        self.metrics.set_workers(len(self.ring))

    def _mark_dead(self, wid: str, reason: str) -> None:
        worker = self.workers.get(wid)
        if worker is None or not worker.healthy:
            return
        worker.healthy = False
        self.ring.remove(wid)
        self._close_pool(wid)
        self.metrics.record_rehash()
        self.metrics.set_workers(len(self.ring))
        _log.warning("worker %s marked dead (%s); ring re-hashed to %d "
                     "member(s)", wid, reason, len(self.ring))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop())
        _log.info("fleet front-end listening on http://%s:%s",
                  self.host, self.port)

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for wid in list(self._pools):
            self._close_pool(wid)

    async def drain(self, grace_s: float = 30.0) -> None:
        """Stop accepting, let in-flight forwards finish, then close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self._idle.wait(), grace_s)
        except TimeoutError:
            _log.warning("drain grace of %.1fs expired with %d "
                         "request(s) still in flight", grace_s,
                         self._inflight)
        await self.close()

    # ------------------------------------------------------------------
    # Worker connections (small keep-alive pool per worker)
    # ------------------------------------------------------------------
    def _pool_get(self, wid: str):
        pool = self._pools.get(wid)
        return pool.pop() if pool else None

    def _pool_put(self, wid: str, conn) -> None:
        worker = self.workers.get(wid)
        if worker is None or not worker.healthy:
            self._close_conn(conn)
            return
        self._pools.setdefault(wid, []).append(conn)

    def _close_pool(self, wid: str) -> None:
        for conn in self._pools.pop(wid, []):
            self._close_conn(conn)

    @staticmethod
    def _close_conn(conn) -> None:
        _reader, writer = conn
        writer.close()

    async def _forward(self, worker: WorkerState, data: bytes,
                       timeout_s: float | None = None):
        """One HTTP round trip to a worker; returns (status, headers, body).

        A stale pooled keep-alive connection (worker reaped it as our
        bytes arrived) is retried once on a fresh connection — the one
        failure mode where the request was provably never processed. A
        fresh connection failing raises :class:`_WorkerUnreachable` (the
        caller re-hashes and retries on a replica); a timeout raises
        :class:`_ForwardTimeout` and is never retried, because the worker
        may be executing the request.
        """
        timeout_s = timeout_s if timeout_s is not None \
            else self.forward_timeout_s
        wid = worker.wid
        conn = self._pool_get(wid)
        fresh = conn is None
        while True:
            if conn is None:
                try:
                    conn = await asyncio.wait_for(
                        asyncio.open_connection(worker.host, worker.port),
                        self.connect_timeout_s)
                except (OSError, TimeoutError) as exc:
                    raise _WorkerUnreachable(
                        f"worker {wid} at {worker.host}:{worker.port} "
                        f"unreachable: {exc}") from exc
                fresh = True
            reader, writer = conn
            try:
                writer.write(data)
                await writer.drain()
                status, rheaders, rbody, keep = await asyncio.wait_for(
                    read_response(reader), timeout_s)
            except TimeoutError as exc:
                self._close_conn(conn)
                raise _ForwardTimeout(
                    f"worker {wid} did not answer within {timeout_s:g}s "
                    f"(the request may still be executing; not retried)"
                ) from exc
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                self._close_conn(conn)
                if fresh:
                    raise _WorkerUnreachable(
                        f"worker {wid} dropped the connection: "
                        f"{exc}") from exc
                conn = None   # stale pooled socket: retry once, fresh
                continue
            if keep:
                self._pool_put(wid, conn)
            else:
                self._close_conn(conn)
            return status, rheaders, rbody

    # ------------------------------------------------------------------
    # HTTP front door
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        pending = False
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, self.max_body_bytes),
                        self.idle_timeout_s)
                except TimeoutError:
                    break
                except PayloadTooLarge as exc:
                    self.metrics.record_response(413)
                    writer.write(encode_response(
                        413, json.dumps({"error": str(exc)}).encode(),
                        "application/json", keep_alive=False))
                    await writer.drain()
                    break
                except ValueError:
                    break
                if request is None:
                    break
                method, path, body, keep_alive, headers = request
                if self._draining:
                    keep_alive = False
                self._inflight += 1
                self._idle.clear()
                pending = True
                self.metrics.set_inflight(self._inflight)
                endpoint = f"{method} {path}"
                rid = next(self._request_ids)
                t0 = perf_counter()
                trace = token = None
                if self.tracing:
                    trace = Trace(endpoint, trace_id=f"fleet-{rid}")
                    token = activate(trace)
                try:
                    status, content_type, payload, extra = \
                        await self._dispatch(method, path, body, headers)
                finally:
                    if trace is not None:
                        deactivate(token)
                duration_s = perf_counter() - t0
                self.metrics.record_response(status)
                known = path in self._local_get or path in self._routed
                self.metrics.observe_request(
                    endpoint if known else "other", duration_s)
                if trace is not None:
                    trace.meta["endpoint"] = endpoint
                    trace.meta["status"] = status
                    trace.meta["duration_ms"] = round(duration_s * 1e3, 3)
                    self.traces.append(trace.to_dict())
                writer.write(encode_response(
                    status, payload, content_type, keep_alive=keep_alive,
                    extra_headers=extra))
                await writer.drain()
                pending = False
                self._request_done()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if pending:
                self._request_done()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _request_done(self) -> None:
        self._inflight -= 1
        self.metrics.set_inflight(self._inflight)
        if self._inflight <= 0:
            self._idle.set()

    @staticmethod
    def _json(status: int, obj) -> tuple:
        return status, "application/json", json.dumps(obj).encode(), None

    async def _dispatch(self, method: str, path: str, body: bytes,
                        headers: dict) -> tuple:
        """Returns ``(status, content_type, body_bytes, extra_headers)``."""
        if method == "GET" and path in self._local_get:
            self.metrics.record_request(f"GET {path}")
            if path == "/healthz":
                return self._json(200, {
                    "status": "ok", "role": "fleet-frontend",
                    "workers": len(self.ring)})
            if path == "/v1/fleet":
                return self._json(200, self._topology())
            if path == "/v1/debug/traces":
                return self._json(200, {"traces": self.traces.snapshot()})
            if path == "/v1/models":
                return await self._get_models()
            return await self._get_metrics(headers)
        if method == "POST" and path in self._routed:
            self.metrics.record_request(f"POST {path}")
            return await self._route_and_forward(path, body, headers)
        if path in self._local_get or path in self._routed:
            return self._json(
                405, {"error": f"method {method} not allowed for {path}"})
        return self._json(404, {"error": f"unknown endpoint {path}"})

    def _topology(self) -> dict:
        return {"ring": self.ring.describe(),
                "replication": self.replication,
                "workers": {wid: state.describe()
                            for wid, state in self.workers.items()},
                "learned_keys": len(self._learned)}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route_and_forward(self, path: str, body: bytes,
                                 headers: dict) -> tuple:
        if self._draining:
            return self._json(
                503, {"error": "front-end is draining; retry elsewhere"})
        if self._inflight > self.max_inflight:
            self.metrics.record_shed("queue")
            return self._json(
                429, {"error": f"front-end at capacity "
                               f"({self.max_inflight} requests in "
                               f"flight); retry later"})
        if self.quota_rate:
            tenant = headers.get("x-repro-tenant", "")
            now = asyncio.get_running_loop().time()
            bucket = self._tenants.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.quota_rate, self.quota_burst, now)
                self._tenants.put(tenant, bucket)
            if not bucket.admit(now):
                self.metrics.record_shed("quota")
                return self._json(
                    429, {"error": f"tenant {tenant or 'default'!r} is "
                                   f"over its request quota "
                                   f"({self.quota_rate:g}/s); retry later"})

        trace = current_trace()
        t_route = perf_counter()
        rkey, parsed = await self._routing_key(path, body)
        if trace is not None:
            trace.add_span("route", t_route, perf_counter() - t_route,
                           meta={"key": rkey[:24]})

        replication = self.replication
        if isinstance(parsed, dict):
            replication = max(replication,
                              requested_replication(parsed) or 1)

        data = encode_request(
            "POST", path, body,
            {"Content-Type": headers.get("content-type",
                                         "application/json")})
        attempted: set = set()
        for attempt in (0, 1):
            candidates = [wid for wid in self.ring.lookup(rkey, replication)
                          if wid not in attempted]
            if not candidates:
                break
            wid = min(candidates,
                      key=lambda w: self.workers[w].inflight)
            worker = self.workers[wid]
            attempted.add(wid)
            if attempt:
                self.metrics.record_retry()
            worker.inflight += 1
            t_fwd = perf_counter()
            try:
                status, rheaders, rbody = await self._forward(worker, data)
            except _WorkerUnreachable as exc:
                self._mark_dead(wid, str(exc))
                continue
            except _ForwardTimeout as exc:
                return self._json(502, {"error": str(exc)})
            finally:
                worker.inflight -= 1
                duration = perf_counter() - t_fwd
                self.metrics.record_forward(wid, duration)
                if trace is not None:
                    trace.add_span("forward", t_fwd, duration,
                                   meta={"worker": wid,
                                         "attempt": attempt})
            if status == 200 and path in LEARN_ENDPOINTS:
                self._learn(rkey, rbody)
            return (status,
                    rheaders.get("content-type", "application/json"),
                    rbody, {"X-Repro-Worker": wid})
        if not len(self.ring):
            return self._json(
                503, {"error": "no live workers in the fleet"})
        return self._json(
            502, {"error": f"request failed on {len(attempted)} worker(s) "
                           f"and no replica remains; retry later"})

    async def _routing_key(self, path: str, body: bytes) -> tuple:
        """Resolve ``(routing_key, parsed_body_or_None)`` without raising.

        Malformed bodies route by a digest of the raw bytes so the
        *worker* produces the authoritative 400/404 — the front-end never
        duplicates (and can never drift from) the strict protocol
        validation.
        """
        try:
            if len(body) > self.OFFLOAD_BYTES:
                parsed = await asyncio.get_running_loop().run_in_executor(
                    None, json.loads, body)
            else:
                parsed = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return fallback_key(body), None
        if not isinstance(parsed, dict):
            return fallback_key(body), parsed
        try:
            kind, key = routing_key(parsed)
        except Exception:
            return fallback_key(body), parsed
        if kind == "derived":
            learned = self._learned.get(key)
            return (learned if learned is not None
                    else fallback_key(key)), parsed
        return key, parsed

    def _learn(self, rkey: str, rbody: bytes) -> None:
        """Map derived keys in a registration response to its route key.

        Registration responses are small (a key and a shape), so parsing
        on the loop is cheap; fallback-routed registrations still learn —
        later key-addressed requests then follow the same route.
        """
        try:
            response = json.loads(rbody)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(response, dict):
            return
        for field in KEY_FIELDS:
            value = response.get(field)
            if isinstance(value, str) and value:
                self._learned.put(value, rkey)

    # ------------------------------------------------------------------
    # Aggregated GETs
    # ------------------------------------------------------------------
    def _live_workers(self) -> list:
        return [self.workers[wid] for wid in self.ring.members()]

    async def _get_models(self) -> tuple:
        """Union of every live worker's warm models."""
        async def one(worker):
            try:
                status, _h, rbody = await self._forward(
                    worker, encode_request("GET", "/v1/models"),
                    timeout_s=self.health_timeout_s)
            except (_WorkerUnreachable, _ForwardTimeout):
                return []
            if status != 200:
                return []
            try:
                return json.loads(rbody).get("models", [])
            except (UnicodeDecodeError, json.JSONDecodeError):
                return []

        merged: dict = {}
        results = await asyncio.gather(
            *(one(w) for w in self._live_workers()))
        for models in results:
            for model in models:
                merged.setdefault(model.get("model_key"), model)
        return self._json(200, {"models": list(merged.values())})

    async def _scrape_worker(self, worker: WorkerState) -> dict | None:
        """One worker's ``/v1/debug/obs`` snapshot (families + summary)."""
        try:
            status, _h, rbody = await self._forward(
                worker, encode_request("GET", "/v1/debug/obs"),
                timeout_s=self.health_timeout_s)
        except (_WorkerUnreachable, _ForwardTimeout):
            return None
        if status != 200:
            return None
        try:
            data = json.loads(rbody)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    async def _get_metrics(self, headers: dict) -> tuple:
        live = self._live_workers()
        scrapes = dict(zip(
            (w.wid for w in live),
            await asyncio.gather(*(self._scrape_worker(w) for w in live))))
        accept = headers.get("accept", "").lower()
        if ("text/plain" in accept or "openmetrics" in accept
                or "prometheus" in accept):
            return (200, _PROM_CONTENT_TYPE,
                    self._render_prometheus(scrapes).encode(), None)
        workers = {}
        for wid, state in self.workers.items():
            entry = {"healthy": state.healthy, "host": state.host,
                     "port": state.port,
                     "inflight_via_frontend": state.inflight}
            scraped = scrapes.get(wid)
            if scraped and isinstance(scraped.get("summary"), dict):
                entry.update(scraped["summary"])
            workers[wid] = entry
        return self._json(200, {
            "fleet": self.metrics.summary(),
            "ring": {**self.ring.describe(),
                     "replication": self.replication},
            "workers": workers,
            "families": self.metrics.registry.snapshot(),
        })

    def _render_prometheus(self, scrapes: dict) -> str:
        """Own families + every worker's, relabelled ``worker=<id>``."""
        merged = dict(self.metrics.registry.snapshot())
        for wid, scraped in scrapes.items():
            if not scraped or not isinstance(scraped.get("families"), dict):
                continue
            for name, family in scraped["families"].items():
                target = merged.get(name)
                if target is None:
                    target = merged[name] = {
                        "type": family.get("type", "counter"),
                        "help": family.get("help", ""), "values": []}
                for entry in family.get("values", []):
                    relabelled = dict(entry)
                    labels = dict(relabelled.get("labels", {}))
                    labels["worker"] = wid
                    relabelled["labels"] = labels
                    target["values"].append(relabelled)
        return render_prometheus(merged)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    async def _check_health(self, worker: WorkerState) -> bool:
        try:
            status, _h, _b = await self._forward(
                worker, encode_request("GET", "/healthz"),
                timeout_s=self.health_timeout_s)
        except (_WorkerUnreachable, _ForwardTimeout):
            return False
        return status == 200

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            for wid in list(self.workers):
                worker = self.workers.get(wid)
                if worker is None:
                    continue
                if await self._check_health(worker):
                    worker.fails = 0
                    if not worker.healthy:
                        worker.healthy = True
                        self.ring.add(wid)
                        self.metrics.set_workers(len(self.ring))
                        _log.info("worker %s recovered; re-admitted "
                                  "to the ring", wid)
                else:
                    worker.fails += 1
                    # One failed probe may be a slow scrape racing a
                    # training run; two in a row is a dead worker.
                    # (Forward-path connection failures evict instantly.)
                    if worker.healthy and worker.fails >= 2:
                        self._mark_dead(wid, "health checks failing")
