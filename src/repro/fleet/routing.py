"""Request → routing-key resolution and front-end admission control.

The front-end routes every request by the *model identity* it resolves
to — ``EmulationSpec.model_key()``, the same digest the zoo and every
warm registry tier key on — so all traffic for one trained model lands
on one worker (replicas aside) and its microbatch queues coalesce
exactly as they would on a single-process server. ``model_key()`` is
runtime-independent by construction, so the front-end computes it
without knowing any worker's runtime policy; a worker's
``registry.serving_spec(...)`` normalisation changes engine/weights
digests, never the model key.

Key-addressed requests (``crossbar_key``/``weights_key``/
``mitigated_key``) carry a derived digest the model key cannot be
recovered from; the front-end learns the mapping from registration
responses (which name both) and falls back to hashing the opaque key
itself — deterministic, so repeats land on one worker, which answers an
honest 404 for a key it never saw (the wire contract already tells
clients to re-register).
"""

from __future__ import annotations

import hashlib

from repro.serve.protocol import ModelSpec, parse_emulation_spec

#: POST endpoints the front-end routes to workers.
ROUTED_ENDPOINTS = ("/v1/models", "/v1/crossbars", "/v1/predict_fr",
                    "/v1/predict_currents", "/v1/weights", "/v1/matmul",
                    "/v1/mitigate", "/v1/mitigated_predict", "/v1/nets",
                    "/v1/net_predict")

#: Response fields that name warm objects derived from a model key; the
#: front-end learns ``derived key -> routing key`` from these.
KEY_FIELDS = ("crossbar_key", "weights_key", "mitigated_key", "net_key")

#: Registration endpoints with small responses, safe to parse on the
#: event loop for key learning (predict/matmul responses carry the same
#: fields but multi-MB arrays too — not worth the loop stall).
LEARN_ENDPOINTS = ("/v1/models", "/v1/crossbars", "/v1/weights",
                   "/v1/mitigate", "/v1/nets")


def routing_key(body: dict) -> tuple:
    """Resolve a parsed request body to ``(kind, key)``.

    ``("model", model_key)`` when the body carries a spec or flat model
    object; ``("derived", key)`` when it is key-addressed (the caller
    consults its learned map, falling back to :func:`fallback_key`).
    Raises whatever the protocol parsers raise on malformed identity —
    the caller routes by :func:`fallback_key` instead so the *worker*
    produces the authoritative 400, keeping error bodies byte-identical
    to the single-process server.
    """
    for field in KEY_FIELDS:
        if field in body:
            return "derived", str(body[field])
    if "spec" in body:
        return "model", parse_emulation_spec(body).model_key()
    return "model", ModelSpec.from_payload(
        body.get("model")).to_spec().model_key()


def fallback_key(data) -> str:
    """Deterministic routing key of last resort.

    Used for unlearned derived keys and unparseable bodies: hashing the
    opaque key string (or the raw body bytes) still routes repeats of
    the same request to the same worker.
    """
    if isinstance(data, str):
        data = data.encode()
    return "fb-" + hashlib.sha256(data).hexdigest()[:16]


def requested_replication(body: dict) -> int | None:
    """The spec's ``runtime.fleet.replication`` knob, dug out leniently.

    Routing must never reject what a worker would accept, so this never
    raises: anything but a well-formed positive integer at the expected
    path reads as "not requested" and the strict spec codec on the
    worker produces the authoritative 400.
    """
    node = body.get("spec")
    for field in ("runtime", "fleet"):
        if not isinstance(node, dict):
            return None
        node = node.get(field)
    if not isinstance(node, dict):
        return None
    value = node.get("replication")
    if isinstance(value, int) and not isinstance(value, bool) and value >= 1:
        return value
    return None


class TokenBucket:
    """Per-tenant request quota: ``rate`` tokens/s, ``burst`` capacity.

    Time is injected by the caller (the front-end passes its event
    loop's monotonic clock), keeping the bucket trivially testable.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def admit(self, now: float) -> bool:
        """Take one token if available; refills lazily since last call."""
        if now > self.stamp:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False
