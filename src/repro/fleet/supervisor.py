"""Worker process management for the fleet.

The supervisor spawns each worker as a real ``python -m repro serve``
subprocess (the unmodified single-process server — the fleet adds no
worker-side code path) on a loopback port, points them all at one shared
``--cache-dir`` so the content-addressed :class:`~repro.core.zoo.GeniexZoo`
becomes the fleet-wide artifact store (cross-process single-writer via
the zoo's file lock; every other worker disk-loads the persisted
``.npz``), and registers them with the front-end once ``/healthz``
answers.

:class:`FleetThread` is the in-process harness used by tests and
benchmarks: front-end plus supervisor on a background event-loop thread,
with a ``kill_worker`` crowbar for worker-death drills.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import socket
import subprocess
import sys
import threading

import repro
from repro.errors import ReproError
from repro.fleet.frontend import FleetFrontend
from repro.serve.httpio import encode_request, read_response

_log = logging.getLogger("repro.fleet")


class FleetError(ReproError, RuntimeError):
    """A worker failed to start or the fleet could not be assembled."""


def _free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (best effort; raced only in theory)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _worker_env() -> dict:
    """Child env with this interpreter's ``repro`` importable."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src_dir}{os.pathsep}{existing}"
                         if existing else src_dir)
    return env


class WorkerProcess:
    """One ``repro serve`` subprocess owned by the supervisor."""

    def __init__(self, wid: str, host: str, port: int,
                 proc: subprocess.Popen):
        self.wid = wid
        self.host = host
        self.port = port
        self.proc = proc

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """Hard-kill (worker-death drills); the supervisor notices."""
        if self.alive():
            self.proc.kill()

    def terminate(self, timeout_s: float = 10.0) -> None:
        """SIGTERM (graceful drain in the worker), escalate to kill."""
        if not self.alive():
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


class FleetSupervisor:
    """Spawns, health-gates, and (optionally) respawns serve workers."""

    def __init__(self, n_workers: int, cache_dir: str, *,
                 host: str = "127.0.0.1", worker_args: list | None = None,
                 ready_timeout_s: float = 60.0, respawn: bool = False,
                 poll_interval_s: float = 0.5):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.cache_dir = cache_dir
        self.host = host
        self.worker_args = list(worker_args or [])
        self.ready_timeout_s = float(ready_timeout_s)
        self.respawn = bool(respawn)
        self.poll_interval_s = float(poll_interval_s)
        self.workers: dict = {}   # wid -> WorkerProcess
        self._task = None
        self._stopping = False

    # ------------------------------------------------------------------
    def _spawn(self, wid: str) -> WorkerProcess:
        port = _free_port(self.host)
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", self.host, "--port", str(port),
               "--cache-dir", self.cache_dir, *self.worker_args]
        proc = subprocess.Popen(cmd, env=_worker_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL,
                                start_new_session=True)
        _log.info("spawned worker %s (pid %d) on %s:%d",
                  wid, proc.pid, self.host, port)
        return WorkerProcess(wid, self.host, port, proc)

    async def _wait_ready(self, worker: WorkerProcess) -> None:
        deadline = asyncio.get_running_loop().time() + self.ready_timeout_s
        probe = encode_request("GET", "/healthz",
                               headers={"Connection": "close"})
        while True:
            if not worker.alive():
                raise FleetError(
                    f"worker {worker.wid} (pid {worker.proc.pid}) exited "
                    f"with code {worker.proc.returncode} before becoming "
                    f"healthy")
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(worker.host, worker.port), 2.0)
                try:
                    writer.write(probe)
                    await writer.drain()
                    status, _h, _b, _k = await asyncio.wait_for(
                        read_response(reader), 2.0)
                finally:
                    writer.close()
                if status == 200:
                    return
            except (OSError, TimeoutError, ConnectionError):
                pass
            if asyncio.get_running_loop().time() > deadline:
                raise FleetError(
                    f"worker {worker.wid} on {worker.host}:{worker.port} "
                    f"not healthy within {self.ready_timeout_s:g}s")
            await asyncio.sleep(0.1)

    # ------------------------------------------------------------------
    async def start(self, frontend: FleetFrontend) -> None:
        """Spawn all workers, wait until healthy, register with the ring."""
        for i in range(self.n_workers):
            wid = f"w{i}"
            self.workers[wid] = self._spawn(wid)
        try:
            await asyncio.gather(
                *(self._wait_ready(w) for w in self.workers.values()))
        except FleetError:
            await self.stop()
            raise
        for worker in self.workers.values():
            frontend.add_worker(worker.wid, worker.host, worker.port)
        self._task = asyncio.get_running_loop().create_task(
            self._watch(frontend))

    async def _watch(self, frontend: FleetFrontend) -> None:
        """Notice dead workers fast; optionally respawn and re-register."""
        while not self._stopping:
            await asyncio.sleep(self.poll_interval_s)
            for wid, worker in list(self.workers.items()):
                if worker.alive():
                    continue
                frontend._mark_dead(wid, f"process exited "
                                         f"({worker.proc.returncode})")
                if not self.respawn or self._stopping:
                    continue
                replacement = self._spawn(wid)
                self.workers[wid] = replacement
                try:
                    await self._wait_ready(replacement)
                except FleetError as exc:
                    _log.error("respawn of worker %s failed: %s", wid, exc)
                    continue
                frontend.add_worker(wid, replacement.host,
                                    replacement.port)

    async def stop(self) -> None:
        """SIGTERM every worker (graceful drain), escalating to kill."""
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        loop = asyncio.get_running_loop()
        await asyncio.gather(*(
            loop.run_in_executor(None, worker.terminate)
            for worker in self.workers.values()))
        self.workers.clear()


class FleetThread:
    """Front-end + supervised workers on a background thread, for tests.

    Mirrors the ``ServerThread`` harness: ``start()`` blocks until every
    worker is healthy and the front-end is listening; ``stop()`` tears the
    whole fleet down. ``kill_worker`` hard-kills a worker process for
    death drills; ``run`` executes a coroutine on the fleet loop.
    """

    def __init__(self, n_workers: int, cache_dir: str, *,
                 frontend_kwargs: dict | None = None,
                 worker_args: list | None = None,
                 respawn: bool = False):
        self.frontend = FleetFrontend(**(frontend_kwargs or {}))
        self.supervisor = FleetSupervisor(
            n_workers, cache_dir, worker_args=worker_args, respawn=respawn)
        self.host = "127.0.0.1"
        self.port = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    def start(self, timeout_s: float = 120.0) -> "FleetThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="fleet-thread")
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise FleetError("fleet did not become ready in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._boot())
        except Exception as exc:   # surface boot failures to start()
            self._error = FleetError(f"fleet boot failed: {exc}")
            self._loop.close()
            self._ready.set()
            return
        finally:
            if self._error is None and not self._ready.is_set():
                self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _boot(self) -> None:
        await self.frontend.start(self.host, 0)
        try:
            await self.supervisor.start(self.frontend)
        except Exception:
            await self.frontend.close()
            raise
        self.port = self.frontend.port

    def run(self, coro, timeout_s: float = 60.0):
        """Run a coroutine on the fleet's event loop and wait for it."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(timeout_s)

    def kill_worker(self, wid: str) -> None:
        """Hard-kill one worker process (it stays dead unless respawn)."""
        self.supervisor.workers[wid].kill()

    def stop(self) -> None:
        if self._loop is None:
            return

        async def teardown():
            await self.supervisor.stop()
            await self.frontend.close()

        try:
            asyncio.run_coroutine_threadsafe(
                teardown(), self._loop).result(60.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)


__all__ = ["FleetError", "FleetSupervisor", "FleetThread",
           "WorkerProcess"]
