"""Consistent-hash ring with virtual nodes.

Routing keys are spec digests (``EmulationSpec.model_key()``), so the
ring maps the *model identity* space onto worker processes: every request
for one trained model lands on the same worker (warm registry tiers and
microbatch queues stay shard-local), and adding or removing a worker only
remaps the ``1/N`` slice of keys adjacent to its virtual points instead
of reshuffling the whole key space (the classic consistent-hashing
property — what makes worker death survivable without a fleet-wide cold
start).

Virtual nodes smooth the partition: each member owns ``vnodes`` points
pseudo-randomly spread over the ring (SHA-256 of ``"{node}#{i}"``), so
the expected load imbalance shrinks as vnodes grow. :meth:`lookup` with
``n > 1`` returns the first *n distinct* members clockwise from the key —
the replica set for hot keys; the front-end picks the least-loaded of
them per request.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right


def _point(data: str) -> int:
    """A 64-bit ring position from a string (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over opaque member names."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._members: set = set()
        self._points: list = []    # sorted (position, member) pairs

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list:
        return sorted(self._members)

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Insert a member (idempotent)."""
        if member in self._members:
            return
        self._members.add(member)
        for i in range(self.vnodes):
            position = _point(f"{member}#{i}")
            # Ties between different members are astronomically unlikely
            # (64-bit positions) but the tuple sort breaks them stably.
            self._points.append((position, member))
        self._points.sort()

    def remove(self, member: str) -> None:
        """Drop a member (idempotent); its key slice remaps to neighbours."""
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [p for p in self._points if p[1] != member]

    # ------------------------------------------------------------------
    def lookup(self, key: str, n: int = 1) -> list:
        """The first ``n`` *distinct* members clockwise from ``key``.

        Returns fewer than ``n`` when the ring has fewer members, and an
        empty list when it is empty. ``lookup(k, 1)[0]`` is the key's
        owner; the tail entries are its replica candidates.
        """
        if not self._points or n < 1:
            return []
        n = min(n, len(self._members))
        start = bisect_right(self._points, (_point(key), chr(0x10FFFF)))
        found: list = []
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in found:
                found.append(member)
                if len(found) == n:
                    break
        return found

    def describe(self) -> dict:
        """Topology summary for ``/v1/fleet`` and tests."""
        return {"members": self.members(), "vnodes": self.vnodes,
                "points": len(self._points)}
