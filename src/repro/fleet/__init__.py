"""repro.fleet — consistent-hash routing over a multi-process serve fleet.

Scales :mod:`repro.serve` horizontally without touching its wire
protocol: a stdlib-only asyncio front-end (:mod:`repro.fleet.frontend`)
routes each request by its resolved model identity over a consistent-hash
ring (:mod:`repro.fleet.ring`) to worker processes running the unmodified
single-process server, supervised by :mod:`repro.fleet.supervisor`.
Workers share one content-addressed artifact store (the zoo's
``--cache-dir``), so a model trained through any worker is served by all
of them — exactly one training run fleet-wide per model key.

``python -m repro fleet --workers N`` boots the whole topology; a
:class:`~repro.serve.client.ServeClient` pointed at the front-end works
unchanged.
"""

from repro.fleet.frontend import FleetFrontend, FleetMetrics, WorkerState
from repro.fleet.ring import HashRing
from repro.fleet.routing import TokenBucket, fallback_key, \
    requested_replication, routing_key
from repro.fleet.supervisor import FleetError, FleetSupervisor, \
    FleetThread, WorkerProcess

__all__ = [
    "FleetError",
    "FleetFrontend",
    "FleetMetrics",
    "FleetSupervisor",
    "FleetThread",
    "HashRing",
    "TokenBucket",
    "WorkerProcess",
    "WorkerState",
    "fallback_key",
    "requested_replication",
    "routing_key",
]
