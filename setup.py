"""Setup shim for environments whose pip cannot do PEP 517 editable installs.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
