import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.rows == 32 and args.vdd == 0.25

    def test_crossbar_overrides(self):
        args = build_parser().parse_args(
            ["characterize", "--rows", "8", "--r-on", "50000",
             "--onoff", "2", "--vdd", "0.5"])
        assert (args.rows, args.r_on, args.onoff, args.vdd) == \
            (8, 50000.0, 2.0, 0.5)

    def test_fig_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "fig99"])


class TestCommands:
    def test_characterize_runs(self, capsys):
        code = main(["characterize", "--rows", "6", "--samples", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NF over" in out and "6x6" in out

    def test_fig_table1_runs(self, capsys):
        assert main(["fig", "table1"]) == 0
        assert "this reproduction" in capsys.readouterr().out

    def test_train_geniex_tiny(self, capsys):
        code = main(["train-geniex", "--rows", "4", "--samples", "4",
                     "--hidden", "8", "--layers", "1", "--epochs", "3"])
        assert code == 0
        assert "emulator ready: 4x4" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8000
        assert args.max_batch == 64 and args.flush_deadline_ms == 2.0
        assert args.max_queue == 4096 and args.workers == 1
        assert args.func.__name__ == "_cmd_serve"

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-batch", "32",
             "--flush-deadline-ms", "0.5", "--max-queue", "128",
             "--tile-cache", "0", "--cache-dir", "/tmp/zoo"])
        assert (args.port, args.max_batch, args.flush_deadline_ms,
                args.max_queue, args.tile_cache, args.cache_dir) == \
            (0, 32, 0.5, 128, 0, "/tmp/zoo")


class TestWorkersFlags:
    def test_fig_workers_parsed(self):
        args = build_parser().parse_args(["fig", "fig7", "--workers", "4"])
        assert args.workers == 4

    def test_fig_workers_default_none(self):
        args = build_parser().parse_args(["fig", "fig7"])
        assert args.workers is None

    def test_fig_workers_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os
        assert main(["fig", "table1", "--workers", "2"]) == 0
        assert os.environ["REPRO_WORKERS"] == "2"
        capsys.readouterr()

    def test_serve_engine_workers_parsed(self):
        args = build_parser().parse_args(["serve", "--engine-workers", "3"])
        assert args.engine_workers == 3


class TestSpecCommand:
    def test_spec_list(self, capsys):
        assert main(["spec", "--list"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "paper-64x64" in out

    def test_spec_preset_prints_json(self, capsys):
        import json

        assert main(["spec", "--preset", "quick"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "geniex"
        assert payload["xbar"]["rows"] == 16

    def test_spec_set_overrides_and_output_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "spec.json"
        assert main(["spec", "--preset", "quick", "--set", "xbar.rows=8",
                     "--set", "engine=exact", "-o", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["xbar"]["rows"] == 8 and payload["engine"] == "exact"
        # the written file round-trips through --spec
        assert main(["spec", "--spec", str(out), "--keys"]) == 0
        keys = json.loads(capsys.readouterr().out)
        from repro.api import EmulationSpec

        assert keys["key"] == EmulationSpec.from_json(
            out.read_text()).key()

    def test_spec_and_preset_are_exclusive(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="not both"):
            main(["spec", "--preset", "quick", "--spec", "x.json"])

    def test_set_requires_a_base_spec(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="--set requires"):
            main(["characterize", "--set", "xbar.rows=4"])

    def test_malformed_set_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="PATH=VALUE"):
            main(["spec", "--preset", "quick", "--set", "xbar.rows"])

    def test_set_nonideality_overrides(self, capsys):
        import json

        assert main(["spec", "--preset", "quick-exact",
                     "--set", "nonideality.variation.sigma=0.1",
                     "--set", "nonideality.stuck.p_on=0.02",
                     "--set", "nonideality.seed=7"]) == 0
        payload = json.loads(capsys.readouterr().out)
        node = payload["nonideality"]
        assert node["variation"]["sigma"] == 0.1
        assert node["stuck"]["p_on"] == 0.02 and node["seed"] == 7
        # The faulty spec keys apart from the clean preset.
        from repro.api import EmulationSpec, get_preset

        assert EmulationSpec.from_dict(payload).key() != \
            get_preset("quick-exact").key()

    def test_set_invalid_nonideality_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="nonideality"):
            main(["spec", "--preset", "quick",
                  "--set", "nonideality.variation.sigma=-1"])

    def test_fig_robustness_listed(self):
        args = build_parser().parse_args(["fig", "robustness"])
        assert args.name == "robustness"

    def test_mitigate_parses_and_defaults(self):
        args = build_parser().parse_args(
            ["mitigate", "--preset", "quick-mitigated",
             "--dataset", "blobs", "--hidden", "16", "8"])
        assert args.preset == "quick-mitigated"
        assert args.hidden == [16, 8] and args.model_seed == 0
        assert not args.no_baseline

    def test_mitigate_requires_a_spec(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="--spec or --preset"):
            main(["mitigate", "--dataset", "blobs"])

    def test_set_mitigation_flows_into_spec(self, capsys):
        import json

        main(["spec", "--preset", "quick-analytical",
              "--set", "mitigation.noise.epochs=4",
              "--set", "mitigation.calibration.samples=32"])
        payload = json.loads(capsys.readouterr().out)
        node = payload["mitigation"]
        assert node["noise"]["epochs"] == 4
        assert node["calibration"]["samples"] == 32
        from repro.api import EmulationSpec, get_preset

        assert EmulationSpec.from_dict(payload).key() != \
            get_preset("quick-analytical").key()

    def test_train_geniex_warms_the_faulty_key(self, tmp_path, capsys):
        """Pre-training a faulty spec must cache under the key the spec
        resolves to (nonideality-folded), not the clean one."""
        import json

        from repro.api import EmulationSpec

        spec = EmulationSpec.from_dict({
            "xbar": {"rows": 4, "cols": 4},
            "emulator": {"sampling": {"n_g_matrices": 3, "n_v_per_g": 4},
                         "training": {"hidden": 8, "epochs": 2,
                                      "batch_size": 8}},
            "nonideality": {"variation": {"sigma": 0.1}}})
        path = tmp_path / "faulty.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["train-geniex", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"cache key {spec.model_key()}" in out


class TestSpecDrivenCommands:
    def test_characterize_with_preset_and_flag_override(self, capsys):
        # With a spec baseline, --rows overrides rows only: the preset's
        # cols (16) survives unless --cols is typed too.
        code = main(["characterize", "--preset", "quick-exact",
                     "--rows", "5", "--samples", "2"])
        assert code == 0
        assert "5x16" in capsys.readouterr().out

    def test_characterize_preset_rows_and_cols_override(self, capsys):
        code = main(["characterize", "--preset", "quick-exact",
                     "--rows", "5", "--cols", "5", "--samples", "2"])
        assert code == 0
        assert "5x5" in capsys.readouterr().out

    def test_characterize_flags_unchanged_without_spec(self, capsys):
        # Historical behaviour: loose flags alone still work.
        assert main(["characterize", "--rows", "6", "--samples", "2"]) == 0
        assert "6x6" in capsys.readouterr().out

    def test_fig_rejects_spec_for_unsupported_figure(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="does not take"):
            main(["fig", "table1", "--preset", "quick"])

    def test_train_geniex_with_preset_overrides(self, capsys):
        code = main(["train-geniex", "--preset", "quick",
                     "--set", "xbar.rows=4", "--set", "xbar.cols=4",
                     "--samples", "3", "--hidden", "8", "--epochs", "2"])
        assert code == 0
        assert "emulator ready: 4x4" in capsys.readouterr().out


class TestReviewRegressions:
    def test_evolve_rejects_plain_value_for_spec_node(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="nested spec node"):
            main(["spec", "--preset", "quick", "--set", "xbar=5"])

    def test_spec_keys_honours_output_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "keys.json"
        assert main(["spec", "--preset", "quick", "--keys",
                     "-o", str(out)]) == 0
        capsys.readouterr()
        keys = json.loads(out.read_text())
        assert set(keys) == {"key", "model_key"}
