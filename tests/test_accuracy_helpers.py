import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.accuracy import (
    evaluate_engine,
    evaluate_float,
    load_dataset,
)
from repro.experiments.common import QUICK
from repro.funcsim import FuncSimConfig, IdealMvmEngine
from repro.models import LeNet

MICRO = dataclasses.replace(QUICK, name="micro", train_images=32,
                            eval_images=16, image_size=8,
                            shapes_classes=4, textures_classes=3)


class TestLoadDataset:
    def test_shapes_shapes(self):
        x_train, y_train, x_test, y_test = load_dataset("shapes", MICRO)
        assert x_train.shape == (32, 1, 8, 8)
        assert x_test.shape == (16, 1, 8, 8)
        assert y_train.max() == 3

    def test_textures(self):
        x_train, _, _, y_test = load_dataset("textures", MICRO)
        assert x_train.shape[0] == 32
        assert y_test.max() <= 2

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            load_dataset("imagenet", MICRO)


class TestEvaluators:
    @pytest.fixture
    def setup(self):
        x_train, y_train, x_test, y_test = load_dataset("shapes", MICRO)
        model = LeNet(in_channels=1, num_classes=4, image_size=8, width=4,
                      seed=0).eval()
        return model, x_test, y_test

    def test_evaluate_float_in_unit_range(self, setup):
        model, x_test, y_test = setup
        acc = evaluate_float(model, x_test, y_test, batch=8)
        assert 0.0 <= acc <= 1.0

    def test_evaluate_engine_ideal_close_to_float(self, setup):
        model, x_test, y_test = setup
        float_acc = evaluate_float(model, x_test, y_test, batch=8)
        engine_acc = evaluate_engine(model, x_test, y_test,
                                     IdealMvmEngine(FuncSimConfig()),
                                     batch=8)
        # 16-bit quantisation should rarely flip an argmax.
        assert abs(engine_acc - float_acc) <= 0.25

    def test_evaluate_engine_batch_independence(self, setup):
        model, x_test, y_test = setup
        engine = IdealMvmEngine(FuncSimConfig())
        a = evaluate_engine(model, x_test, y_test, engine, batch=4)
        b = evaluate_engine(model, x_test, y_test, engine, batch=16)
        assert a == b
