import numpy as np
import pytest

from repro.core.dataset import build_geniex_dataset
from repro.core.sampling import SamplingSpec
from repro.errors import ConfigError
from repro.xbar.config import CrossbarConfig
from repro.xbar.ideal import ideal_mvm


@pytest.fixture(scope="module")
def dataset():
    cfg = CrossbarConfig(rows=6, cols=6)
    spec = SamplingSpec(n_g_matrices=3, n_v_per_g=5, seed=0)
    return build_geniex_dataset(cfg, spec)


class TestBuildDataset:
    def test_sizes(self, dataset):
        assert len(dataset) == 15
        assert dataset.voltages_v.shape == (15, 6)
        assert dataset.conductances_s.shape == (3, 6, 6)
        assert dataset.fr.shape == (15, 6)

    def test_ideal_currents_consistent(self, dataset):
        k = 7
        g = dataset.conductances_s[dataset.group_index[k]]
        np.testing.assert_allclose(dataset.i_ideal_a[k],
                                   ideal_mvm(dataset.voltages_v[k], g))

    def test_fr_labels_match_currents(self, dataset):
        mask = dataset.mask
        lhs = dataset.i_ideal_a[mask] / dataset.fr[mask]
        np.testing.assert_allclose(lhs, dataset.i_nonideal_a[mask],
                                   rtol=1e-9)

    def test_features_layout(self, dataset):
        feats = dataset.features()
        assert feats.shape == (15, 6 + 36)
        assert feats.dtype == np.float32
        assert feats.min() >= -1e-6 and feats.max() <= 1.0 + 1e-6

    def test_labels_normalised(self, dataset):
        labels = dataset.labels()
        assert labels.min() >= 0.0 and labels.max() <= 1.0

    def test_weights_match_mask(self, dataset):
        np.testing.assert_array_equal(dataset.weights(),
                                      dataset.mask.astype(np.float32))

    def test_indices_subset(self, dataset):
        sub = dataset.features(np.array([0, 3]))
        assert sub.shape[0] == 2

    def test_linear_mode_labels(self):
        cfg = CrossbarConfig(rows=4, cols=4)
        spec = SamplingSpec(n_g_matrices=2, n_v_per_g=3, seed=1)
        full = build_geniex_dataset(cfg, spec, mode="full")
        linear = build_geniex_dataset(cfg, spec, mode="linear")
        assert not np.allclose(full.i_nonideal_a, linear.i_nonideal_a)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            build_geniex_dataset(CrossbarConfig(rows=4, cols=4),
                                 SamplingSpec(n_g_matrices=1, n_v_per_g=1),
                                 mode="ideal")
