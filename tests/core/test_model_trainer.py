import numpy as np
import pytest

from repro.core.dataset import build_geniex_dataset
from repro.core.model import GeniexNet, Normalizer
from repro.core.sampling import SamplingSpec
from repro.core.trainer import TrainSpec, train_geniex
from repro.errors import ConfigError, ShapeError
from repro.nn.tensor import Tensor
from repro.xbar.config import CrossbarConfig


@pytest.fixture(scope="module")
def tiny_dataset():
    cfg = CrossbarConfig(rows=4, cols=4)
    return build_geniex_dataset(
        cfg, SamplingSpec(n_g_matrices=6, n_v_per_g=10, seed=0))


class TestGeniexNet:
    def test_paper_topology_dimensions(self):
        net = GeniexNet(64, 64, hidden=500)
        # (N^2 + N) x P x N with P = 500.
        assert net.in_features == 64 * 64 + 64
        first = net.body[0]
        last = net.body[-1]
        assert first.weight.shape == (500, 4160)
        assert last.weight.shape == (64, 500)

    def test_forward_shape(self):
        net = GeniexNet(4, 4, hidden=16)
        out = net(Tensor(np.zeros((3, 20), dtype=np.float32)))
        assert out.shape == (3, 4)

    def test_rejects_wrong_input_width(self):
        net = GeniexNet(4, 4, hidden=8)
        with pytest.raises(ShapeError):
            net(Tensor(np.zeros((2, 7), dtype=np.float32)))

    def test_predict_fr_norm_matches_forward(self):
        net = GeniexNet(4, 4, hidden=8, hidden_layers=2, seed=1)
        feats = np.random.default_rng(0).random((5, 20)).astype(np.float32)
        fast = net.predict_fr_norm(feats.copy())
        graph = net(Tensor(feats)).data
        np.testing.assert_allclose(fast, graph, rtol=1e-5, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            GeniexNet(4, 4, hidden=0)
        with pytest.raises(ConfigError):
            GeniexNet(4, 4, hidden_layers=0)


class TestNormalizer:
    def test_roundtrip_dict(self):
        norm = Normalizer(0.25, 1e-6, 1e-5, 0.9, 1.1)
        assert Normalizer(**norm.to_dict()) == norm

    def test_fr_denormalisation_clips(self):
        norm = Normalizer(0.25, 1e-6, 1e-5, 0.8, 1.2)
        out = norm.denormalize_fr(np.array([-0.5, 0.5, 1.5]))
        np.testing.assert_allclose(out, [0.8, 1.0, 1.2])

    def test_voltage_scaling(self):
        norm = Normalizer(0.5, 1e-6, 1e-5, 0.9, 1.1)
        assert norm.normalize_v(0.25) == pytest.approx(0.5)


class TestTrainer:
    def test_training_reduces_validation_rmse(self, tiny_dataset):
        spec = TrainSpec(hidden=32, epochs=40, batch_size=16, patience=40,
                         seed=0)
        model, history = train_geniex(tiny_dataset, spec)
        assert history.val_rmse[-1] < history.val_rmse[0]
        assert model.normalizer is not None

    def test_deterministic_given_seed(self, tiny_dataset):
        spec = TrainSpec(hidden=8, epochs=5, batch_size=16, seed=3)
        model_a, _ = train_geniex(tiny_dataset, spec)
        model_b, _ = train_geniex(tiny_dataset, spec)
        np.testing.assert_array_equal(
            model_a.body[0].weight.data, model_b.body[0].weight.data)

    def test_early_stopping_restores_best(self, tiny_dataset):
        spec = TrainSpec(hidden=16, epochs=60, batch_size=16, patience=5,
                         seed=0)
        model, history = train_geniex(tiny_dataset, spec)
        assert history.best_epoch <= len(history.val_rmse) - 1
        assert history.best_val_rmse == min(history.val_rmse)

    def test_lr_schedule(self):
        spec = TrainSpec(epochs=100, lr=1.0, lr_decay=0.1,
                         lr_milestones=(0.5, 0.8))
        assert spec.lr_at(0) == 1.0
        assert spec.lr_at(50) == pytest.approx(0.1)
        assert spec.lr_at(80) == pytest.approx(0.01)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            TrainSpec(val_fraction=0.0)
        with pytest.raises(ConfigError):
            TrainSpec(lr_decay=0.0)
