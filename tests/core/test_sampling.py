import numpy as np
import pytest

from repro.core.sampling import SamplingSpec, VgSampler
from repro.errors import ConfigError
from repro.xbar.config import CrossbarConfig


@pytest.fixture
def cfg():
    return CrossbarConfig(rows=8, cols=8)


class TestSamplingSpec:
    def test_n_samples(self):
        spec = SamplingSpec(n_g_matrices=5, n_v_per_g=7)
        assert spec.n_samples == 35

    @pytest.mark.parametrize("kwargs", [
        {"n_g_matrices": 0}, {"v_levels": 1},
        {"v_sparsity": (1.0,)}, {"g_sparsity": ()},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingSpec(**kwargs)


class TestVgSampler:
    def test_shapes(self, cfg):
        spec = SamplingSpec(n_g_matrices=3, n_v_per_g=4, seed=0)
        v, g, idx = VgSampler(cfg, spec).sample()
        assert v.shape == (12, 8)
        assert g.shape == (3, 8, 8)
        assert idx.shape == (12,)
        assert idx.max() == 2

    def test_voltage_range_and_levels(self, cfg):
        spec = SamplingSpec(n_g_matrices=2, n_v_per_g=50, v_levels=16,
                            seed=0)
        v, _, _ = VgSampler(cfg, spec).sample()
        assert v.min() >= 0.0 and v.max() <= cfg.v_supply_v + 1e-12
        # Values sit on the 16-level DAC grid.
        levels = v / cfg.v_supply_v * 15
        np.testing.assert_allclose(levels, np.rint(levels), atol=1e-9)

    def test_conductance_window(self, cfg):
        spec = SamplingSpec(n_g_matrices=5, n_v_per_g=1, seed=0)
        _, g, _ = VgSampler(cfg, spec).sample()
        assert g.min() >= cfg.g_off_s - 1e-18
        assert g.max() <= cfg.g_on_s + 1e-18

    def test_sparsity_produces_zeros(self, cfg):
        spec = SamplingSpec(n_g_matrices=2, n_v_per_g=100,
                            v_sparsity=(0.9,), seed=0)
        v, _, _ = VgSampler(cfg, spec).sample()
        assert np.mean(v == 0.0) > 0.8

    def test_dense_grid_no_zeros_beyond_chance(self, cfg):
        spec = SamplingSpec(n_g_matrices=2, n_v_per_g=100,
                            v_sparsity=(0.0,), seed=0)
        v, _, _ = VgSampler(cfg, spec).sample()
        assert np.mean(v == 0.0) < 0.05

    def test_continuous_mode(self, cfg):
        spec = SamplingSpec(n_g_matrices=2, n_v_per_g=20, v_levels=None,
                            g_levels=None, seed=0)
        v, g, _ = VgSampler(cfg, spec).sample()
        assert v.max() <= cfg.v_supply_v
        assert g.max() <= cfg.g_on_s

    def test_deterministic(self, cfg):
        spec = SamplingSpec(seed=5, n_g_matrices=2, n_v_per_g=3)
        a = VgSampler(cfg, spec).sample()
        b = VgSampler(cfg, spec).sample()
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
